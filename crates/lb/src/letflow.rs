//! LetFlow (Vanini et al., NSDI 2017) — flowlet switching with random
//! path choice, in the switch.
//!
//! No congestion state at all: every new flowlet picks a uniformly
//! random uplink. Balance emerges because flowlets on congested paths
//! stretch in time and naturally shed load. The paper's critique (§2.2.2,
//! §5.3.2): with steady traffic there are no flowlet gaps, so LetFlow
//! converges slowly — and it cannot detect failures (§5.3.3).

use hermes_net::{FabricLb, FlowId, LeafId, Packet, PathId, Uplinks};
use hermes_sim::{SimRng, Time};

use crate::flowlet::FlowletTable;

/// LetFlow.
pub struct LetFlow {
    flowlets: FlowletTable<(FlowId, LeafId)>,
}

impl LetFlow {
    /// `timeout` — flowlet gap (150 µs in the paper's simulations).
    pub fn new(timeout: Time) -> LetFlow {
        LetFlow {
            flowlets: FlowletTable::new(timeout),
        }
    }
}

impl FabricLb for LetFlow {
    fn ingress_select(
        &mut self,
        leaf: LeafId,
        _dst_leaf: LeafId,
        pkt: &Packet,
        uplinks: Uplinks<'_>,
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let candidates = uplinks.paths;
        let key = (pkt.flow, leaf);
        if let Some(p) = self.flowlets.current(key, now) {
            if candidates.contains(&p) {
                return p;
            }
        }
        let p = candidates[rng.below(candidates.len())];
        self.flowlets.assign(key, p, now);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::HostId;

    fn pkt(flow: u64) -> Packet {
        Packet::data(FlowId(flow), HostId(0), HostId(20), 0, 1460, false)
    }

    const CANDS: [PathId; 4] = [PathId(0), PathId(1), PathId(2), PathId(3)];

    #[test]
    fn sticky_within_flowlet_random_across() {
        let mut lb = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(3);
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let p = lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, Time::ZERO, &mut rng);
        // Back-to-back packets: same path.
        for i in 1..10 {
            let q = lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(1),
                uplinks,
                Time::from_us(i * 10),
                &mut rng,
            );
            assert_eq!(p, q);
        }
        // After long gaps, path choices spread across candidates.
        let mut seen = std::collections::BTreeSet::new();
        let mut t = Time::from_ms(1);
        for _ in 0..200 {
            t += Time::from_us(500); // > timeout: every packet a new flowlet
            seen.insert(lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, t, &mut rng));
        }
        assert_eq!(seen.len(), 4, "random choice must reach every path");
    }

    #[test]
    fn gap_rehash_spreads_load_where_steady_traffic_cannot() {
        // The §2.2.2 critique, as a distribution statement: a steady
        // stream never re-hashes (its path histogram is a point mass),
        // while the same flow with inter-packet gaps above the timeout
        // spreads across all paths with no path starved or dominant.
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let mut steady = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(11);
        let mut steady_hist = [0u32; 4];
        for i in 0..400u64 {
            // 10 µs spacing: always inside the flowlet gap.
            let p = steady.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(7),
                uplinks,
                Time::from_us(i * 10),
                &mut rng,
            );
            steady_hist[p.0 as usize] += 1;
        }
        assert_eq!(
            steady_hist.iter().filter(|&&c| c > 0).count(),
            1,
            "steady traffic must never re-hash: {steady_hist:?}"
        );

        let mut gapped = LetFlow::new(Time::from_us(150));
        let mut hist = [0u32; 4];
        for i in 0..400u64 {
            // 500 µs spacing: every packet opens a new flowlet.
            let p = gapped.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(7),
                uplinks,
                Time::from_us(i * 500),
                &mut rng,
            );
            hist[p.0 as usize] += 1;
        }
        // Uniform expectation is 100 per path; allow a generous band
        // (binomial σ ≈ 8.7, so ±4σ ≈ [65, 135]).
        for (i, &c) in hist.iter().enumerate() {
            assert!(
                (65..=135).contains(&c),
                "path {i} got {c} of 400 flowlets; distribution skewed: {hist:?}"
            );
        }
    }

    #[test]
    fn flows_get_independent_flowlet_state() {
        // Two flows at the same leaf must not share a flowlet entry:
        // with enough flows, simultaneous first packets land on more
        // than one path.
        let mut lb = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(5);
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let mut seen = std::collections::BTreeSet::new();
        for f in 0..32 {
            seen.insert(lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(f),
                uplinks,
                Time::ZERO,
                &mut rng,
            ));
        }
        assert!(seen.len() > 1, "32 flows all hashed to one path");
    }

    #[test]
    fn directions_are_independent() {
        // The same flow id seen at two leaves (data vs ACK direction)
        // keeps independent flowlet state.
        let mut lb = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(4);
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let a = lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, Time::ZERO, &mut rng);
        // Choose repeatedly at leaf 1 until it diverges — they're
        // independent random draws, so this must happen quickly.
        let mut diverged = false;
        for i in 0..20 {
            let b = lb.ingress_select(
                LeafId(1),
                LeafId(0),
                &pkt(1),
                uplinks,
                Time::from_ms(1 + i),
                &mut rng,
            );
            if b != a {
                diverged = true;
                break;
            }
        }
        assert!(diverged);
    }
}
