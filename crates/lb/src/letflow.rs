//! LetFlow (Vanini et al., NSDI 2017) — flowlet switching with random
//! path choice, in the switch.
//!
//! No congestion state at all: every new flowlet picks a uniformly
//! random uplink. Balance emerges because flowlets on congested paths
//! stretch in time and naturally shed load. The paper's critique (§2.2.2,
//! §5.3.2): with steady traffic there are no flowlet gaps, so LetFlow
//! converges slowly — and it cannot detect failures (§5.3.3).

use hermes_net::{FabricLb, FlowId, LeafId, Packet, PathId, Uplinks};
use hermes_sim::{SimRng, Time};

use crate::flowlet::FlowletTable;

/// LetFlow.
pub struct LetFlow {
    flowlets: FlowletTable<(FlowId, LeafId)>,
}

impl LetFlow {
    /// `timeout` — flowlet gap (150 µs in the paper's simulations).
    pub fn new(timeout: Time) -> LetFlow {
        LetFlow {
            flowlets: FlowletTable::new(timeout),
        }
    }
}

impl FabricLb for LetFlow {
    fn ingress_select(
        &mut self,
        leaf: LeafId,
        _dst_leaf: LeafId,
        pkt: &Packet,
        uplinks: Uplinks<'_>,
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let candidates = uplinks.paths;
        let key = (pkt.flow, leaf);
        if let Some(p) = self.flowlets.current(key, now) {
            if candidates.contains(&p) {
                return p;
            }
        }
        let p = candidates[rng.below(candidates.len())];
        self.flowlets.assign(key, p, now);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::HostId;

    fn pkt(flow: u64) -> Packet {
        Packet::data(FlowId(flow), HostId(0), HostId(20), 0, 1460, false)
    }

    const CANDS: [PathId; 4] = [PathId(0), PathId(1), PathId(2), PathId(3)];

    #[test]
    fn sticky_within_flowlet_random_across() {
        let mut lb = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(3);
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let p = lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, Time::ZERO, &mut rng);
        // Back-to-back packets: same path.
        for i in 1..10 {
            let q = lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(1),
                uplinks,
                Time::from_us(i * 10),
                &mut rng,
            );
            assert_eq!(p, q);
        }
        // After long gaps, path choices spread across candidates.
        let mut seen = std::collections::BTreeSet::new();
        let mut t = Time::from_ms(1);
        for _ in 0..200 {
            t += Time::from_us(500); // > timeout: every packet a new flowlet
            seen.insert(lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, t, &mut rng));
        }
        assert_eq!(seen.len(), 4, "random choice must reach every path");
    }

    #[test]
    fn directions_are_independent() {
        // The same flow id seen at two leaves (data vs ACK direction)
        // keeps independent flowlet state.
        let mut lb = LetFlow::new(Time::from_us(150));
        let mut rng = SimRng::new(4);
        let uplinks = Uplinks {
            paths: &CANDS,
            qbytes: &[0; 4],
        };
        let a = lb.ingress_select(LeafId(0), LeafId(1), &pkt(1), uplinks, Time::ZERO, &mut rng);
        // Choose repeatedly at leaf 1 until it diverges — they're
        // independent random draws, so this must happen quickly.
        let mut diverged = false;
        for i in 0..20 {
            let b = lb.ingress_select(
                LeafId(1),
                LeafId(0),
                &pkt(1),
                uplinks,
                Time::from_ms(1 + i),
                &mut rng,
            );
            if b != a {
                diverged = true;
                break;
            }
        }
        assert!(diverged);
    }
}
