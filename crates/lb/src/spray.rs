//! Congestion-oblivious packet spraying: DRB and Presto*.
//!
//! * **DRB** (Cao et al., CoNEXT 2013) — per-packet round robin.
//! * **Presto\*** (He et al., SIGCOMM 2015, as modified in §5.1) — the
//!   paper sprays *packets* instead of 64 KB flowcells and masks the
//!   resulting reordering with a receive-side buffer; under asymmetry it
//!   is given static topology-dependent weights (§5.2), implemented here
//!   with smooth weighted round-robin.
//!
//! Both are oblivious to congestion and failures — which is exactly the
//! behaviour Figs. 2, 3, 16 and 17 exercise.

use std::collections::BTreeMap;

use hermes_net::{EdgeLb, FlowCtx, LeafId, PathId};
use hermes_sim::{SimRng, Time};

/// Per-packet round robin (DRB), one cursor per destination leaf.
#[derive(Default)]
pub struct RoundRobinSpray {
    cursor: BTreeMap<LeafId, usize>,
}

impl RoundRobinSpray {
    pub fn new() -> RoundRobinSpray {
        RoundRobinSpray::default()
    }
}

impl EdgeLb for RoundRobinSpray {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        _now: Time,
        _rng: &mut SimRng,
    ) -> PathId {
        let c = self.cursor.entry(ctx.dst_leaf).or_insert(0);
        let p = candidates[*c % candidates.len()];
        *c = (*c + 1) % candidates.len();
        p
    }
}

/// Smooth weighted round-robin state for one destination leaf.
struct Swrr {
    /// `(path, weight, current)` triples.
    slots: Vec<(PathId, f64, f64)>,
}

impl Swrr {
    fn new(weights: &[(PathId, f64)]) -> Swrr {
        Swrr {
            slots: weights.iter().map(|&(p, w)| (p, w, 0.0)).collect(),
        }
    }

    /// Classic smooth WRR: add weights, pick the max, subtract the total.
    fn next(&mut self, candidates: &[PathId]) -> PathId {
        let mut total = 0.0;
        for (p, w, cur) in &mut self.slots {
            if candidates.contains(p) {
                *cur += *w;
                total += *w;
            }
        }
        let mut best: Option<usize> = None;
        for (i, (p, _, cur)) in self.slots.iter().enumerate() {
            if !candidates.contains(p) {
                continue;
            }
            if best.is_none_or(|b| *cur > self.slots[b].2) {
                best = Some(i);
            }
        }
        let b = best.expect("no live candidate in weight table");
        self.slots[b].2 -= total;
        self.slots[b].0
    }
}

/// Presto* — weighted per-packet spray with static weights.
pub struct PrestoSpray {
    /// Static weights per destination leaf (None = equal weights).
    weights: BTreeMap<LeafId, Vec<(PathId, f64)>>,
    state: BTreeMap<LeafId, Swrr>,
}

impl PrestoSpray {
    /// Equal weights on every path (the symmetric-topology Presto).
    pub fn equal() -> PrestoSpray {
        PrestoSpray {
            weights: BTreeMap::new(),
            state: BTreeMap::new(),
        }
    }

    /// Static topology-dependent weights: for each destination leaf, a
    /// weight per path (§5.2: "assign weights for parallel paths
    /// statically to equalize the average load").
    pub fn weighted(weights: BTreeMap<LeafId, Vec<(PathId, f64)>>) -> PrestoSpray {
        PrestoSpray {
            weights,
            state: BTreeMap::new(),
        }
    }
}

impl EdgeLb for PrestoSpray {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        _now: Time,
        _rng: &mut SimRng,
    ) -> PathId {
        let swrr = self.state.entry(ctx.dst_leaf).or_insert_with(|| {
            match self.weights.get(&ctx.dst_leaf) {
                Some(w) => Swrr::new(w),
                None => Swrr::new(&candidates.iter().map(|&p| (p, 1.0)).collect::<Vec<_>>()),
            }
        });
        swrr.next(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::{FlowId, HostId};

    fn ctx(flow: u64) -> FlowCtx {
        FlowCtx {
            flow: FlowId(flow),
            src: HostId(0),
            dst: HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: PathId::UNSET,
            is_new: false,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    #[test]
    fn drb_cycles_every_path() {
        let mut lb = RoundRobinSpray::new();
        let mut rng = SimRng::new(0);
        let cands = [PathId(0), PathId(1), PathId(2)];
        let picks: Vec<u16> = (0..6)
            .map(|_| lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng).0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn drb_cursor_is_shared_across_flows() {
        // Round robin is per destination, not per flow — consecutive
        // packets of *different* flows also alternate.
        let mut lb = RoundRobinSpray::new();
        let mut rng = SimRng::new(0);
        let cands = [PathId(0), PathId(1)];
        let a = lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng);
        let b = lb.select_path(&ctx(2), &cands, Time::ZERO, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn presto_equal_weights_is_uniform() {
        let mut lb = PrestoSpray::equal();
        let mut rng = SimRng::new(0);
        let cands = [PathId(0), PathId(1), PathId(2), PathId(3)];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng).0 as usize] += 1;
        }
        assert_eq!(counts, [1000; 4]);
    }

    #[test]
    fn presto_weighted_matches_ratio() {
        // Fig. 3's 1:10 capacity split.
        let mut w = BTreeMap::new();
        w.insert(LeafId(1), vec![(PathId(0), 1.0), (PathId(1), 10.0)]);
        let mut lb = PrestoSpray::weighted(w);
        let mut rng = SimRng::new(0);
        let cands = [PathId(0), PathId(1)];
        let mut counts = [0usize; 2];
        for _ in 0..1100 {
            counts[lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng).0 as usize] += 1;
        }
        assert_eq!(counts, [100, 1000]);
    }

    #[test]
    fn weighted_skips_dead_paths() {
        let mut w = BTreeMap::new();
        w.insert(
            LeafId(1),
            vec![(PathId(0), 1.0), (PathId(1), 1.0), (PathId(2), 1.0)],
        );
        let mut lb = PrestoSpray::weighted(w);
        let mut rng = SimRng::new(0);
        // Path 1 cut.
        let cands = [PathId(0), PathId(2)];
        for _ in 0..10 {
            let p = lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng);
            assert!(cands.contains(&p));
        }
    }
}
