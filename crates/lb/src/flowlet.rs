//! A flowlet table, shared by every flowlet-switching scheme (LetFlow,
//! CONGA, CLOVE-ECN).
//!
//! A *flowlet* starts whenever a flow's inter-packet gap exceeds the
//! configured timeout (Sinha et al., HotNets 2004). The table maps a
//! flow key to its current path and last-activity time; a lookup either
//! returns the sticky path (gap below timeout) or reports that a new
//! flowlet began and stores the caller's fresh choice.

use std::collections::BTreeMap;

use hermes_net::PathId;
use hermes_sim::Time;

/// One table entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    path: PathId,
    last: Time,
}

/// Flow-keyed flowlet state with periodic garbage collection.
pub struct FlowletTable<K: Ord + Copy> {
    timeout: Time,
    entries: BTreeMap<K, Entry>,
    /// Entries idle longer than this are purged during sweeps.
    gc_idle: Time,
    last_gc: Time,
}

impl<K: Ord + Copy> FlowletTable<K> {
    pub fn new(timeout: Time) -> FlowletTable<K> {
        assert!(timeout > Time::ZERO);
        FlowletTable {
            timeout,
            entries: BTreeMap::new(),
            gc_idle: timeout * 1000,
            last_gc: Time::ZERO,
        }
    }

    /// The configured flowlet gap.
    pub fn timeout(&self) -> Time {
        self.timeout
    }

    /// Look up `key` at `now`. Returns `Some(path)` when the packet
    /// belongs to the current flowlet (and refreshes the activity time);
    /// `None` when a new flowlet begins (caller must `assign`).
    pub fn current(&mut self, key: K, now: Time) -> Option<PathId> {
        self.maybe_gc(now);
        match self.entries.get_mut(&key) {
            Some(e) if now.saturating_sub(e.last) <= self.timeout => {
                e.last = now;
                Some(e.path)
            }
            _ => None,
        }
    }

    /// Record the path chosen for the new flowlet of `key`.
    pub fn assign(&mut self, key: K, path: PathId, now: Time) {
        self.entries.insert(key, Entry { path, last: now });
    }

    /// The path of the previous flowlet, if any (even if expired) —
    /// CONGA consults it to prefer sticking when metrics tie.
    pub fn previous_path(&self, key: K) -> Option<PathId> {
        self.entries.get(&key).map(|e| e.path)
    }

    /// Drop a finished flow's entry.
    pub fn remove(&mut self, key: K) {
        self.entries.remove(&key);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn maybe_gc(&mut self, now: Time) {
        if now.saturating_sub(self.last_gc) < self.gc_idle || self.entries.len() < 4096 {
            return;
        }
        let cutoff = now.saturating_sub(self.gc_idle);
        self.entries.retain(|_, e| e.last >= cutoff);
        self.last_gc = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticks_within_timeout() {
        let mut t: FlowletTable<u64> = FlowletTable::new(Time::from_us(150));
        assert_eq!(t.current(1, Time::from_us(0)), None);
        t.assign(1, PathId(3), Time::from_us(0));
        // 100 us later: same flowlet.
        assert_eq!(t.current(1, Time::from_us(100)), Some(PathId(3)));
        // Activity refreshed: 100+140 < 150 gap from last activity.
        assert_eq!(t.current(1, Time::from_us(240)), Some(PathId(3)));
    }

    #[test]
    fn gap_starts_new_flowlet() {
        let mut t: FlowletTable<u64> = FlowletTable::new(Time::from_us(150));
        t.assign(1, PathId(3), Time::ZERO);
        assert_eq!(t.current(1, Time::from_us(151)), None, "gap > timeout");
        // Previous path still remembered for sticky tie-breaks.
        assert_eq!(t.previous_path(1), Some(PathId(3)));
    }

    #[test]
    fn boundary_gap_is_same_flowlet() {
        let mut t: FlowletTable<u64> = FlowletTable::new(Time::from_us(150));
        t.assign(1, PathId(0), Time::ZERO);
        assert_eq!(t.current(1, Time::from_us(150)), Some(PathId(0)));
    }

    #[test]
    fn keys_are_independent() {
        let mut t: FlowletTable<u64> = FlowletTable::new(Time::from_us(150));
        t.assign(1, PathId(0), Time::ZERO);
        t.assign(2, PathId(1), Time::ZERO);
        assert_eq!(t.current(1, Time::from_us(10)), Some(PathId(0)));
        assert_eq!(t.current(2, Time::from_us(10)), Some(PathId(1)));
        t.remove(1);
        assert_eq!(t.current(1, Time::from_us(11)), None);
        assert_eq!(t.len(), 1);
    }
}
