//! DRILL (Ghorbani et al.) — switch-local per-packet micro load
//! balancing.
//!
//! Each packet samples `d` random output queues plus the queue chosen
//! last time ("power of two choices with memory") and takes the
//! shortest, using only switch-local queue depths. Excellent under
//! symmetric fabrics and microbursts; §7 notes it reroutes every packet
//! vigorously with purely local information, so it suffers congestion
//! mismatch under asymmetry — which Fig. 13/14 style runs show.

use std::collections::BTreeMap;

use hermes_net::{FabricLb, LeafId, Packet, PathId, Uplinks};
use hermes_sim::{SimRng, Time};

/// DRILL(d, 1): `d` random samples plus one remembered best.
pub struct Drill {
    /// Random samples per decision.
    samples: usize,
    /// Remembered least-loaded uplink per (leaf, destination leaf).
    memory: BTreeMap<(LeafId, LeafId), PathId>,
}

impl Drill {
    pub fn new(samples: usize) -> Drill {
        assert!(samples >= 1);
        Drill {
            samples,
            memory: BTreeMap::new(),
        }
    }
}

impl FabricLb for Drill {
    fn ingress_select(
        &mut self,
        leaf: LeafId,
        dst_leaf: LeafId,
        _pkt: &Packet,
        uplinks: Uplinks<'_>,
        _now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let Uplinks {
            paths: candidates,
            qbytes: uplink_qbytes,
        } = uplinks;
        debug_assert_eq!(candidates.len(), uplink_qbytes.len());
        let key = (leaf, dst_leaf);
        let mut best: Option<(u64, PathId)> = None;
        let consider = |idx: usize, best: &mut Option<(u64, PathId)>| {
            let cand = (uplink_qbytes[idx], candidates[idx]);
            if best.is_none_or(|b| cand.0 < b.0) {
                *best = Some(cand);
            }
        };
        for _ in 0..self.samples.min(candidates.len()) {
            consider(rng.below(candidates.len()), &mut best);
        }
        if let Some(&prev) = self.memory.get(&key) {
            if let Some(idx) = candidates.iter().position(|&p| p == prev) {
                consider(idx, &mut best);
            }
        }
        let (_, chosen) = best.expect("at least one sample");
        self.memory.insert(key, chosen);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::{FlowId, HostId};

    fn pkt() -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(20), 0, 1460, false)
    }

    const CANDS: [PathId; 4] = [PathId(0), PathId(1), PathId(2), PathId(3)];

    #[test]
    fn converges_to_empty_queue() {
        let mut lb = Drill::new(2);
        let mut rng = SimRng::new(1);
        // Queue 2 is empty, everything else deep. With memory, DRILL
        // locks onto queue 2 after it is sampled once.
        let q = [50_000u64, 60_000, 0, 70_000];
        let mut hits = 0;
        for _ in 0..100 {
            if lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(),
                Uplinks {
                    paths: &CANDS,
                    qbytes: &q,
                },
                Time::ZERO,
                &mut rng,
            ) == PathId(2)
            {
                hits += 1;
            }
        }
        assert!(hits > 80, "memory must lock onto the empty queue: {hits}");
    }

    #[test]
    fn memory_is_per_leaf_pair() {
        let mut lb = Drill::new(2);
        let mut rng = SimRng::new(2);
        let q_a = [0u64, 9_000, 9_000, 9_000];
        let q_b = [9_000u64, 9_000, 9_000, 0];
        for _ in 0..50 {
            lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(),
                Uplinks {
                    paths: &CANDS,
                    qbytes: &q_a,
                },
                Time::ZERO,
                &mut rng,
            );
            lb.ingress_select(
                LeafId(2),
                LeafId(3),
                &pkt(),
                Uplinks {
                    paths: &CANDS,
                    qbytes: &q_b,
                },
                Time::ZERO,
                &mut rng,
            );
        }
        assert_eq!(lb.memory[&(LeafId(0), LeafId(1))], PathId(0));
        assert_eq!(lb.memory[&(LeafId(2), LeafId(3))], PathId(3));
    }

    #[test]
    fn full_scan_always_picks_the_shortest_queue() {
        // With samples >= candidates every queue is drawn eventually;
        // the min-queue choice must win regardless of the RNG, and the
        // decision must track the queues as they shift.
        let mut lb = Drill::new(4);
        let mut rng = SimRng::new(7);
        for (shortest, q) in [
            (1, [9_000u64, 100, 9_000, 9_000]),
            (3, [9_000, 8_000, 9_000, 50]),
            (0, [0, 8_000, 9_000, 7_000]),
        ] {
            // Repeat enough times that all four indices get sampled at
            // least once with overwhelming probability.
            let mut settled = None;
            for _ in 0..30 {
                settled = Some(lb.ingress_select(
                    LeafId(0),
                    LeafId(1),
                    &pkt(),
                    Uplinks {
                        paths: &CANDS,
                        qbytes: &q,
                    },
                    Time::ZERO,
                    &mut rng,
                ));
            }
            assert_eq!(
                settled,
                Some(PathId(shortest)),
                "queue state {q:?} must settle on the shortest"
            );
        }
    }

    #[test]
    fn memory_competes_against_fresh_samples() {
        // DRILL(d, 1): the remembered path is considered *in addition*
        // to the random samples. Seed the memory with the globally
        // shortest queue, then verify a single-sample DRILL never does
        // worse than that remembered queue afterwards.
        let mut lb = Drill::new(1);
        let mut rng = SimRng::new(8);
        let q = [40_000u64, 30_000, 200, 50_000];
        for _ in 0..64 {
            lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(),
                Uplinks {
                    paths: &CANDS,
                    qbytes: &q,
                },
                Time::ZERO,
                &mut rng,
            );
        }
        assert_eq!(lb.memory[&(LeafId(0), LeafId(1))], PathId(2));
        for _ in 0..50 {
            let p = lb.ingress_select(
                LeafId(0),
                LeafId(1),
                &pkt(),
                Uplinks {
                    paths: &CANDS,
                    qbytes: &q,
                },
                Time::ZERO,
                &mut rng,
            );
            assert_eq!(
                p,
                PathId(2),
                "one random sample can never beat the remembered empty queue"
            );
        }
    }

    #[test]
    fn handles_fewer_candidates_than_samples() {
        let mut lb = Drill::new(5);
        let mut rng = SimRng::new(3);
        let p = lb.ingress_select(
            LeafId(0),
            LeafId(1),
            &pkt(),
            Uplinks {
                paths: &[PathId(1)],
                qbytes: &[123],
            },
            Time::ZERO,
            &mut rng,
        );
        assert_eq!(p, PathId(1));
    }
}
