//! ECMP — per-flow random hashing (RFC 2992), the production baseline.
//!
//! A flow picks one path uniformly at random when it starts and never
//! moves, regardless of congestion, timeouts, or failures. This is what
//! makes it collapse under blackholes in Fig. 17: a deterministic subset
//! of flows is pinned to the failed switch forever.

use std::collections::BTreeMap;

use hermes_net::{EdgeLb, FlowCtx, FlowId, PathId};
use hermes_sim::{SimRng, Time};

/// Per-flow random hashing.
#[derive(Default)]
pub struct Ecmp {
    assigned: BTreeMap<FlowId, PathId>,
}

impl Ecmp {
    pub fn new() -> Ecmp {
        Ecmp::default()
    }
}

impl EdgeLb for Ecmp {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        _now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        if let Some(&p) = self.assigned.get(&ctx.flow) {
            if candidates.contains(&p) {
                return p;
            }
        }
        // New flow (or its hashed path's link was cut before it started).
        let p = candidates[rng.below(candidates.len())];
        self.assigned.insert(ctx.flow, p);
        p
    }

    fn on_flow_finished(&mut self, ctx: &FlowCtx, _now: Time) {
        self.assigned.remove(&ctx.flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::{HostId, LeafId};

    fn ctx(flow: u64) -> FlowCtx {
        FlowCtx {
            flow: FlowId(flow),
            src: HostId(0),
            dst: HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: PathId::UNSET,
            is_new: true,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    #[test]
    fn flow_is_sticky() {
        let mut lb = Ecmp::new();
        let mut rng = SimRng::new(1);
        let cands = [PathId(0), PathId(1), PathId(2), PathId(3)];
        let first = lb.select_path(&ctx(7), &cands, Time::ZERO, &mut rng);
        for _ in 0..100 {
            assert_eq!(lb.select_path(&ctx(7), &cands, Time::ZERO, &mut rng), first);
        }
    }

    #[test]
    fn flows_spread_roughly_uniformly() {
        let mut lb = Ecmp::new();
        let mut rng = SimRng::new(2);
        let cands = [PathId(0), PathId(1), PathId(2), PathId(3)];
        let mut counts = [0usize; 4];
        for f in 0..4000 {
            let p = lb.select_path(&ctx(f), &cands, Time::ZERO, &mut rng);
            counts[p.0 as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn finished_flows_are_forgotten() {
        let mut lb = Ecmp::new();
        let mut rng = SimRng::new(3);
        let cands = [PathId(0), PathId(1)];
        lb.select_path(&ctx(1), &cands, Time::ZERO, &mut rng);
        assert_eq!(lb.assigned.len(), 1);
        lb.on_flow_finished(&ctx(1), Time::ZERO);
        assert!(lb.assigned.is_empty());
    }

    #[test]
    fn rehashes_only_when_path_dies() {
        let mut lb = Ecmp::new();
        let mut rng = SimRng::new(4);
        let all = [PathId(0), PathId(1), PathId(2), PathId(3)];
        let p = lb.select_path(&ctx(9), &all, Time::ZERO, &mut rng);
        // Remove the assigned path from candidates (link cut): re-hash.
        let rest: Vec<PathId> = all.iter().copied().filter(|&x| x != p).collect();
        let p2 = lb.select_path(&ctx(9), &rest, Time::ZERO, &mut rng);
        assert_ne!(p, p2);
        assert!(rest.contains(&p2));
    }
}
