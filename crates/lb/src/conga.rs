//! CONGA (Alizadeh et al., SIGCOMM 2014) — distributed,
//! congestion-aware, flowlet-granularity load balancing in the fabric.
//!
//! Faithful mechanics at the level the Hermes paper depends on:
//!
//! * per-uplink/downlink DRE utilization estimators at every switch,
//! * in-band metadata: each packet carries `(lb_tag, ce)` where `ce`
//!   accumulates the max link utilization along its path,
//! * the destination leaf stores `ce` in its *congestion-from-leaf*
//!   table and piggybacks one `(fb_tag, fb_ce)` entry (round-robin) on
//!   reverse traffic, filling the source's *congestion-to-leaf* table,
//! * new flowlets choose the uplink minimizing
//!   `max(local DRE, remote metric)`, preferring the current path on
//!   ties,
//! * **metric aging**: a to-leaf entry not refreshed within `age` is
//!   treated as zero ("the alternative path is assumed empty after an
//!   aging period", §2.2.2 Example 4 — the root of the hidden-terminal
//!   flip-flopping the paper demonstrates).
//!
//! Differences from the ASIC implementation, documented in DESIGN.md:
//! metrics are `f32` rather than 3-bit quantized, and the overlay
//! encapsulation is the simulator's explicit path tag.

use hermes_net::{
    Dre, FabricLb, FlowId, HostId, LeafId, LinkRef, Packet, PathId, Topology, Uplinks,
};
use hermes_sim::{SimRng, Time};

use crate::flowlet::FlowletTable;

/// CONGA parameters.
#[derive(Clone, Copy, Debug)]
pub struct CongaCfg {
    /// Flowlet gap. The paper tunes this to 150 µs for DCTCP (§5.1).
    pub flowlet_timeout: Time,
    /// DRE horizon τ.
    pub dre_tau: Time,
    /// Congestion-to-leaf metric aging (10 ms, per §2.2.2).
    pub metric_age: Time,
    /// Metrics within this of the minimum count as tied.
    pub tie_epsilon: f64,
}

impl Default for CongaCfg {
    fn default() -> CongaCfg {
        CongaCfg {
            flowlet_timeout: Time::from_us(150),
            dre_tau: Dre::DEFAULT_TAU,
            metric_age: Time::from_ms(10),
            tie_epsilon: 0.02,
        }
    }
}

/// A remote metric with its refresh time.
#[derive(Clone, Copy, Debug)]
struct Aged {
    ce: f64,
    stamp: Time,
}

/// CONGA: one object holds every switch's state (the simulation is
/// single-threaded; "distributed" state is indexed by switch id).
pub struct Conga {
    cfg: CongaCfg,
    n_spines: usize,
    hosts_per_leaf: usize,
    /// Leaf uplink rates (0 where cut) and DREs.
    up_rate: Vec<Vec<u64>>,
    up_dre: Vec<Vec<Dre>>,
    /// Spine downlink DREs (rate = same link, reverse direction).
    down_dre: Vec<Vec<Dre>>,
    /// `to_leaf[leaf][dst_leaf][spine]`: remote path metric (aged).
    to_leaf: Vec<Vec<Vec<Option<Aged>>>>,
    /// `from_leaf[leaf][src_leaf][spine]`: metric harvested from arrivals.
    from_leaf: Vec<Vec<Vec<Option<f64>>>>,
    /// Round-robin feedback cursor per (leaf, peer leaf).
    fb_cursor: Vec<Vec<usize>>,
    flowlets: FlowletTable<(FlowId, LeafId)>,
}

impl Conga {
    pub fn new(topo: &Topology, cfg: CongaCfg) -> Conga {
        let (nl, ns) = (topo.n_leaves, topo.n_spines);
        let up_rate: Vec<Vec<u64>> = (0..nl)
            .map(|l| {
                (0..ns)
                    .map(|s| topo.up[l][s].map_or(0, |c| c.rate_bps))
                    .collect()
            })
            .collect();
        Conga {
            n_spines: ns,
            hosts_per_leaf: topo.hosts_per_leaf,
            up_rate,
            up_dre: vec![vec![Dre::new(cfg.dre_tau); ns]; nl],
            down_dre: vec![vec![Dre::new(cfg.dre_tau); nl]; ns],
            to_leaf: vec![vec![vec![None; ns]; nl]; nl],
            from_leaf: vec![vec![vec![None; ns]; nl]; nl],
            fb_cursor: vec![vec![0; nl]; nl],
            flowlets: FlowletTable::new(cfg.flowlet_timeout),
            cfg,
        }
    }

    #[inline]
    fn host_leaf(&self, h: HostId) -> usize {
        h.0 as usize / self.hosts_per_leaf
    }

    /// The remote (aged) metric for a path, 0 when absent or expired.
    fn remote_metric(&self, leaf: usize, dst_leaf: usize, spine: usize, now: Time) -> f64 {
        match self.to_leaf[leaf][dst_leaf][spine] {
            Some(a) if now.saturating_sub(a.stamp) <= self.cfg.metric_age => a.ce,
            _ => 0.0,
        }
    }

    /// Exposed for tests and Fig. 4 diagnostics.
    pub fn to_leaf_metric(&self, leaf: LeafId, dst_leaf: LeafId, path: PathId, now: Time) -> f64 {
        self.remote_metric(leaf.0 as usize, dst_leaf.0 as usize, path.0 as usize, now)
    }

    /// Exposed for tests: the harvested from-leaf metric.
    pub fn from_leaf_metric(&self, leaf: LeafId, src_leaf: LeafId, path: PathId) -> Option<f64> {
        self.from_leaf[leaf.0 as usize][src_leaf.0 as usize][path.0 as usize]
    }
}

impl FabricLb for Conga {
    fn ingress_select(
        &mut self,
        leaf: LeafId,
        dst_leaf: LeafId,
        pkt: &Packet,
        uplinks: Uplinks<'_>,
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let candidates = uplinks.paths;
        let key = (pkt.flow, leaf);
        if let Some(p) = self.flowlets.current(key, now) {
            if candidates.contains(&p) {
                return p;
            }
        }
        // New flowlet: minimize max(local DRE, remote metric).
        let l = leaf.0 as usize;
        let d = dst_leaf.0 as usize;
        let metrics: Vec<f64> = candidates
            .iter()
            .map(|p| {
                let s = p.0 as usize;
                let local = self.up_dre[l][s].utilization(self.up_rate[l][s].max(1), now);
                local.max(self.remote_metric(l, d, s, now))
            })
            .collect();
        let min = metrics.iter().cloned().fold(f64::INFINITY, f64::min);
        let tied: Vec<usize> = (0..candidates.len())
            .filter(|&i| metrics[i] <= min + self.cfg.tie_epsilon)
            .collect();
        // Prefer the flow's previous path on ties (stability), else random.
        let prev = self.flowlets.previous_path(key);
        let choice = match prev {
            Some(p) if tied.iter().any(|&i| candidates[i] == p) => p,
            _ => candidates[tied[rng.below(tied.len())]],
        };
        self.flowlets.assign(key, choice, now);
        choice
    }

    fn on_forward(&mut self, link: LinkRef, pkt: &mut Packet, now: Time) {
        match link {
            LinkRef::Up { leaf, spine } => {
                let (l, s) = (leaf.0 as usize, spine as usize);
                self.up_dre[l][s].add(pkt.size as u64, now);
                let util = self.up_dre[l][s].utilization(self.up_rate[l][s].max(1), now);
                pkt.meta.ce = pkt.meta.ce.max(util as f32);
                // Piggyback one feedback entry about the *destination
                // leaf's* traffic toward us (round-robin over spines
                // with harvested metrics).
                let peer = self.host_leaf(pkt.dst);
                let table = &self.from_leaf[l][peer];
                let ns = self.n_spines;
                let cur = &mut self.fb_cursor[l][peer];
                for off in 0..ns {
                    let idx = (*cur + off) % ns;
                    if let Some(ce) = table[idx] {
                        pkt.meta.fb_tag = idx as u16;
                        pkt.meta.fb_ce = ce as f32;
                        pkt.meta.fb_valid = true;
                        *cur = (idx + 1) % ns;
                        break;
                    }
                }
            }
            LinkRef::Down { spine, leaf } => {
                let (s, l) = (spine as usize, leaf.0 as usize);
                self.down_dre[s][l].add(pkt.size as u64, now);
                // Downlink rate equals the (leaf, spine) link rate.
                let rate = self.up_rate[l][s].max(1);
                let util = self.down_dre[s][l].utilization(rate, now);
                pkt.meta.ce = pkt.meta.ce.max(util as f32);
            }
            LinkRef::HostDown { .. } => {}
        }
    }

    fn on_dst_leaf(&mut self, leaf: LeafId, pkt: &mut Packet, now: Time) {
        let l = leaf.0 as usize;
        let src_leaf = self.host_leaf(pkt.src);
        // Harvest the forward metric for this (src leaf, path).
        if (pkt.meta.lb_tag as usize) < self.n_spines {
            self.from_leaf[l][src_leaf][pkt.meta.lb_tag as usize] = Some(pkt.meta.ce as f64);
        }
        // Consume piggybacked feedback about our traffic toward src_leaf.
        if pkt.meta.fb_valid && (pkt.meta.fb_tag as usize) < self.n_spines {
            self.to_leaf[l][src_leaf][pkt.meta.fb_tag as usize] = Some(Aged {
                ce: pkt.meta.fb_ce as f64,
                stamp: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::sim_baseline() // 8 leaves, 8 spines, 16 hosts/leaf
    }

    fn data(flow: u64, src: u32, dst: u32) -> Packet {
        Packet::data(FlowId(flow), HostId(src), HostId(dst), 0, 1460, false)
    }

    fn cands(n: usize) -> Vec<PathId> {
        (0..n as u16).map(PathId).collect()
    }

    #[test]
    fn new_flowlet_avoids_locally_hot_uplink() {
        let mut c = Conga::new(&topo(), CongaCfg::default());
        let mut rng = SimRng::new(1);
        let now = Time::from_us(100);
        // Saturate uplink 0 of leaf 0 via the DRE.
        for _ in 0..200 {
            let mut p = data(9, 0, 16);
            c.on_forward(
                LinkRef::Up {
                    leaf: LeafId(0),
                    spine: 0,
                },
                &mut p,
                now,
            );
        }
        let mut picks = std::collections::BTreeSet::new();
        for f in 0..50 {
            let p = c.ingress_select(
                LeafId(0),
                LeafId(1),
                &data(f, 0, 16),
                Uplinks {
                    paths: &cands(8),
                    qbytes: &[0; 8],
                },
                now,
                &mut rng,
            );
            picks.insert(p);
        }
        assert!(!picks.contains(&PathId(0)), "hot uplink must be avoided");
    }

    #[test]
    fn feedback_loop_fills_to_leaf_table() {
        let mut c = Conga::new(&topo(), CongaCfg::default());
        let now = Time::from_us(50);
        // 1. A packet from leaf 0 → leaf 1 via spine 3 arrives congested.
        let mut p = data(1, 0, 16);
        p.meta.lb_tag = 3;
        p.meta.ce = 0.7;
        c.on_dst_leaf(LeafId(1), &mut p, now);
        let harvested = c.from_leaf_metric(LeafId(1), LeafId(0), PathId(3)).unwrap();
        assert!((harvested - 0.7).abs() < 1e-6, "harvested {harvested}");
        // 2. A reverse packet (leaf 1 → leaf 0) gets the feedback stamped
        //    at leaf 1's uplink...
        let mut rev = data(2, 16, 0);
        c.on_forward(
            LinkRef::Up {
                leaf: LeafId(1),
                spine: 5,
            },
            &mut rev,
            now,
        );
        assert!(rev.meta.fb_valid);
        assert_eq!(rev.meta.fb_tag, 3);
        // 3. ...and leaf 0 consumes it into its to-leaf table.
        c.on_dst_leaf(LeafId(0), &mut rev, now);
        let m = c.to_leaf_metric(LeafId(0), LeafId(1), PathId(3), now);
        assert!((m - 0.7).abs() < 1e-6, "to-leaf metric {m}");
    }

    #[test]
    fn metric_ages_to_zero() {
        let mut c = Conga::new(&topo(), CongaCfg::default());
        let now = Time::from_ms(1);
        let mut rev = data(2, 16, 0);
        rev.meta.fb_tag = 2;
        rev.meta.fb_ce = 0.9;
        rev.meta.fb_valid = true;
        c.on_dst_leaf(LeafId(0), &mut rev, now);
        assert!(c.to_leaf_metric(LeafId(0), LeafId(1), PathId(2), now) > 0.8);
        // Just before the aging horizon: still valid.
        let before = now + Time::from_ms(10);
        assert!(c.to_leaf_metric(LeafId(0), LeafId(1), PathId(2), before) > 0.8);
        // Past it: treated as empty — the Example 4 failure mode.
        let after = now + Time::from_ms(10) + Time::from_us(1);
        assert_eq!(
            c.to_leaf_metric(LeafId(0), LeafId(1), PathId(2), after),
            0.0
        );
    }

    #[test]
    fn flowlets_stick_across_metric_changes() {
        let mut c = Conga::new(&topo(), CongaCfg::default());
        let mut rng = SimRng::new(2);
        let p0 = c.ingress_select(
            LeafId(0),
            LeafId(1),
            &data(7, 0, 16),
            Uplinks {
                paths: &cands(8),
                qbytes: &[0; 8],
            },
            Time::from_us(10),
            &mut rng,
        );
        // Saturate that uplink; packets 20 µs apart must still stick.
        for _ in 0..200 {
            let mut p = data(9, 1, 17);
            c.on_forward(
                LinkRef::Up {
                    leaf: LeafId(0),
                    spine: p0.0,
                },
                &mut p,
                Time::from_us(20),
            );
        }
        let p1 = c.ingress_select(
            LeafId(0),
            LeafId(1),
            &data(7, 0, 16),
            Uplinks {
                paths: &cands(8),
                qbytes: &[0; 8],
            },
            Time::from_us(30),
            &mut rng,
        );
        assert_eq!(p0, p1, "same flowlet must not move");
        // After a gap > timeout, the flow escapes the hot path.
        let p2 = c.ingress_select(
            LeafId(0),
            LeafId(1),
            &data(7, 0, 16),
            Uplinks {
                paths: &cands(8),
                qbytes: &[0; 8],
            },
            Time::from_us(30 + 151),
            &mut rng,
        );
        assert_ne!(p2, p0, "new flowlet must avoid the hot uplink");
    }

    #[test]
    fn ce_accumulates_max_along_path() {
        let mut c = Conga::new(&topo(), CongaCfg::default());
        let now = Time::from_us(10);
        let mut p = data(1, 0, 16);
        // Load the downlink DRE of spine 2 → leaf 1 heavily.
        for _ in 0..300 {
            let mut q = data(9, 32, 16);
            c.on_forward(
                LinkRef::Down {
                    spine: 2,
                    leaf: LeafId(1),
                },
                &mut q,
                now,
            );
        }
        let before = p.meta.ce;
        c.on_forward(
            LinkRef::Up {
                leaf: LeafId(0),
                spine: 2,
            },
            &mut p,
            now,
        );
        let after_up = p.meta.ce;
        c.on_forward(
            LinkRef::Down {
                spine: 2,
                leaf: LeafId(1),
            },
            &mut p,
            now,
        );
        assert!(p.meta.ce >= after_up && after_up >= before);
        assert!(p.meta.ce > 0.5, "hot downlink must dominate: {}", p.meta.ce);
    }
}
