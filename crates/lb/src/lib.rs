//! # hermes-lb — baseline datacenter load balancers
//!
//! Every scheme the paper compares Hermes against (Table 1):
//!
//! | Scheme | Kind | Granularity | Congestion awareness |
//! |---|---|---|---|
//! | [`Ecmp`] | edge | flow | oblivious |
//! | [`RoundRobinSpray`] (DRB) | edge | packet | oblivious |
//! | [`PrestoSpray`] (Presto*) | edge | packet (weighted) | oblivious |
//! | [`FlowBender`] | edge | flow (reactive rehash) | end-host ECN |
//! | [`CloveEcn`] | edge | flowlet | end-host ECN weights |
//! | [`LetFlow`] | switch | flowlet | oblivious (implicit) |
//! | [`Drill`] | switch | packet | switch-local queues |
//! | [`Conga`] | switch | flowlet | global (in-band feedback) |
//!
//! Edge schemes implement `hermes_net::EdgeLb`; switch schemes implement
//! `hermes_net::FabricLb`. Hermes itself lives in `hermes-core`.

mod clove;
mod conga;
mod drill;
mod ecmp;
mod flowbender;
mod flowlet;
mod letflow;
mod spray;

pub use clove::{CloveCfg, CloveEcn};
pub use conga::{Conga, CongaCfg};
pub use drill::Drill;
pub use ecmp::Ecmp;
pub use flowbender::{FlowBender, FlowBenderCfg};
pub use flowlet::FlowletTable;
pub use letflow::LetFlow;
pub use spray::{PrestoSpray, RoundRobinSpray};
