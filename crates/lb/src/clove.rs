//! CLOVE-ECN (Katta et al., 2016) — edge-based, congestion-aware,
//! flowlet-granularity load balancing.
//!
//! The source hypervisor keeps a weight per path toward each destination
//! leaf. ECN echoes piggybacked on ACKs shrink the marked path's weight
//! multiplicatively and redistribute it to the others; new flowlets pick
//! a path by weighted choice. Visibility is limited to paths the host's
//! own traffic touches — the limitation Table 2 and §5.3.2 quantify.

use std::collections::BTreeMap;

use hermes_net::{EdgeLb, FlowCtx, FlowId, LeafId, PathId};
use hermes_sim::{SimRng, Time};

use crate::flowlet::FlowletTable;

/// CLOVE-ECN parameters.
#[derive(Clone, Copy, Debug)]
pub struct CloveCfg {
    /// Flowlet gap (150 µs in simulations, 800 µs testbed-scale — §5.1).
    pub flowlet_timeout: Time,
    /// Multiplicative decrease applied to a path's weight per
    /// ECN-marked ACK.
    pub beta: f64,
    /// Floor so no path's weight can reach zero (keeps probing alive).
    pub min_weight: f64,
}

impl Default for CloveCfg {
    fn default() -> CloveCfg {
        CloveCfg {
            flowlet_timeout: Time::from_us(150),
            beta: 0.25,
            min_weight: 0.01,
        }
    }
}

/// Per-destination-leaf weight vector.
struct Weights {
    w: BTreeMap<PathId, f64>,
}

impl Weights {
    fn new(candidates: &[PathId]) -> Weights {
        Weights {
            w: candidates.iter().map(|&p| (p, 1.0)).collect(),
        }
    }

    fn ensure(&mut self, candidates: &[PathId]) {
        for &p in candidates {
            self.w.entry(p).or_insert(1.0);
        }
    }

    /// Weighted random choice among live candidates.
    fn choose(&self, candidates: &[PathId], rng: &mut SimRng) -> PathId {
        let total: f64 = candidates
            .iter()
            .map(|p| self.w.get(p).copied().unwrap_or(1.0))
            .sum();
        let mut x = rng.f64() * total;
        for &p in candidates {
            let w = self.w.get(&p).copied().unwrap_or(1.0);
            if x < w {
                return p;
            }
            x -= w;
        }
        *candidates.last().expect("empty candidates")
    }

    /// ECN on `path`: shift `beta` of its weight to the other paths.
    fn punish(&mut self, path: PathId, beta: f64, min_weight: f64) {
        let n = self.w.len();
        if n <= 1 {
            return;
        }
        let Some(cur) = self.w.get_mut(&path) else {
            return;
        };
        let removed = (*cur * beta).min(*cur - min_weight).max(0.0);
        *cur -= removed;
        let share = removed / (n - 1) as f64;
        for (p, w) in &mut self.w {
            if *p != path {
                *w += share;
            }
        }
    }
}

/// CLOVE-ECN.
pub struct CloveEcn {
    cfg: CloveCfg,
    weights: BTreeMap<LeafId, Weights>,
    flowlets: FlowletTable<FlowId>,
}

impl CloveEcn {
    pub fn new(cfg: CloveCfg) -> CloveEcn {
        CloveEcn {
            flowlets: FlowletTable::new(cfg.flowlet_timeout),
            weights: BTreeMap::new(),
            cfg,
        }
    }

    /// Current weight of a path (testing/diagnostics).
    pub fn weight(&self, dst_leaf: LeafId, path: PathId) -> Option<f64> {
        self.weights
            .get(&dst_leaf)
            .and_then(|w| w.w.get(&path))
            .copied()
    }
}

impl EdgeLb for CloveEcn {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        if let Some(p) = self.flowlets.current(ctx.flow, now) {
            if candidates.contains(&p) {
                return p;
            }
        }
        let w = self
            .weights
            .entry(ctx.dst_leaf)
            .or_insert_with(|| Weights::new(candidates));
        w.ensure(candidates);
        let p = w.choose(candidates, rng);
        self.flowlets.assign(ctx.flow, p, now);
        p
    }

    fn on_ack(
        &mut self,
        ctx: &FlowCtx,
        path: PathId,
        _rtt: Option<Time>,
        ecn: bool,
        _bytes_acked: u64,
        _now: Time,
    ) {
        if ecn && path.is_spine() {
            if let Some(w) = self.weights.get_mut(&ctx.dst_leaf) {
                w.punish(path, self.cfg.beta, self.cfg.min_weight);
            }
        }
    }

    fn on_flow_finished(&mut self, ctx: &FlowCtx, _now: Time) {
        self.flowlets.remove(ctx.flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::HostId;

    fn ctx(flow: u64) -> FlowCtx {
        FlowCtx {
            flow: FlowId(flow),
            src: HostId(0),
            dst: HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: PathId::UNSET,
            is_new: false,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    const CANDS: [PathId; 4] = [PathId(0), PathId(1), PathId(2), PathId(3)];

    #[test]
    fn flowlet_stickiness() {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(5);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        // Packets 10 us apart stay on the same path.
        for i in 1..20 {
            let q = lb.select_path(&ctx(1), &CANDS, Time::from_us(i * 10), &mut rng);
            assert_eq!(p, q);
        }
    }

    #[test]
    fn ecn_shifts_weight_away() {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(5);
        lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        let before = lb.weight(LeafId(1), PathId(0)).unwrap();
        for _ in 0..10 {
            lb.on_ack(&ctx(1), PathId(0), None, true, 1460, Time::from_us(50));
        }
        let after = lb.weight(LeafId(1), PathId(0)).unwrap();
        assert!(after < before * 0.2, "weight must collapse: {after}");
        // Total weight conserved.
        let total: f64 = CANDS
            .iter()
            .map(|&p| lb.weight(LeafId(1), p).unwrap())
            .sum();
        assert!((total - 4.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn punished_path_is_rarely_chosen() {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(5);
        lb.select_path(&ctx(0), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..40 {
            lb.on_ack(&ctx(0), PathId(2), None, true, 1460, Time::ZERO);
        }
        // New flowlets (distinct flows) avoid path 2.
        let mut hits = 0;
        for f in 1..=1000 {
            if lb.select_path(&ctx(f), &CANDS, Time::ZERO, &mut rng) == PathId(2) {
                hits += 1;
            }
        }
        assert!(hits < 30, "punished path chosen {hits}/1000 times");
    }

    #[test]
    fn weights_never_hit_zero() {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(5);
        lb.select_path(&ctx(0), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..10_000 {
            lb.on_ack(&ctx(0), PathId(1), None, true, 1460, Time::ZERO);
        }
        let w = lb.weight(LeafId(1), PathId(1)).unwrap();
        assert!(w >= CloveCfg::default().min_weight * 0.99, "weight {w}");
    }

    #[test]
    fn unmarked_acks_leave_weights_alone() {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(5);
        lb.select_path(&ctx(0), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..100 {
            lb.on_ack(&ctx(0), PathId(0), None, false, 1460, Time::ZERO);
        }
        assert_eq!(lb.weight(LeafId(1), PathId(0)), Some(1.0));
    }
}
