//! FlowBender (Kabbani et al., CoNEXT 2014) — end-host flow-level
//! adaptive rerouting.
//!
//! Each flow monitors the fraction of ECN-echoed ACKs over a window;
//! when it exceeds a threshold the flow is re-hashed onto a random
//! different path (blind — no view of where it lands). Timeouts also
//! trigger a re-hash. The paper characterizes this as "reactive and
//! random rerouting": timely, but neither congestion-informed in its
//! *choice* nor cautious, which costs it under high load.

use std::collections::BTreeMap;

use hermes_net::{EdgeLb, FlowCtx, FlowId, PathId};
use hermes_sim::{SimRng, Time};

/// FlowBender parameters (defaults per the original paper).
#[derive(Clone, Copy, Debug)]
pub struct FlowBenderCfg {
    /// Fraction of marked ACKs that triggers a reroute.
    pub ecn_threshold: f64,
    /// ACKs per observation window (≈ one congestion window).
    pub window_acks: u32,
}

impl Default for FlowBenderCfg {
    fn default() -> FlowBenderCfg {
        FlowBenderCfg {
            ecn_threshold: 0.05,
            window_acks: 16,
        }
    }
}

struct FlowState {
    path: PathId,
    acks: u32,
    marked: u32,
    want_reroute: bool,
}

/// FlowBender.
pub struct FlowBender {
    cfg: FlowBenderCfg,
    flows: BTreeMap<FlowId, FlowState>,
}

impl FlowBender {
    pub fn new(cfg: FlowBenderCfg) -> FlowBender {
        FlowBender {
            cfg,
            flows: BTreeMap::new(),
        }
    }
}

impl EdgeLb for FlowBender {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let st = self.flows.entry(ctx.flow).or_insert_with(|| FlowState {
            path: candidates[rng.below(candidates.len())],
            acks: 0,
            marked: 0,
            want_reroute: false,
        });
        let dead = !candidates.contains(&st.path);
        if st.want_reroute || dead {
            st.want_reroute = false;
            let from = st.path;
            // Re-hash to a *different* live path when possible.
            let others: Vec<PathId> = candidates
                .iter()
                .copied()
                .filter(|&p| p != st.path)
                .collect();
            st.path = if others.is_empty() {
                candidates[rng.below(candidates.len())]
            } else {
                others[rng.below(others.len())]
            };
            let to = st.path;
            hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Reroute {
                flow: ctx.flow.0,
                dst_leaf: u32::from(ctx.dst_leaf.0),
                from_path: i64::from(from.0),
                to_path: i64::from(to.0),
                verdict: hermes_telemetry::RerouteVerdict::Bounce,
            });
        }
        st.path
    }

    fn on_ack(
        &mut self,
        ctx: &FlowCtx,
        _path: PathId,
        _rtt: Option<Time>,
        ecn: bool,
        _bytes_acked: u64,
        _now: Time,
    ) {
        let Some(st) = self.flows.get_mut(&ctx.flow) else {
            return;
        };
        st.acks += 1;
        if ecn {
            st.marked += 1;
        }
        if st.acks >= self.cfg.window_acks {
            let frac = st.marked as f64 / st.acks as f64;
            if frac > self.cfg.ecn_threshold {
                st.want_reroute = true;
            }
            st.acks = 0;
            st.marked = 0;
        }
    }

    fn on_timeout(&mut self, ctx: &FlowCtx, _path: PathId, _now: Time) {
        if let Some(st) = self.flows.get_mut(&ctx.flow) {
            st.want_reroute = true;
        }
    }

    fn on_flow_finished(&mut self, ctx: &FlowCtx, _now: Time) {
        self.flows.remove(&ctx.flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::{HostId, LeafId};

    fn ctx(flow: u64) -> FlowCtx {
        FlowCtx {
            flow: FlowId(flow),
            src: HostId(0),
            dst: HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: PathId::UNSET,
            is_new: true,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    const CANDS: [PathId; 4] = [PathId(0), PathId(1), PathId(2), PathId(3)];

    #[test]
    fn stable_without_congestion() {
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(9);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..200 {
            lb.on_ack(&ctx(1), p, None, false, 1460, Time::ZERO);
            assert_eq!(lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng), p);
        }
    }

    #[test]
    fn sustained_marks_cause_reroute() {
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(9);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..16 {
            lb.on_ack(&ctx(1), p, None, true, 1460, Time::ZERO);
        }
        let q = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        assert_ne!(p, q, "marked window must move the flow");
    }

    #[test]
    fn below_threshold_does_not_reroute() {
        let cfg = FlowBenderCfg {
            ecn_threshold: 0.5,
            window_acks: 10,
        };
        let mut lb = FlowBender::new(cfg);
        let mut rng = SimRng::new(9);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        // 3 of 10 marked < 50%.
        for i in 0..10 {
            lb.on_ack(&ctx(1), p, None, i < 3, 1460, Time::ZERO);
        }
        assert_eq!(lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng), p);
    }

    #[test]
    fn sustained_streaks_keep_bouncing_window_after_window() {
        // FlowBender under persistent congestion is *restless*: every
        // completed window of marked ACKs re-hashes again — it never
        // settles while the marks keep coming.
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(21);
        let mut path = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        let mut bounces = 0;
        for _ in 0..8 {
            for _ in 0..16 {
                lb.on_ack(&ctx(1), path, None, true, 1460, Time::ZERO);
            }
            let next = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
            assert_ne!(next, path, "a fully-marked window must bounce the flow");
            path = next;
            bounces += 1;
        }
        assert_eq!(bounces, 8);
    }

    #[test]
    fn window_boundary_resets_the_mark_count() {
        // Marks do not accumulate across windows: 8 marked ACKs in one
        // window then 8 in the next (threshold 60% of a 16-ACK window)
        // never reaches the threshold, even though 16 total marks
        // arrived.
        let cfg = FlowBenderCfg {
            ecn_threshold: 0.6,
            window_acks: 16,
        };
        let mut lb = FlowBender::new(cfg);
        let mut rng = SimRng::new(22);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        for window in 0..2 {
            let _ = window;
            for i in 0..16 {
                lb.on_ack(&ctx(1), p, None, i < 8, 1460, Time::ZERO);
            }
            assert_eq!(
                lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng),
                p,
                "50% marks under a 60% threshold must not reroute"
            );
        }
    }

    #[test]
    fn rehash_avoids_the_current_path_when_alternatives_exist() {
        // Every trigger over many trials lands on a *different* path
        // than the one the flow was on — the re-hash excludes the
        // current path whenever others are live.
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(23);
        let mut path = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        for _ in 0..64 {
            lb.on_timeout(&ctx(1), path, Time::ZERO);
            let next = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
            assert_ne!(next, path);
            path = next;
        }
    }

    #[test]
    fn dead_path_forces_rehash_onto_survivors() {
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(24);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        // The flow's path disappears from the candidate set (link cut):
        // the next selection must move to a surviving path unprompted.
        let survivors: Vec<PathId> = CANDS.iter().copied().filter(|&c| c != p).collect();
        let q = lb.select_path(&ctx(1), &survivors, Time::ZERO, &mut rng);
        assert!(survivors.contains(&q));
    }

    #[test]
    fn telemetry_bounce_records_fire_on_rehash_only() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::{Record, RerouteVerdict};
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(9);
        // Initial blind pick: no reroute record.
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        assert!(hermes_telemetry::drain().is_empty());
        // A fully marked window bounces the flow: exactly one record.
        for _ in 0..16 {
            lb.on_ack(&ctx(1), p, None, true, 1460, Time::ZERO);
        }
        let q = lb.select_path(&ctx(1), &CANDS, Time::from_us(7), &mut rng);
        let evs = hermes_telemetry::drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].record,
            Record::Reroute {
                flow: 1,
                dst_leaf: 1,
                from_path: i64::from(p.0),
                to_path: i64::from(q.0),
                verdict: RerouteVerdict::Bounce,
            }
        );
        assert_eq!(evs[0].at, Time::from_us(7));
        hermes_telemetry::uninstall();
    }

    #[test]
    fn timeout_triggers_reroute() {
        let mut lb = FlowBender::new(FlowBenderCfg::default());
        let mut rng = SimRng::new(9);
        let p = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        lb.on_timeout(&ctx(1), p, Time::from_ms(10));
        let q = lb.select_path(&ctx(1), &CANDS, Time::ZERO, &mut rng);
        assert_ne!(p, q);
    }
}
