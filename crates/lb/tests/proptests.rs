//! Property-based tests of the baseline load balancers.

use hermes_lb::{
    CloveCfg, CloveEcn, Conga, CongaCfg, Drill, Ecmp, FlowletTable, LetFlow, PrestoSpray,
    RoundRobinSpray,
};
use hermes_net::{
    EdgeLb, FabricLb, FlowCtx, FlowId, HostId, LeafId, Packet, PathId, Topology, Uplinks,
};
use hermes_sim::{SimRng, Time};
use proptest::prelude::*;

fn ctx(flow: u64, current: PathId, is_new: bool) -> FlowCtx {
    FlowCtx {
        flow: FlowId(flow),
        src: HostId(0),
        dst: HostId(20),
        src_leaf: LeafId(0),
        dst_leaf: LeafId(1),
        bytes_sent: 0,
        rate_bps: 0.0,
        current_path: current,
        is_new,
        timed_out: false,
        since_change: Time::MAX,
    }
}

fn cands(n: u16) -> Vec<PathId> {
    (0..n).map(PathId).collect()
}

proptest! {
    /// Every edge scheme always returns a live candidate, whatever the
    /// candidate set and call sequence.
    #[test]
    fn edge_schemes_always_pick_live_candidates(
        n_paths in 1u16..9,
        seed in 0u64..1000,
        calls in proptest::collection::vec((0u64..20, 0u64..10_000), 1..120),
    ) {
        let cs = cands(n_paths);
        let mut rng = SimRng::new(seed);
        let mut schemes: Vec<Box<dyn EdgeLb>> = vec![
            Box::new(Ecmp::new()),
            Box::new(RoundRobinSpray::new()),
            Box::new(PrestoSpray::equal()),
            Box::new(CloveEcn::new(CloveCfg::default())),
        ];
        for lb in &mut schemes {
            let mut current = PathId::UNSET;
            for &(flow, t_us) in &calls {
                let c = ctx(flow, current, current == PathId::UNSET);
                let p = lb.select_path(&c, &cs, Time::from_us(t_us), &mut rng);
                prop_assert!(cs.contains(&p), "scheme picked dead path {p:?}");
                current = p;
            }
        }
    }

    /// A flowlet table never returns a path it was not given, and any
    /// two hits within the timeout return the same path.
    #[test]
    fn flowlet_table_consistency(
        timeout_us in 10u64..1000,
        events in proptest::collection::vec((0u64..5, 0u64..50_000), 1..200),
    ) {
        let mut t: FlowletTable<u64> = FlowletTable::new(Time::from_us(timeout_us));
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(_, at)| at);
        let mut last_assigned: std::collections::BTreeMap<u64, (PathId, u64)> = Default::default();
        for (key, at_us) in sorted {
            let now = Time::from_us(at_us);
            match t.current(key, now) {
                Some(p) => {
                    let (ap, at0) = last_assigned[&key];
                    prop_assert_eq!(p, ap, "flowlet changed path without gap");
                    prop_assert!(at_us.saturating_sub(at0) <= 100_000);
                    last_assigned.insert(key, (p, at_us));
                }
                None => {
                    let p = PathId((key % 4) as u16);
                    t.assign(key, p, now);
                    last_assigned.insert(key, (p, at_us));
                }
            }
        }
    }

    /// CLOVE weight updates conserve total weight and never go negative.
    #[test]
    fn clove_weights_conserved(
        marks in proptest::collection::vec(0u16..4, 0..300),
        seed in 0u64..100,
    ) {
        let mut lb = CloveEcn::new(CloveCfg::default());
        let mut rng = SimRng::new(seed);
        let cs = cands(4);
        lb.select_path(&ctx(1, PathId::UNSET, true), &cs, Time::ZERO, &mut rng);
        for m in marks {
            lb.on_ack(&ctx(1, PathId(0), false), PathId(m), None, true, 1460, Time::ZERO);
        }
        let total: f64 = cs.iter().map(|&p| lb.weight(LeafId(1), p).unwrap()).sum();
        prop_assert!((total - 4.0).abs() < 1e-6, "total weight {total}");
        for &p in &cs {
            prop_assert!(lb.weight(LeafId(1), p).unwrap() > 0.0);
        }
    }

    /// DRILL and LetFlow (fabric schemes) always pick live candidates.
    #[test]
    fn fabric_schemes_always_pick_live_candidates(
        n_paths in 1u16..9,
        seed in 0u64..100,
        calls in proptest::collection::vec((0u64..10, 0u64..20_000), 1..100),
    ) {
        let cs = cands(n_paths);
        let q: Vec<u64> = (0..n_paths as usize).map(|i| (i * 7919) as u64).collect();
        let mut rng = SimRng::new(seed);
        let mut letflow = LetFlow::new(Time::from_us(150));
        let mut drill = Drill::new(2);
        let topo = Topology::sim_baseline();
        let mut conga = Conga::new(&topo, CongaCfg::default());
        for &(flow, t_us) in &calls {
            let pkt = Packet::data(FlowId(flow), HostId(0), HostId(20), 0, 1460, false);
            let now = Time::from_us(t_us);
            for lb in [&mut letflow as &mut dyn FabricLb, &mut drill, &mut conga] {
                let uplinks = Uplinks {
                    paths: &cs,
                    qbytes: &q,
                };
                let p = lb.ingress_select(LeafId(0), LeafId(1), &pkt, uplinks, now, &mut rng);
                prop_assert!(cs.contains(&p));
            }
        }
    }

    /// DRILL picks a queue no worse than the best of any single random
    /// probe could guarantee: its choice is never the strict maximum
    /// when more than one candidate exists.
    #[test]
    fn drill_avoids_unique_worst_queue(seed in 0u64..500) {
        let cs = cands(4);
        // One clearly-worst queue, rest empty.
        let q = [0u64, 0, 1_000_000, 0];
        let mut rng = SimRng::new(seed);
        let mut drill = Drill::new(2);
        let mut worst_picks = 0;
        for f in 0..50u64 {
            let pkt = Packet::data(FlowId(f), HostId(0), HostId(20), 0, 1460, false);
            let uplinks = Uplinks {
                paths: &cs,
                qbytes: &q,
            };
            let p = drill.ingress_select(LeafId(0), LeafId(1), &pkt, uplinks, Time::ZERO, &mut rng);
            if p == PathId(2) {
                worst_picks += 1;
            }
        }
        // Picking the worst requires both samples AND memory to land on
        // it — memory never stays there, so it is at most a rare blip.
        prop_assert!(worst_picks <= 2, "picked the worst queue {worst_picks}/50 times");
    }
}
