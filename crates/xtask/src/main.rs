//! Workspace tasks. Subcommands:
//!
//! * `cargo run -p xtask -- lint [--self-test]` — the determinism lint
//!   pass described below;
//! * `cargo run -p xtask -- conformance [--self-test]` — run the full
//!   scenario conformance grid (`tests/scenarios/` plus the extended
//!   directory) through `hermes-testkit`, or prove each checker class
//!   fails on its deliberately-broken fixture;
//! * `cargo run -p xtask -- bless` — regenerate the golden event-trace
//!   digest stores after an intended behavior change;
//! * `cargo run -p xtask -- perf [--quick]` — run the named perf points
//!   under both scheduler builds (timing wheel, and the binary heap via
//!   `hermes-sim/heap-queue`), fail on any cross-scheduler digest
//!   mismatch, and write the wall-clock / throughput / peak-RSS
//!   comparison to `BENCH_perf.json` at the workspace root.
//!
//! The simulator's core promise is that a (config, seed) pair fully
//! determines every packet of a run. That promise dies quietly: one
//! `Instant::now()` in a code path, one iteration over a `HashMap`, one
//! stray `thread_rng()`, and runs stop reproducing without any test
//! necessarily failing. This binary scans the workspace sources for
//! exactly those patterns:
//!
//! * **wall-clock** — `std::time` / `Instant::now` / `SystemTime`
//!   anywhere in the simulation crates (`sim`, `net`, `transport`,
//!   `core`, `lb`, `runtime`, `workload`). Only `hermes-bench` may time
//!   real execution; simulated time is `hermes_sim::Time`.
//! * **hash-order** — `HashMap` / `HashSet` in the simulation crates.
//!   Their iteration order is randomized per process, so any map that
//!   feeds the event queue or the RNG must be a `BTreeMap`/`Vec`.
//! * **stray-rng** — `thread_rng`, `rand::random`, `from_entropy`,
//!   `OsRng` anywhere. All randomness must flow from `SimRng` so the
//!   master seed reaches every consumer.
//! * **lib-unwrap** — `.unwrap()` in library code (crate `src/`
//!   excluding `src/bin/` and `#[cfg(test)]` regions). Library code
//!   must use `expect` with an invariant message, or handle the `None`.
//! * **fault-mutation** — direct fabric mutation (`apply_fault`,
//!   `set_spine_failure`, `set_link_down`, …) outside `hermes-net`
//!   (which defines the operations) and `hermes-runtime` (which
//!   dispatches them from scheduled `FaultPlan` events). Anywhere else,
//!   a mid-run mutation would bypass the event queue — undigested by
//!   the trace fingerprint and invisible to the determinism self-check.
//!
//! The scanner masks comments, string literals, and `#[cfg(test)]`
//! blocks before matching, so a rule name in a doc comment or an
//! `.unwrap()` inside a unit test never trips it. Exit status is
//! non-zero iff violations are found; `--self-test` runs the embedded
//! fixtures through the same engine.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose behavior must be a pure function of (config, seed).
const SIM_CRATES: &[&str] = &[
    "sim",
    "net",
    "transport",
    "core",
    "lb",
    "runtime",
    "workload",
    "telemetry",
];

/// Crate directories the scanner skips entirely: vendored stand-ins for
/// third-party crates (not our code) and this tool itself.
const SKIP_CRATES: &[&str] = &["proptest", "criterion", "xtask"];

/// What part of a crate a file belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    /// `src/` excluding `src/bin/` — code other crates can link.
    Lib,
    /// `src/bin/` or `src/main.rs` — executable entry points.
    Bin,
    /// `tests/`, `examples/`, `benches/` — never shipped.
    TestOrExample,
}

/// Where a source file sits in the workspace.
#[derive(Clone, Debug)]
struct FileClass {
    /// Crate directory name (`"sim"`, `"bench"`, …); `"root"` for the
    /// top-level `hermes-repro` package.
    krate: String,
    kind: Kind,
}

#[derive(Clone, Copy, Debug)]
struct Rule {
    name: &'static str,
    tokens: &'static [&'static str],
    why: &'static str,
    applies: fn(&FileClass) -> bool,
}

fn is_sim_crate(c: &FileClass) -> bool {
    SIM_CRATES.contains(&c.krate.as_str())
}

fn everywhere(_: &FileClass) -> bool {
    true
}

fn lib_code(c: &FileClass) -> bool {
    c.kind == Kind::Lib
}

/// Simulation crates other than the two that legitimately own fault
/// application: `net` defines the fabric operations, `runtime` invokes
/// them from `FaultPlan` events popped off the queue.
fn sim_crate_outside_fault_core(c: &FileClass) -> bool {
    is_sim_crate(c) && c.krate != "net" && c.krate != "runtime"
}

const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        tokens: &["std::time", "Instant::now", "SystemTime"],
        why: "simulation crates must use hermes_sim::Time; only hermes-bench times real execution",
        applies: is_sim_crate,
    },
    Rule {
        name: "hash-order",
        tokens: &["HashMap", "HashSet"],
        why: "hash iteration order is per-process random; use BTreeMap/BTreeSet/Vec so event and \
              RNG order is reproducible",
        applies: is_sim_crate,
    },
    Rule {
        name: "stray-rng",
        tokens: &["thread_rng", "rand::random", "from_entropy", "OsRng"],
        why: "all randomness must derive from SimRng so the master seed determines every draw",
        applies: everywhere,
    },
    Rule {
        name: "lib-unwrap",
        tokens: &[".unwrap()"],
        why: "library code must expect() with an invariant message or handle the None/Err",
        applies: lib_code,
    },
    Rule {
        name: "fault-mutation",
        tokens: &[
            "set_spine_failure",
            "set_link_down",
            "set_link_rate",
            "restore_link_rate",
            "set_spine_down",
            "apply_fault",
        ],
        why: "mid-run fabric mutation must be scheduled via a FaultPlan so it flows through the \
              event queue (digested, deterministic); only hermes-net defines these operations \
              and only hermes-runtime dispatches them",
        applies: sim_crate_outside_fault_core,
    },
];

struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--self-test") {
                return self_test();
            }
            let root = workspace_root();
            lint(&root)
        }
        Some("conformance") => {
            if args.iter().any(|a| a == "--self-test") {
                return conformance_self_test();
            }
            conformance()
        }
        Some("bless") => bless_goldens(),
        Some("perf") => perf(
            args.iter().any(|a| a == "--quick"),
            args.iter().any(|a| a == "--gate"),
        ),
        Some("trace") => trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint [--self-test] | conformance [--self-test] | \
                 bless | perf [--quick] [--gate] | trace <point> --out <dir>>"
            );
            ExitCode::FAILURE
        }
    }
}

/// The scenario directories, tier-1 grid first, then the extended grid
/// that only this subcommand (not `tests/conformance.rs`) runs.
fn scenario_dirs() -> Vec<PathBuf> {
    let root = workspace_root();
    vec![
        root.join("tests/scenarios"),
        root.join("tests/scenarios/extended"),
    ]
}

/// Run the full conformance grid (tier-1 scenarios plus the extended
/// directory) and print per-LB FCT summaries for every scenario.
fn conformance() -> ExitCode {
    let mut ok = true;
    for dir in scenario_dirs() {
        println!("== {} ==", dir.display());
        let report = match hermes_testkit::run_conformance(&dir, 0) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask conformance: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Per-(scenario, lb) mean FCTs over seeds — the numbers the
        // envelope tolerances in the specs are calibrated against.
        for (si, spec) in report.scenarios.iter().enumerate() {
            for (li, lb) in spec.lbs.iter().enumerate() {
                let cells: Vec<_> = report
                    .outcomes
                    .iter()
                    .filter(|o| o.scenario == si && o.lb_idx == li)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                let n = cells.len() as f64;
                let avg = cells.iter().map(|o| o.result.fct.avg).sum::<f64>() / n;
                let p99 = cells.iter().map(|o| o.result.fct.p99).sum::<f64>() / n;
                let unfinished: usize = cells.iter().map(|o| o.result.fct.unfinished).sum();
                println!(
                    "  {:<14} {:<10} avg {:>9.3} ms  p99 {:>9.3} ms  unfinished {}",
                    spec.name,
                    lb.name,
                    avg * 1e3,
                    p99 * 1e3,
                    unfinished
                );
            }
        }
        print!("{report}");
        ok &= report.passed();
    }
    if ok {
        println!("xtask conformance: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask conformance: FAIL");
        ExitCode::FAILURE
    }
}

/// Prove each checker class (invariant, digest, envelope) actually
/// fails on its deliberately-broken fixture.
fn conformance_self_test() -> ExitCode {
    let cases = match hermes_testkit::run_self_test() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask conformance --self-test: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for case in &cases {
        let tripped = case.failures.iter().any(|f| f.class == case.expect);
        println!(
            "  [{}] {:<55} {}",
            if tripped { "ok" } else { "MISSED" },
            case.name,
            case.failures
                .first()
                .map_or_else(|| "(no failure reported)".to_string(), ToString::to_string)
        );
        ok &= tripped;
    }
    if ok {
        println!(
            "xtask conformance --self-test: all {} broken fixtures tripped their checker class",
            cases.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask conformance --self-test: a checker class failed to fail");
        ExitCode::FAILURE
    }
}

/// Regenerate the golden digest stores for every scenario directory
/// that pins digests.
fn bless_goldens() -> ExitCode {
    for dir in scenario_dirs() {
        let specs = match hermes_testkit::load_dir(&dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask bless: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !specs.iter().any(|s| s.pin_digests) {
            println!("bless: {} has no pinned scenarios, skipped", dir.display());
            continue;
        }
        match hermes_testkit::bless(&dir, 0) {
            Ok((n, path)) => println!("bless: wrote {n} golden digest(s) to {}", path.display()),
            Err(e) => {
                eprintln!("xtask bless: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One parsed `perf_point` report: the `key=value` lines the binary
/// prints, keyed by field name.
type PerfReport = std::collections::BTreeMap<String, String>;

/// Schedulers the perf harness compares: display name → extra cargo
/// feature flags selecting that scheduler build.
const PERF_SCHEDULERS: &[(&str, &[&str])] = &[
    ("wheel", &[]),
    ("heap", &["--features", "hermes-sim/heap-queue"]),
];

/// The point whose wheel-vs-heap wall-clock delta is the PR-gating
/// perf trajectory headline.
const PERF_HEADLINE_POINT: &str = "fig12_baseline";

/// `trace <point> --out <dir>`: rebuild `hermes-bench` with the
/// `telemetry` feature and run its `trace_point` bin, which writes
/// `<point>.trace.jsonl` (event trace) and `<point>.metrics.csv`
/// (cadence-sampled metrics) into `<dir>`.
fn trace(args: &[String]) -> ExitCode {
    let mut point: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().map(String::as_str),
            p if point.is_none() && !p.starts_with('-') => point = Some(p),
            other => {
                eprintln!("xtask trace: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(point), Some(out)) = (point, out) else {
        eprintln!("usage: cargo run -p xtask -- trace <point> --out <dir>");
        return ExitCode::FAILURE;
    };
    let root = workspace_root();
    let status = std::process::Command::new("cargo")
        .current_dir(&root)
        .args(["run", "--release", "-q", "-p", "hermes-bench"])
        .args(["--features", "hermes-bench/telemetry"])
        .args(["--bin", "trace_point", "--"])
        .args(["--point", point, "--out", out])
        .status();
    match status {
        Ok(st) if st.success() => ExitCode::SUCCESS,
        Ok(st) => {
            eprintln!("xtask trace: trace_point exited with {st}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask trace: spawning cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Wall-clock runs per (point, scheduler); the minimum is reported
/// (standard practice: the min is the least noise-contaminated sample).
const PERF_RUNS_FULL: usize = 3;

/// CI regression tolerance on the headline improvement, in percentage
/// points. The improvement is a *relative* metric (heap vs wheel on the
/// same machine, same mode), so it is comparable across machines and
/// between `--quick` and full runs in a way raw wall-clock is not.
const PERF_GATE_TOLERANCE_PCT: f64 = 5.0;

/// Extract `"wall_improvement_pct"` from the `"headline"` object of a
/// `BENCH_perf.json` document (hand-rolled: the workspace vendors no
/// serde, and the file is our own fixed-shape output).
fn parse_headline_improvement(json: &str) -> Option<f64> {
    let h = json.split("\"headline\"").nth(1)?;
    let v = h.split("\"wall_improvement_pct\":").nth(1)?;
    let v = v.trim_start();
    let end = v
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

/// Build and run the `perf_point` binary once per scheduler per named
/// point, check the event-trace digests agree across schedulers, and
/// write the comparison to `BENCH_perf.json` at the workspace root.
///
/// With `gate`, the committed `BENCH_perf.json` is read *first* and the
/// run fails if the fresh headline improvement falls more than
/// [`PERF_GATE_TOLERANCE_PCT`] points below it.
fn perf(quick: bool, gate: bool) -> ExitCode {
    let root = workspace_root();
    let baseline = if gate {
        let committed = fs::read_to_string(root.join("BENCH_perf.json"))
            .ok()
            .as_deref()
            .and_then(parse_headline_improvement);
        match committed {
            Some(v) => Some(v),
            None => {
                eprintln!(
                    "xtask perf: --gate needs a committed BENCH_perf.json with a headline \
                     improvement"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let runs = if quick { 1 } else { PERF_RUNS_FULL };
    let points = match perf_point_names(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xtask perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (point, scheduler) → best-of-N report.
    let mut results: Vec<(String, Vec<PerfReport>)> = Vec::new();
    for point in &points {
        let mut per_scheduler = Vec::new();
        for (name, features) in PERF_SCHEDULERS {
            let mut best: Option<PerfReport> = None;
            for _ in 0..runs {
                let rep = match run_perf_point(&root, point, features, quick) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("xtask perf: {point}/{name}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let faster = |r: &PerfReport, b: &PerfReport| {
                    perf_f64(r, "wall_ms") < perf_f64(b, "wall_ms")
                };
                if best.as_ref().is_none_or(|b| faster(&rep, b)) {
                    best = Some(rep);
                }
            }
            let best = best.expect("runs >= 1 always yields a report");
            println!(
                "  {point:<16} {name:<6} wall {:>9.1} ms  {:>12} events  {:>10.0} ev/s  rss {:>7} KiB",
                perf_f64(&best, "wall_ms"),
                best.get("events").map_or("?", String::as_str),
                perf_f64(&best, "events_per_sec"),
                best.get("peak_rss_kb").map_or("?", String::as_str),
            );
            per_scheduler.push(best);
        }
        results.push((point.clone(), per_scheduler));
    }
    // Cross-scheduler digest agreement is the harness's correctness
    // gate: an optimization that changes event order is a wrong answer
    // computed quickly.
    let mut digests_ok = true;
    for (point, reps) in &results {
        let digests: Vec<&str> = reps
            .iter()
            .map(|r| r.get("digest").map_or("?", String::as_str))
            .collect();
        if digests.windows(2).any(|w| w[0] != w[1]) {
            eprintln!("xtask perf: DIGEST MISMATCH on {point}: {digests:?}");
            digests_ok = false;
        }
    }
    let json = perf_json(quick, &results, digests_ok);
    let out = root.join("BENCH_perf.json");
    if let Err(e) = fs::write(&out, json) {
        eprintln!("xtask perf: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("xtask perf: wrote {}", out.display());
    let mut headline_now = None;
    if let Some((_, reps)) = results.iter().find(|(p, _)| p == PERF_HEADLINE_POINT) {
        let (wheel, heap) = (&reps[0], &reps[1]);
        let improvement =
            perf_improvement_pct(perf_f64(heap, "wall_ms"), perf_f64(wheel, "wall_ms"));
        headline_now = Some(improvement);
        println!(
            "xtask perf: {PERF_HEADLINE_POINT}: wheel {:.1} ms vs heap {:.1} ms — {improvement:.1}% \
             wall-clock improvement",
            perf_f64(wheel, "wall_ms"),
            perf_f64(heap, "wall_ms"),
        );
    }
    if let Some(committed) = baseline {
        match headline_now {
            Some(now) if now + PERF_GATE_TOLERANCE_PCT >= committed => {
                println!(
                    "xtask perf: gate OK — headline improvement {now:.1}% vs committed \
                     {committed:.1}% (tolerance {PERF_GATE_TOLERANCE_PCT:.0} pts)"
                );
            }
            Some(now) => {
                eprintln!(
                    "xtask perf: GATE FAILED — headline improvement {now:.1}% fell more than \
                     {PERF_GATE_TOLERANCE_PCT:.0} pts below committed {committed:.1}%"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("xtask perf: GATE FAILED — headline point missing from this run");
                return ExitCode::FAILURE;
            }
        }
    }
    if digests_ok {
        println!("xtask perf: same-seed digests identical across schedulers");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask perf: FAIL (cross-scheduler digest mismatch)");
        ExitCode::FAILURE
    }
}

/// Wall-clock reduction of `new` relative to `old`, in percent.
fn perf_improvement_pct(old_ms: f64, new_ms: f64) -> f64 {
    if old_ms <= 0.0 {
        return 0.0;
    }
    (old_ms - new_ms) / old_ms * 100.0
}

/// Numeric field of a report, NaN when absent/unparseable (NaN keeps
/// comparisons false, so a malformed report never wins best-of-N).
fn perf_f64(rep: &PerfReport, key: &str) -> f64 {
    rep.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

/// Ask the (wheel-build) binary for its point list — single source of
/// truth in `hermes-bench::PERF_POINTS`.
fn perf_point_names(root: &Path) -> Result<Vec<String>, String> {
    let out = cargo_run_perf_point(root, &[], &["--list"])?;
    let points: Vec<String> = out
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect();
    if points.is_empty() {
        return Err("perf_point --list printed no points".into());
    }
    Ok(points)
}

/// One timed child run; returns the parsed `key=value` report.
fn run_perf_point(
    root: &Path,
    point: &str,
    features: &[&str],
    quick: bool,
) -> Result<PerfReport, String> {
    let mut args = vec!["--point", point];
    if quick {
        args.push("--quick");
    }
    let out = cargo_run_perf_point(root, features, &args)?;
    let rep: PerfReport = out
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    for required in ["scheduler", "wall_ms", "events", "digest"] {
        if !rep.contains_key(required) {
            return Err(format!("report missing `{required}`:\n{out}"));
        }
    }
    Ok(rep)
}

/// `cargo run --release -p hermes-bench [features…] --bin perf_point -- args…`
/// from the workspace root, returning the child's stdout.
fn cargo_run_perf_point(root: &Path, features: &[&str], args: &[&str]) -> Result<String, String> {
    let mut cmd = std::process::Command::new("cargo");
    cmd.current_dir(root)
        .arg("run")
        .arg("--release")
        .arg("-q")
        .args(["-p", "hermes-bench"])
        .args(features)
        .args(["--bin", "perf_point", "--"])
        .args(args);
    let out = cmd.output().map_err(|e| format!("spawning cargo: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "cargo run failed ({}):\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Hand-rolled JSON for `BENCH_perf.json` (the workspace deliberately
/// vendors no serde). All fields come from already-validated reports.
fn perf_json(quick: bool, results: &[(String, Vec<PerfReport>)], digests_ok: bool) -> String {
    let num = |rep: &PerfReport, key: &str| -> String {
        let v = perf_f64(rep, key);
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    };
    let mut points = Vec::new();
    let mut headline = String::from("null");
    for (point, reps) in results {
        let mut sched_objs = Vec::new();
        for rep in reps {
            sched_objs.push(format!(
                concat!(
                    "{{\"scheduler\": \"{}\", \"wall_ms\": {}, \"events\": {}, ",
                    "\"events_per_sec\": {}, \"packets\": {}, \"packets_per_sec\": {}, ",
                    "\"peak_rss_kb\": {}, \"digest\": \"{}\"}}"
                ),
                rep.get("scheduler").map_or("?", String::as_str),
                num(rep, "wall_ms"),
                num(rep, "events"),
                num(rep, "events_per_sec"),
                num(rep, "packets"),
                num(rep, "packets_per_sec"),
                num(rep, "peak_rss_kb"),
                rep.get("digest").map_or("?", String::as_str),
            ));
        }
        let improvement = if reps.len() == 2 {
            perf_improvement_pct(perf_f64(&reps[1], "wall_ms"), perf_f64(&reps[0], "wall_ms"))
        } else {
            f64::NAN
        };
        let digest_match = reps
            .windows(2)
            .all(|w| w[0].get("digest") == w[1].get("digest"));
        let improvement_json = if improvement.is_finite() {
            format!("{improvement:.2}")
        } else {
            "null".to_string()
        };
        let obj = format!(
            concat!(
                "    {{\"point\": \"{}\", \"digest_match\": {}, ",
                "\"wall_improvement_pct\": {}, \"schedulers\": [{}]}}"
            ),
            point,
            digest_match,
            improvement_json,
            sched_objs.join(", "),
        );
        if point == PERF_HEADLINE_POINT {
            headline =
                format!("{{\"point\": \"{point}\", \"wall_improvement_pct\": {improvement_json}}}");
        }
        points.push(obj);
    }
    format!(
        concat!(
            "{{\n",
            "  \"generated_by\": \"cargo run -p xtask -- perf{}\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"digests_identical_across_schedulers\": {},\n",
            "  \"headline\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if quick { " --quick" } else { "" },
        if quick { "quick" } else { "full" },
        digests_ok,
        headline,
        points.join(",\n"),
    )
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn lint(root: &Path) -> ExitCode {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let Some(class) = classify(rel) else { continue };
        if SKIP_CRATES.contains(&class.krate.as_str()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("xtask: unreadable file {}", path.display());
            continue;
        };
        scanned += 1;
        scan_source(&source, &class, rel, &mut violations);
    }
    if violations.is_empty() {
        println!("xtask lint: {scanned} files clean");
        return ExitCode::SUCCESS;
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path.display(), v.line, v.rule, v.text);
    }
    println!(
        "\nxtask lint: {} violation(s) in {scanned} files",
        violations.len()
    );
    let mut named: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    named.sort_unstable();
    named.dedup();
    for rule in RULES.iter().filter(|r| named.contains(&r.name)) {
        println!("  [{}] {}", rule.name, rule.why);
    }
    ExitCode::FAILURE
}

/// Recursively gather `.rs` files, in sorted order for stable output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Map a workspace-relative path to its crate and kind. Returns `None`
/// for files outside any crate layout we recognize.
fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (krate, rest) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        rest => ("root".to_string(), rest),
    };
    let kind = match rest {
        ["src", "bin", ..] | ["src", "main.rs"] => Kind::Bin,
        ["src", ..] => Kind::Lib,
        ["tests", ..] | ["examples", ..] | ["benches", ..] => Kind::TestOrExample,
        _ => return None,
    };
    Some(FileClass { krate, kind })
}

/// Run every applicable rule over one masked source file.
fn scan_source(source: &str, class: &FileClass, rel: &Path, out: &mut Vec<Violation>) {
    let active: Vec<&Rule> = RULES.iter().filter(|r| (r.applies)(class)).collect();
    if active.is_empty() {
        return;
    }
    let masked = mask_cfg_test(&mask_comments_and_strings(source));
    let originals: Vec<&str> = source.lines().collect();
    for (i, line) in masked.lines().enumerate() {
        for rule in &active {
            if rule.tokens.iter().any(|t| line.contains(t)) {
                out.push(Violation {
                    path: rel.to_path_buf(),
                    line: i + 1,
                    rule: rule.name,
                    text: originals.get(i).map_or("", |l| l.trim()).to_string(),
                });
            }
        }
    }
}

/// Replace comments and string/char literal contents with spaces,
/// preserving newlines so line numbers survive. Handles nested block
/// comments, escapes, raw strings (`r"…"`, `r#"…"#`, byte variants),
/// and distinguishes char literals from lifetimes.
fn mask_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br"…", …
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let quote_search = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = quote_search;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let hashes = j - quote_search;
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' {
                        let mut h = 0;
                        while h < hashes && b.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string literal (covers b"…" via the 'b' falling
        // through to here on the next iteration's '"').
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                // Escaped char literal: blank through the closing quote.
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != '\'' {
                    out.push_str("  ");
                    i += 2;
                }
                if i < b.len() {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') && b.get(i + 1).is_some_and(|&ch| ch != '\'') {
                out.push_str("   ");
                i += 3;
                continue;
            }
            // A lifetime: keep the tick, it can't contain rule tokens.
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blank out `#[cfg(test)] … { … }` regions (attribute through the
/// matching close brace). Must run on already comment/string-masked
/// text so braces inside literals don't confuse the depth count.
fn mask_cfg_test(masked: &str) -> String {
    let b: Vec<char> = masked.chars().collect();
    let mut out = b.clone();
    let pat: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + pat.len() <= b.len() {
        if b[i..i + pat.len()] != pat[..] {
            i += 1;
            continue;
        }
        // Find the gated item's opening brace (skipping further
        // attributes and the item header); a `;` first means a
        // braceless item — nothing more to mask.
        let mut j = i + pat.len();
        while j < b.len() && b[j] != '{' && b[j] != ';' {
            j += 1;
        }
        if j >= b.len() || b[j] == ';' {
            i = j;
            continue;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < b.len() {
            match b[k] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end = k.min(b.len().saturating_sub(1));
        for cell in out.iter_mut().take(end + 1).skip(i) {
            if *cell != '\n' {
                *cell = ' ';
            }
        }
        i = end + 1;
    }
    out.into_iter().collect()
}

// ---- self-test fixtures -------------------------------------------

/// (rule expected to fire, fixture source). Each fixture is scanned as
/// library code of a simulation crate, where every rule applies.
const BAD_FIXTURES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "fn f() { let _t = std::time::Instant::now(); }\n",
    ),
    ("wall-clock", "fn f() { let _t = SystemTime::now(); }\n"),
    (
        "hash-order",
        "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 { m.len() as u32 }\n",
    ),
    ("stray-rng", "fn f() -> u64 { rand::random() }\n"),
    ("stray-rng", "fn f() { let mut _r = thread_rng(); }\n"),
    ("lib-unwrap", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
    (
        "fault-mutation",
        "fn f(fab: &mut Fabric) { fab.set_spine_down(SpineId(0), true); }\n",
    ),
    (
        "fault-mutation",
        "fn f(fab: &mut Fabric, a: &FaultAction) { fab.apply_fault(a); }\n",
    ),
];

/// Sources that must NOT fire: the forbidden tokens appear only in
/// comments, strings, or `#[cfg(test)]` regions.
const CLEAN_FIXTURES: &[&str] = &[
    "// std::time::Instant::now() is banned here\nfn f() {}\n",
    "fn f() -> &'static str { \"HashMap iteration order\" }\n",
    "/* thread_rng() would break determinism */\nfn f() {}\n",
    "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    "fn lifetime<'a>(x: &'a u64) -> &'a u64 { x }\n",
    "// never call apply_fault directly; schedule it via a FaultPlan\nfn f() {}\n",
];

fn self_test() -> ExitCode {
    let class = FileClass {
        krate: "sim".to_string(),
        kind: Kind::Lib,
    };
    let mut failures = 0;
    for (rule, src) in BAD_FIXTURES {
        let mut v = Vec::new();
        scan_source(src, &class, Path::new("fixture.rs"), &mut v);
        if !v.iter().any(|x| x.rule == *rule) {
            eprintln!("self-test FAILED: [{rule}] not detected in fixture:\n{src}");
            failures += 1;
        }
    }
    for src in CLEAN_FIXTURES {
        let mut v = Vec::new();
        scan_source(src, &class, Path::new("fixture.rs"), &mut v);
        if let Some(x) = v.first() {
            eprintln!(
                "self-test FAILED: false positive [{}] in clean fixture:\n{src}",
                x.rule
            );
            failures += 1;
        }
    }
    // The telemetry crate records *sim* time: wall-clock use inside it
    // would silently wreck trace determinism, so the rule must cover
    // its files like any other simulation crate.
    let telem = FileClass {
        krate: "telemetry".to_string(),
        kind: Kind::Lib,
    };
    let src = "fn stamp() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n";
    let mut v = Vec::new();
    scan_source(src, &telem, Path::new("fixture.rs"), &mut v);
    if !v.iter().any(|x| x.rule == "wall-clock") {
        eprintln!("self-test FAILED: [wall-clock] not detected in crates/telemetry fixture");
        failures += 1;
    }
    if failures == 0 {
        println!(
            "xtask self-test: {} bad + {} clean fixtures OK",
            BAD_FIXTURES.len(),
            CLEAN_FIXTURES.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_as(krate: &str, kind: Kind, src: &str) -> Vec<&'static str> {
        let class = FileClass {
            krate: krate.to_string(),
            kind,
        };
        let mut v = Vec::new();
        scan_source(src, &class, Path::new("t.rs"), &mut v);
        v.into_iter().map(|x| x.rule).collect()
    }

    #[test]
    fn bad_fixtures_all_fire() {
        for (rule, src) in BAD_FIXTURES {
            assert!(
                scan_as("sim", Kind::Lib, src).contains(rule),
                "fixture for [{rule}] not flagged"
            );
        }
    }

    #[test]
    fn clean_fixtures_stay_clean() {
        for src in CLEAN_FIXTURES {
            assert!(
                scan_as("sim", Kind::Lib, src).is_empty(),
                "false positive on:\n{src}"
            );
        }
    }

    #[test]
    fn bench_may_use_wall_clock() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert!(scan_as("bench", Kind::Lib, src).is_empty());
        assert!(scan_as("runtime", Kind::Lib, src).contains(&"wall-clock"));
    }

    #[test]
    fn unwrap_allowed_in_bins_and_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(scan_as("sim", Kind::Bin, src).is_empty());
        assert!(scan_as("sim", Kind::TestOrExample, src).is_empty());
        assert!(scan_as("sim", Kind::Lib, src).contains(&"lib-unwrap"));
    }

    #[test]
    fn fault_mutation_exempts_the_fault_core() {
        let src = "fn f(fab: &mut Fabric, a: &FaultAction) { fab.apply_fault(a); }\n";
        // net defines the operations, runtime dispatches FaultPlan
        // events, bench isn't a simulation crate: all exempt.
        assert!(scan_as("net", Kind::Lib, src).is_empty());
        assert!(scan_as("runtime", Kind::Lib, src).is_empty());
        assert!(scan_as("runtime", Kind::TestOrExample, src).is_empty());
        assert!(scan_as("bench", Kind::Lib, src).is_empty());
        // Everywhere else in the simulation stack the rule fires.
        assert!(scan_as("lb", Kind::Lib, src).contains(&"fault-mutation"));
        assert!(scan_as("core", Kind::TestOrExample, src).contains(&"fault-mutation"));
    }

    #[test]
    fn stray_rng_applies_everywhere() {
        let src = "fn f() { let _ = thread_rng(); }\n";
        assert!(scan_as("bench", Kind::TestOrExample, src).contains(&"stray-rng"));
    }

    #[test]
    fn masking_keeps_line_numbers() {
        let src = "fn a() {}\n/* multi\nline */ let x = std::time::Instant::now();\n";
        let class = FileClass {
            krate: "sim".to_string(),
            kind: Kind::Lib,
        };
        let mut v = Vec::new();
        scan_source(src, &class, Path::new("t.rs"), &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() -> &'static str { r#\"HashMap \"quoted\" inside\"# }\n";
        assert!(scan_as("sim", Kind::Lib, src).is_empty());
    }

    #[test]
    fn cfg_test_masking_is_brace_matched() {
        let src = "fn live() { let _m: HashMap<u8, u8> = HashMap::new(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn inner() { Some(1).unwrap(); }\n}\n\
                   fn also_live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let rules = scan_as("sim", Kind::Lib, src);
        assert!(
            rules.contains(&"hash-order"),
            "code before the test mod must scan"
        );
        assert!(
            rules.contains(&"lib-unwrap"),
            "code after the test mod must scan"
        );
        assert_eq!(
            rules.iter().filter(|r| **r == "lib-unwrap").count(),
            1,
            "the unwrap inside #[cfg(test)] must not count"
        );
    }

    #[test]
    fn classify_maps_workspace_layout() {
        let c = classify(Path::new("crates/net/src/fabric.rs")).expect("classifies");
        assert_eq!(c.krate, "net");
        assert_eq!(c.kind, Kind::Lib);
        let c = classify(Path::new("crates/bench/src/bin/fig9.rs")).expect("classifies");
        assert_eq!(c.kind, Kind::Bin);
        let c = classify(Path::new("src/bin/hermes-cli.rs")).expect("classifies");
        assert_eq!(c.krate, "root");
        assert_eq!(c.kind, Kind::Bin);
        let c = classify(Path::new("tests/scenarios.rs")).expect("classifies");
        assert_eq!(c.kind, Kind::TestOrExample);
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn telemetry_crate_is_lint_covered() {
        // The tracing layer stamps sim time into every record: a
        // wall-clock read anywhere inside it must trip the lint, and
        // the real sources must currently be clean.
        assert!(scan_as(
            "telemetry",
            Kind::Lib,
            "fn f() { let _t = std::time::Instant::now(); }\n"
        )
        .contains(&"wall-clock"));
        let dir = workspace_root().join("crates/telemetry/src");
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files);
        assert!(!files.is_empty(), "telemetry sources exist");
        for path in files {
            let rel = path
                .strip_prefix(workspace_root())
                .expect("under the workspace root")
                .to_path_buf();
            let class = classify(&rel).expect("recognized layout");
            assert!(
                is_sim_crate(&class),
                "{} must be lint-covered",
                rel.display()
            );
            let src = fs::read_to_string(&path).expect("readable source");
            let mut v = Vec::new();
            scan_source(&src, &class, &rel, &mut v);
            let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
            assert!(v.is_empty(), "{} violates {rules:?}", rel.display());
        }
    }

    #[test]
    fn headline_improvement_parses_from_committed_json() {
        let doc = r#"{
  "mode": "full",
  "headline": {"point": "fig12_baseline", "wall_improvement_pct": 50.90},
  "points": []
}"#;
        assert_eq!(parse_headline_improvement(doc), Some(50.90));
        assert_eq!(parse_headline_improvement("{}"), None);
        assert_eq!(
            parse_headline_improvement("{\"headline\": null}"),
            None,
            "a null headline must not gate"
        );
        // The real committed file parses too.
        let committed = fs::read_to_string(workspace_root().join("BENCH_perf.json"))
            .expect("committed BENCH_perf.json");
        assert!(parse_headline_improvement(&committed).is_some());
    }

    #[test]
    fn wheel_and_pool_modules_are_lint_covered() {
        // The timing wheel and packet arena are hot-path simulation
        // code added for the perf work: the determinism rules (no
        // wall-clock, no hash-order iteration, …) must apply to their
        // files, and the real files must currently be clean.
        for rel in ["crates/sim/src/wheel.rs", "crates/net/src/pool.rs"] {
            let class = classify(Path::new(rel)).expect("recognized layout");
            assert!(
                is_sim_crate(&class),
                "{rel} must be in a lint-covered crate"
            );
            assert_eq!(class.kind, Kind::Lib, "{rel} is library code");
            let src = fs::read_to_string(workspace_root().join(rel)).expect("module exists");
            let mut v = Vec::new();
            scan_source(&src, &class, Path::new(rel), &mut v);
            let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
            assert!(v.is_empty(), "{rel} violates {rules:?}");
        }
    }

    #[test]
    fn perf_improvement_is_relative_to_the_baseline() {
        assert!((perf_improvement_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((perf_improvement_pct(100.0, 125.0) + 25.0).abs() < 1e-12);
        assert_eq!(perf_improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn perf_json_shape_is_stable() {
        let mk = |sched: &str, wall: &str, digest: &str| -> PerfReport {
            [
                ("scheduler", sched),
                ("wall_ms", wall),
                ("events", "10"),
                ("events_per_sec", "100"),
                ("packets", "5"),
                ("packets_per_sec", "50"),
                ("peak_rss_kb", "1024"),
                ("digest", digest),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
        };
        let results = vec![(
            PERF_HEADLINE_POINT.to_string(),
            vec![mk("wheel", "80", "0xabc"), mk("heap", "100", "0xabc")],
        )];
        let json = perf_json(false, &results, true);
        assert!(json.contains("\"wall_improvement_pct\": 20.00"), "{json}");
        assert!(json.contains("\"digest_match\": true"), "{json}");
        assert!(
            json.contains("\"headline\": {\"point\": \"fig12_baseline\""),
            "{json}"
        );
        assert!(json.contains("\"mode\": \"full\""), "{json}");
        // A digest split must surface in both the per-point and the
        // top-level flags.
        let split = vec![(
            PERF_HEADLINE_POINT.to_string(),
            vec![mk("wheel", "80", "0xabc"), mk("heap", "100", "0xdef")],
        )];
        let json = perf_json(true, &split, false);
        assert!(json.contains("\"digest_match\": false"), "{json}");
        assert!(
            json.contains("\"digests_identical_across_schedulers\": false"),
            "{json}"
        );
        assert!(json.contains("\"mode\": \"quick\""), "{json}");
    }

    #[test]
    fn whole_workspace_is_clean() {
        // The real tree must pass its own lint: run the full scan
        // in-process and demand zero violations.
        let root = workspace_root();
        let mut files = Vec::new();
        collect_rs_files(&root, &mut files);
        assert!(!files.is_empty(), "workspace sources not found");
        let mut violations = Vec::new();
        for path in &files {
            let rel = path.strip_prefix(&root).unwrap_or(path);
            let Some(class) = classify(rel) else { continue };
            if SKIP_CRATES.contains(&class.krate.as_str()) {
                continue;
            }
            let source = fs::read_to_string(path).expect("readable source");
            scan_source(&source, &class, rel, &mut violations);
        }
        let report: Vec<String> = violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path.display(), v.line, v.rule, v.text))
            .collect();
        assert!(
            violations.is_empty(),
            "lint violations:\n{}",
            report.join("\n")
        );
    }
}
