//! Workspace tasks. Subcommands:
//!
//! * `cargo run -p xtask -- analyze [--self-test] [--json <out>]
//!   [--update-baseline]` — the token-level determinism &
//!   concurrency-readiness analyzer (`hermes-analyzer`, DESIGN.md §13):
//!   the five original lint rules (wall-clock, hash-order, stray-rng,
//!   lib-unwrap, fault-mutation) plus float-determinism, panic-surface,
//!   unsafe-inventory, concurrency-readiness and telemetry-hygiene,
//!   all scoped per (crate, kind, file) over a real token stream.
//!   `--self-test` proves every rule class trips on its bad fixtures
//!   and stays quiet on the clean ones; `--json` writes the machine
//!   report CI uploads; `--update-baseline` rewrites the reviewed
//!   `analyzer_baseline.json` unsafe inventory.
//! * `cargo run -p xtask -- lint [--self-test]` — deprecated alias for
//!   `analyze`, kept one release so downstream scripts don't break;
//! * `cargo run -p xtask -- conformance [--self-test]` — run the full
//!   scenario conformance grid (`tests/scenarios/` plus the extended
//!   directory) through `hermes-testkit`, or prove each checker class
//!   fails on its deliberately-broken fixture;
//! * `cargo run -p xtask -- bless` — regenerate the golden event-trace
//!   digest stores after an intended behavior change;
//! * `cargo run -p xtask -- perf [--quick] [--threads N]` — run the
//!   named perf points under both scheduler builds (timing wheel, and
//!   the binary heap via `hermes-sim/heap-queue`), fail on any
//!   cross-scheduler digest mismatch, then run the parallel section:
//!   the `fig12_shard_drain` point serially and with N workers
//!   (default 4), demanding byte-identical digests, plus a threaded
//!   re-run of the headline full-sim point against its serial digest.
//!   Writes the wall-clock / throughput / peak-RSS / speedup comparison
//!   to `BENCH_perf.json` at the workspace root. With `--gate`, also
//!   enforces the wheel-vs-heap floor, the RSS ceiling, and a ≥2×
//!   drain-point speedup at N threads (skipped with a notice when the
//!   host has fewer than N cores — speedup needs real parallelism).
//! * `cargo run -p xtask -- parallel [--quick]` — thread-count
//!   invariance over the tier-1 conformance grid: every scenario cell
//!   driven through the sharded engine at 1, 2 and 4 workers
//!   (`--quick`: 4 only), each pass checked against the committed
//!   single-queue goldens. Nothing is re-blessed: a digest mismatch at
//!   any thread count is a merge-order bug, full stop.
//! * `cargo run -p xtask -- chaos [--seeds N] [--quick] [--shrink]
//!   [--self-test]` — the chaos campaign engine (DESIGN.md §14):
//!   replay the committed counterexample corpus
//!   (`tests/chaos/corpus/`), then sample N seeded fault plans from
//!   the full fault grammar and judge hermes/conga/ecmp against the
//!   graceful-degradation SLOs; `--shrink` delta-debugs failing plans
//!   to minimal counterexamples (`--emit-shrunk <dir>` writes them in
//!   corpus format), `--recovery-frac` tightens the recovery SLO for
//!   corpus mining, and `--self-test` proves each SLO checker and the
//!   shrinker trip on planted fixtures.
//!
//! The simulator's core promise is that a (config, seed) pair fully
//! determines every packet of a run. That promise dies quietly: one
//! `Instant::now()` in a code path, one iteration over a `HashMap`, one
//! stray `thread_rng()`, and runs stop reproducing without any test
//! necessarily failing. The analyzer scans the workspace sources for
//! exactly those patterns — see `crates/analyzer` for the lexer, the
//! rule scopes, the `// ANALYZER: allow(rule, reason)` suppression
//! grammar and the committed unsafe baseline. Exit status is non-zero
//! iff findings remain.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("lint") => {
            eprintln!(
                "xtask: `lint` is a deprecated alias for `analyze` and will be removed next \
                 release"
            );
            analyze(&args[1..])
        }
        Some("conformance") => {
            if args.iter().any(|a| a == "--self-test") {
                return conformance_self_test();
            }
            conformance()
        }
        Some("bless") => bless_goldens(),
        Some("perf") => {
            let threads = args
                .iter()
                .position(|a| a == "--threads")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(PERF_PARALLEL_THREADS);
            perf(
                args.iter().any(|a| a == "--quick"),
                args.iter().any(|a| a == "--gate"),
                threads,
            )
        }
        Some("parallel") => parallel(args.iter().any(|a| a == "--quick")),
        Some("trace") => trace(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <analyze [--self-test] [--json <out>] \
                 [--update-baseline] | conformance [--self-test] | bless | perf [--quick] \
                 [--gate] [--threads N] | parallel [--quick] | trace <point> --out <dir> | \
                 chaos [--seeds N] [--seed-base N] [--quick] [--shrink] [--self-test] \
                 [--no-corpus] [--recovery-frac F] [--out <json>] [--emit-shrunk <dir>]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// `analyze`: run `hermes-analyzer` over the tree (or its fixture
/// corpus with `--self-test`), optionally writing the JSON report.
fn analyze(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--self-test") {
        return analyze_self_test();
    }
    let mut json_out: Option<&str> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = it.next().map(String::as_str),
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("xtask analyze: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let analysis = match hermes_analyzer::analyze_workspace(&root, update_baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = json_out {
        if let Err(e) = fs::write(out, hermes_analyzer::report_json(&analysis)) {
            eprintln!("xtask analyze: writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: wrote {out}");
    }
    if analysis.baseline_written {
        println!(
            "xtask analyze: rewrote analyzer_baseline.json with {} unsafe site(s)",
            analysis.inventory.len()
        );
    }
    if analysis.clean() {
        println!("xtask analyze: {} files clean", analysis.scanned);
        return ExitCode::SUCCESS;
    }
    for f in &analysis.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.text);
    }
    println!(
        "\nxtask analyze: {} finding(s) in {} files",
        analysis.findings.len(),
        analysis.scanned
    );
    let mut named: Vec<&str> = analysis.findings.iter().map(|f| f.rule).collect();
    named.sort_unstable();
    named.dedup();
    for rule in named {
        println!("  [{rule}] {}", hermes_analyzer::rule_why(rule));
    }
    ExitCode::FAILURE
}

/// `analyze --self-test`: every rule class must trip on its bad
/// fixtures and stay quiet on the clean ones.
fn analyze_self_test() -> ExitCode {
    let outcomes = hermes_analyzer::self_test();
    let mut ok = true;
    for o in &outcomes {
        println!(
            "  [{}] {:<60} {}",
            if o.ok { "ok" } else { "FAILED" },
            o.label,
            o.detail
        );
        ok &= o.ok;
    }
    if ok {
        println!("xtask analyze --self-test: {} fixtures OK", outcomes.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze --self-test: fixture failures (see above)");
        ExitCode::FAILURE
    }
}

/// The scenario directories, tier-1 grid first, then the extended grid
/// that only this subcommand (not `tests/conformance.rs`) runs.
fn scenario_dirs() -> Vec<PathBuf> {
    let root = workspace_root();
    vec![
        root.join("tests/scenarios"),
        root.join("tests/scenarios/extended"),
    ]
}

/// Run the full conformance grid (tier-1 scenarios plus the extended
/// directory) and print per-LB FCT summaries for every scenario.
fn conformance() -> ExitCode {
    let mut ok = true;
    for dir in scenario_dirs() {
        println!("== {} ==", dir.display());
        let report = match hermes_testkit::run_conformance(&dir, 0) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask conformance: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Per-(scenario, lb) mean FCTs over seeds — the numbers the
        // envelope tolerances in the specs are calibrated against.
        for (si, spec) in report.scenarios.iter().enumerate() {
            for (li, lb) in spec.lbs.iter().enumerate() {
                let cells: Vec<_> = report
                    .outcomes
                    .iter()
                    .filter(|o| o.scenario == si && o.lb_idx == li)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                let n = cells.len() as f64;
                let avg = cells.iter().map(|o| o.result.fct.avg).sum::<f64>() / n;
                let p99 = cells.iter().map(|o| o.result.fct.p99).sum::<f64>() / n;
                let unfinished: usize = cells.iter().map(|o| o.result.fct.unfinished).sum();
                println!(
                    "  {:<14} {:<10} avg {:>9.3} ms  p99 {:>9.3} ms  unfinished {}",
                    spec.name,
                    lb.name,
                    avg * 1e3,
                    p99 * 1e3,
                    unfinished
                );
            }
        }
        print!("{report}");
        ok &= report.passed();
    }
    if ok {
        println!("xtask conformance: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask conformance: FAIL");
        ExitCode::FAILURE
    }
}

/// Prove each checker class (invariant, digest, envelope) actually
/// fails on its deliberately-broken fixture.
fn conformance_self_test() -> ExitCode {
    let cases = match hermes_testkit::run_self_test() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask conformance --self-test: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for case in &cases {
        let tripped = case.failures.iter().any(|f| f.class == case.expect);
        println!(
            "  [{}] {:<55} {}",
            if tripped { "ok" } else { "MISSED" },
            case.name,
            case.failures
                .first()
                .map_or_else(|| "(no failure reported)".to_string(), ToString::to_string)
        );
        ok &= tripped;
    }
    if ok {
        println!(
            "xtask conformance --self-test: all {} broken fixtures tripped their checker class",
            cases.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask conformance --self-test: a checker class failed to fail");
        ExitCode::FAILURE
    }
}

/// Regenerate the golden digest stores for every scenario directory
/// that pins digests.
fn bless_goldens() -> ExitCode {
    for dir in scenario_dirs() {
        let specs = match hermes_testkit::load_dir(&dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask bless: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !specs.iter().any(|s| s.pin_digests) {
            println!("bless: {} has no pinned scenarios, skipped", dir.display());
            continue;
        }
        match hermes_testkit::bless(&dir, 0) {
            Ok((n, path)) => println!("bless: wrote {n} golden digest(s) to {}", path.display()),
            Err(e) => {
                eprintln!("xtask bless: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One parsed `perf_point` report: the `key=value` lines the binary
/// prints, keyed by field name.
type PerfReport = std::collections::BTreeMap<String, String>;

/// Schedulers the perf harness compares: display name → extra cargo
/// feature flags selecting that scheduler build.
const PERF_SCHEDULERS: &[(&str, &[&str])] = &[
    ("wheel", &[]),
    ("heap", &["--features", "hermes-sim/heap-queue"]),
];

/// The point whose wheel-vs-heap wall-clock delta is the PR-gating
/// perf trajectory headline.
const PERF_HEADLINE_POINT: &str = "fig12_baseline";

/// The fabric-only drain point the parallel section times (matches
/// `hermes_bench::PERF_DRAIN_POINT`); worker threads dominate its
/// profile, so it is where the speedup floor is measurable at all.
const PERF_PARALLEL_POINT: &str = "fig12_shard_drain";

/// Default worker count for the parallel perf section and its gate.
const PERF_PARALLEL_THREADS: usize = 4;

/// Gate floor on the drain-point speedup at [`PERF_PARALLEL_THREADS`]
/// workers: wall(1 thread) / wall(N threads) must reach this multiple
/// in the same run. Like the wheel-vs-heap floor, it is a same-run
/// ratio, immune to absolute machine speed — but unlike it, the ratio
/// is meaningless without real cores, so the gate skips (with a
/// notice) when the host exposes fewer than N.
const PERF_GATE_MIN_PARALLEL_SPEEDUP: f64 = 2.0;

/// `trace <point> --out <dir>`: rebuild `hermes-bench` with the
/// `telemetry` feature and run its `trace_point` bin, which writes
/// `<point>.trace.jsonl` (event trace) and `<point>.metrics.csv`
/// (cadence-sampled metrics) into `<dir>`.
fn trace(args: &[String]) -> ExitCode {
    let mut point: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().map(String::as_str),
            p if point.is_none() && !p.starts_with('-') => point = Some(p),
            other => {
                eprintln!("xtask trace: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(point), Some(out)) = (point, out) else {
        eprintln!("usage: cargo run -p xtask -- trace <point> --out <dir>");
        return ExitCode::FAILURE;
    };
    let root = workspace_root();
    let status = std::process::Command::new("cargo")
        .current_dir(&root)
        .args(["run", "--release", "-q", "-p", "hermes-bench"])
        .args(["--features", "hermes-bench/telemetry"])
        .args(["--bin", "trace_point", "--"])
        .args(["--point", point, "--out", out])
        .status();
    match status {
        Ok(st) if st.success() => ExitCode::SUCCESS,
        Ok(st) => {
            eprintln!("xtask trace: trace_point exited with {st}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask trace: spawning cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Wall-clock runs per (point, scheduler); the minimum is reported
/// (standard practice: the min is the least noise-contaminated sample).
const PERF_RUNS_FULL: usize = 3;

/// Gate floor on the headline improvement, in percentage points: the
/// wheel scheduler must beat the heap by at least this much *in the
/// same run*. Both sides share the machine, load, and mode, so the
/// ratio is immune to the absolute wall-clock noise that made gating
/// against a committed number from some other machine flaky — the gate
/// only trips when the wheel's advantage itself erodes.
const PERF_GATE_MIN_IMPROVEMENT_PCT: f64 = 10.0;

/// Gate ceiling on the headline point's peak-RSS ratio: the wheel
/// scheduler build may use at most this multiple of the heap build's
/// peak RSS *in the same run*. Keeps the wheel's speed from being
/// bought back with unbounded slot-storage memory (the pre-rework
/// wheel sat at ~7.5× — 144 MB vs 19 MB).
const PERF_GATE_MAX_RSS_RATIO: f64 = 2.0;

/// Outcome of the same-run RSS ceiling check.
#[derive(Debug, PartialEq)]
enum RssGate {
    /// Ratio measured and within the ceiling.
    Ok(f64),
    /// RSS unavailable (e.g. non-Linux: `peak_rss_kb()` returned 0) —
    /// the check is skipped with a printed notice, never failed.
    Skipped(&'static str),
    /// Ratio measured and at or above the ceiling.
    Failed(f64),
}

/// Outcome of the same-run parallel speedup floor check.
#[derive(Debug, PartialEq)]
enum SpeedupGate {
    /// Speedup measured on a wide-enough host and at or above the floor.
    Ok(f64),
    /// Not measurable here (too few cores, or a wall-clock was missing)
    /// — skipped with a printed notice, never failed.
    Skipped(String),
    /// Measured on a wide-enough host and below the floor.
    Failed(f64),
}

/// Evaluate the drain-point speedup floor for one run. `cores` is what
/// the host actually exposes: demanding a 2× speedup from 4 threads on
/// a 1-core container would gate on the hardware, not the code.
fn speedup_gate(serial_ms: f64, parallel_ms: f64, threads: usize, cores: usize) -> SpeedupGate {
    if cores < threads {
        return SpeedupGate::Skipped(format!(
            "host exposes {cores} core(s), fewer than the {threads} gate threads"
        ));
    }
    let unusable = |ms: f64| ms.is_nan() || ms <= 0.0;
    if unusable(serial_ms) || unusable(parallel_ms) {
        return SpeedupGate::Skipped("wall-clock measurement unavailable".to_string());
    }
    let speedup = serial_ms / parallel_ms;
    if speedup >= PERF_GATE_MIN_PARALLEL_SPEEDUP {
        SpeedupGate::Ok(speedup)
    } else {
        SpeedupGate::Failed(speedup)
    }
}

/// Evaluate the wheel-vs-heap peak-RSS ceiling for one run.
fn rss_gate(wheel_kb: f64, heap_kb: f64) -> RssGate {
    let unavailable = |kb: f64| kb.is_nan() || kb <= 0.0;
    if unavailable(wheel_kb) || unavailable(heap_kb) {
        // 0 is the probe's "unreadable" sentinel; NaN is a missing
        // report field.
        return RssGate::Skipped("peak RSS unavailable on this platform");
    }
    let ratio = wheel_kb / heap_kb;
    if ratio < PERF_GATE_MAX_RSS_RATIO {
        RssGate::Ok(ratio)
    } else {
        RssGate::Failed(ratio)
    }
}

/// Build and run the `perf_point` binary once per scheduler per named
/// point, check the event-trace digests agree across schedulers, and
/// write the comparison to `BENCH_perf.json` at the workspace root.
///
/// With `gate`, the run fails unless the wheel beats the heap on the
/// headline point by at least [`PERF_GATE_MIN_IMPROVEMENT_PCT`] in the
/// same run (a machine-independent relative floor; the committed
/// `BENCH_perf.json` is informational, never compared against), stays
/// under the RSS ceiling, and — on hosts with at least `threads`
/// cores — reaches the drain-point speedup floor.
fn perf(quick: bool, gate: bool, threads: usize) -> ExitCode {
    let root = workspace_root();
    let runs = if quick { 1 } else { PERF_RUNS_FULL };
    let points = match perf_point_names(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xtask perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (point, scheduler) → best-of-N report.
    let mut results: Vec<(String, Vec<PerfReport>)> = Vec::new();
    for point in &points {
        let mut per_scheduler = Vec::new();
        for (name, features) in PERF_SCHEDULERS {
            let mut best: Option<PerfReport> = None;
            for _ in 0..runs {
                let rep = match run_perf_point(&root, point, features, quick, 1) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("xtask perf: {point}/{name}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let faster = |r: &PerfReport, b: &PerfReport| {
                    perf_f64(r, "wall_ms") < perf_f64(b, "wall_ms")
                };
                if best.as_ref().is_none_or(|b| faster(&rep, b)) {
                    best = Some(rep);
                }
            }
            let best = best.expect("runs >= 1 always yields a report");
            println!(
                "  {point:<16} {name:<6} wall {:>9.1} ms  {:>12} events  {:>10.0} ev/s  rss {:>7} KiB",
                perf_f64(&best, "wall_ms"),
                best.get("events").map_or("?", String::as_str),
                perf_f64(&best, "events_per_sec"),
                best.get("peak_rss_kb").map_or("?", String::as_str),
            );
            per_scheduler.push(best);
        }
        results.push((point.clone(), per_scheduler));
    }
    // Cross-scheduler digest agreement is the harness's correctness
    // gate: an optimization that changes event order is a wrong answer
    // computed quickly.
    let mut digests_ok = true;
    for (point, reps) in &results {
        let digests: Vec<&str> = reps
            .iter()
            .map(|r| r.get("digest").map_or("?", String::as_str))
            .collect();
        if digests.windows(2).any(|w| w[0] != w[1]) {
            eprintln!("xtask perf: DIGEST MISMATCH on {point}: {digests:?}");
            digests_ok = false;
        }
    }
    // Parallel section (wheel build only): the drain point serially and
    // at `threads` workers, same best-of-N discipline.
    let mut parallel: Vec<(usize, PerfReport)> = Vec::new();
    let thread_counts = if threads >= 2 {
        vec![1, threads]
    } else {
        vec![1]
    };
    for &t in &thread_counts {
        let mut best: Option<PerfReport> = None;
        for _ in 0..runs {
            let rep = match run_perf_point(&root, PERF_PARALLEL_POINT, &[], quick, t) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("xtask perf: {PERF_PARALLEL_POINT}/t{t}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let faster =
                |r: &PerfReport, b: &PerfReport| perf_f64(r, "wall_ms") < perf_f64(b, "wall_ms");
            if best.as_ref().is_none_or(|b| faster(&rep, b)) {
                best = Some(rep);
            }
        }
        let best = best.expect("runs >= 1 always yields a report");
        println!(
            "  {PERF_PARALLEL_POINT:<16} t={t:<4} wall {:>9.1} ms  {:>12} events  {:>10.0} ev/s",
            perf_f64(&best, "wall_ms"),
            best.get("events").map_or("?", String::as_str),
            perf_f64(&best, "events_per_sec"),
        );
        parallel.push((t, best));
    }
    // Thread-count invariance is the parallel engine's correctness
    // gate: the drain digest across worker counts, and a threaded
    // re-run of the headline full-sim point against its serial digest.
    let mut parallel_ok = parallel
        .windows(2)
        .all(|w| w[0].1.get("digest") == w[1].1.get("digest"));
    if !parallel_ok {
        let digests: Vec<_> = parallel
            .iter()
            .map(|(t, r)| (t, r.get("digest").map_or("?", String::as_str)))
            .collect();
        eprintln!("xtask perf: DIGEST MISMATCH across thread counts on {PERF_PARALLEL_POINT}: {digests:?}");
    }
    if threads >= 2 {
        match run_perf_point(&root, PERF_HEADLINE_POINT, &[], quick, threads) {
            Ok(rep) => {
                let serial = results
                    .iter()
                    .find(|(p, _)| p == PERF_HEADLINE_POINT)
                    .and_then(|(_, reps)| reps.first())
                    .and_then(|r| r.get("digest"));
                if serial == rep.get("digest") {
                    println!(
                        "xtask perf: {PERF_HEADLINE_POINT} digest identical at {threads} threads"
                    );
                } else {
                    eprintln!(
                        "xtask perf: DIGEST MISMATCH on {PERF_HEADLINE_POINT} at {threads} \
                         threads vs serial"
                    );
                    parallel_ok = false;
                }
            }
            Err(e) => {
                eprintln!("xtask perf: {PERF_HEADLINE_POINT}/t{threads}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let json = perf_json(quick, &results, digests_ok, &parallel);
    let out = root.join("BENCH_perf.json");
    if let Err(e) = fs::write(&out, json) {
        eprintln!("xtask perf: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("xtask perf: wrote {}", out.display());
    let mut headline_now = None;
    let mut headline_rss = None;
    if let Some((_, reps)) = results.iter().find(|(p, _)| p == PERF_HEADLINE_POINT) {
        let (wheel, heap) = (&reps[0], &reps[1]);
        let improvement =
            perf_improvement_pct(perf_f64(heap, "wall_ms"), perf_f64(wheel, "wall_ms"));
        headline_now = Some(improvement);
        headline_rss = Some((
            perf_f64(wheel, "peak_rss_kb"),
            perf_f64(heap, "peak_rss_kb"),
        ));
        println!(
            "xtask perf: {PERF_HEADLINE_POINT}: wheel {:.1} ms vs heap {:.1} ms — {improvement:.1}% \
             wall-clock improvement",
            perf_f64(wheel, "wall_ms"),
            perf_f64(heap, "wall_ms"),
        );
    }
    if gate {
        match headline_now {
            Some(now) if now >= PERF_GATE_MIN_IMPROVEMENT_PCT => {
                println!(
                    "xtask perf: gate OK — wheel beats heap by {now:.1}% this run \
                     (floor {PERF_GATE_MIN_IMPROVEMENT_PCT:.0}%)"
                );
            }
            Some(now) => {
                eprintln!(
                    "xtask perf: GATE FAILED — wheel beats heap by only {now:.1}% this run, \
                     below the {PERF_GATE_MIN_IMPROVEMENT_PCT:.0}% floor"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("xtask perf: GATE FAILED — headline point missing from this run");
                return ExitCode::FAILURE;
            }
        }
        let (wheel_kb, heap_kb) = headline_rss.expect("headline present if wall gate passed");
        match rss_gate(wheel_kb, heap_kb) {
            RssGate::Ok(ratio) => {
                println!(
                    "xtask perf: RSS gate OK — wheel peak RSS is {ratio:.2}× heap's \
                     (ceiling {PERF_GATE_MAX_RSS_RATIO:.1}×)"
                );
            }
            RssGate::Skipped(why) => {
                println!("xtask perf: RSS gate skipped — {why}");
            }
            RssGate::Failed(ratio) => {
                eprintln!(
                    "xtask perf: GATE FAILED — wheel peak RSS is {ratio:.2}× heap's, at or \
                     above the {PERF_GATE_MAX_RSS_RATIO:.1}× ceiling"
                );
                return ExitCode::FAILURE;
            }
        }
        // Drain-point speedup floor at `threads` workers.
        if threads < 2 {
            println!("xtask perf: speedup gate skipped — parallel section ran single-threaded");
        } else {
            let wall_at = |t: usize| {
                parallel
                    .iter()
                    .find(|(pt, _)| *pt == t)
                    .map_or(f64::NAN, |(_, r)| perf_f64(r, "wall_ms"))
            };
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            match speedup_gate(wall_at(1), wall_at(threads), threads, cores) {
                SpeedupGate::Ok(s) => {
                    println!(
                        "xtask perf: speedup gate OK — {PERF_PARALLEL_POINT} is {s:.2}× faster \
                         at {threads} threads (floor {PERF_GATE_MIN_PARALLEL_SPEEDUP:.1}×)"
                    );
                }
                SpeedupGate::Skipped(why) => {
                    println!("xtask perf: speedup gate skipped — {why}");
                }
                SpeedupGate::Failed(s) => {
                    eprintln!(
                        "xtask perf: GATE FAILED — {PERF_PARALLEL_POINT} is only {s:.2}× faster \
                         at {threads} threads, below the \
                         {PERF_GATE_MIN_PARALLEL_SPEEDUP:.1}× floor"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    match (digests_ok, parallel_ok) {
        (true, true) => {
            println!("xtask perf: same-seed digests identical across schedulers and thread counts");
            ExitCode::SUCCESS
        }
        (false, _) => {
            eprintln!("xtask perf: FAIL (cross-scheduler digest mismatch)");
            ExitCode::FAILURE
        }
        (true, false) => {
            eprintln!("xtask perf: FAIL (thread-count digest mismatch)");
            ExitCode::FAILURE
        }
    }
}

/// `parallel`: thread-count invariance over the tier-1 conformance
/// grid. Every scenario cell runs through the sharded engine at each
/// worker count, and every pass is checked against the committed
/// single-queue goldens — so a pass here proves the parallel engine
/// replays the exact pinned event order at 1, 2 and 4 workers.
/// `--quick` runs only the widest count (CI smoke; the full matrix
/// runs nightly and locally).
fn parallel(quick: bool) -> ExitCode {
    let dir = workspace_root().join("tests/scenarios");
    let counts: &[usize] = if quick { &[4] } else { &[1, 2, 4] };
    let mut ok = true;
    for &sim_threads in counts {
        println!("== {} @ {sim_threads} sim thread(s) ==", dir.display());
        let report = match hermes_testkit::run_conformance_sharded(&dir, 0, sim_threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask parallel: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{report}");
        ok &= report.passed();
    }
    if ok {
        println!(
            "xtask parallel: PASS — goldens byte-identical at {} thread count(s)",
            counts.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask parallel: FAIL — the sharded engine diverged from the pinned order");
        ExitCode::FAILURE
    }
}

/// Wall-clock reduction of `new` relative to `old`, in percent.
fn perf_improvement_pct(old_ms: f64, new_ms: f64) -> f64 {
    if old_ms <= 0.0 {
        return 0.0;
    }
    (old_ms - new_ms) / old_ms * 100.0
}

/// Numeric field of a report, NaN when absent/unparseable (NaN keeps
/// comparisons false, so a malformed report never wins best-of-N).
fn perf_f64(rep: &PerfReport, key: &str) -> f64 {
    rep.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

/// Ask the (wheel-build) binary for its point list — single source of
/// truth in `hermes-bench::PERF_POINTS`.
fn perf_point_names(root: &Path) -> Result<Vec<String>, String> {
    let out = cargo_run_perf_point(root, &[], &["--list"])?;
    let points: Vec<String> = out
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect();
    if points.is_empty() {
        return Err("perf_point --list printed no points".into());
    }
    Ok(points)
}

/// One timed child run; returns the parsed `key=value` report.
fn run_perf_point(
    root: &Path,
    point: &str,
    features: &[&str],
    quick: bool,
    threads: usize,
) -> Result<PerfReport, String> {
    let mut args = vec!["--point", point];
    if quick {
        args.push("--quick");
    }
    let t;
    if threads >= 2 {
        t = threads.to_string();
        args.push("--threads");
        args.push(&t);
    }
    let out = cargo_run_perf_point(root, features, &args)?;
    let rep: PerfReport = out
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    for required in ["scheduler", "wall_ms", "events", "digest"] {
        if !rep.contains_key(required) {
            return Err(format!("report missing `{required}`:\n{out}"));
        }
    }
    Ok(rep)
}

/// `cargo run --release -p hermes-bench [features…] --bin perf_point -- args…`
/// from the workspace root, returning the child's stdout.
fn cargo_run_perf_point(root: &Path, features: &[&str], args: &[&str]) -> Result<String, String> {
    let mut cmd = std::process::Command::new("cargo");
    cmd.current_dir(root)
        .arg("run")
        .arg("--release")
        .arg("-q")
        .args(["-p", "hermes-bench"])
        .args(features)
        .args(["--bin", "perf_point", "--"])
        .args(args);
    let out = cmd.output().map_err(|e| format!("spawning cargo: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "cargo run failed ({}):\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Hand-rolled JSON for `BENCH_perf.json` (the workspace deliberately
/// vendors no serde). All fields come from already-validated reports.
fn perf_json(
    quick: bool,
    results: &[(String, Vec<PerfReport>)],
    digests_ok: bool,
    parallel: &[(usize, PerfReport)],
) -> String {
    let num = |rep: &PerfReport, key: &str| -> String {
        let v = perf_f64(rep, key);
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    };
    let mut points = Vec::new();
    let mut headline = String::from("null");
    for (point, reps) in results {
        let mut sched_objs = Vec::new();
        for rep in reps {
            sched_objs.push(format!(
                concat!(
                    "{{\"scheduler\": \"{}\", \"wall_ms\": {}, \"events\": {}, ",
                    "\"events_per_sec\": {}, \"packets\": {}, \"packets_per_sec\": {}, ",
                    "\"peak_rss_kb\": {}, \"trains_inlined\": {}, \"digest\": \"{}\"}}"
                ),
                rep.get("scheduler").map_or("?", String::as_str),
                num(rep, "wall_ms"),
                num(rep, "events"),
                num(rep, "events_per_sec"),
                num(rep, "packets"),
                num(rep, "packets_per_sec"),
                num(rep, "peak_rss_kb"),
                num(rep, "trains_inlined"),
                rep.get("digest").map_or("?", String::as_str),
            ));
        }
        let improvement = if reps.len() == 2 {
            perf_improvement_pct(perf_f64(&reps[1], "wall_ms"), perf_f64(&reps[0], "wall_ms"))
        } else {
            f64::NAN
        };
        // Wheel-vs-heap peak-RSS ratio (null when RSS was unreadable).
        let rss_ratio_json = if reps.len() == 2 {
            match rss_gate(
                perf_f64(&reps[0], "peak_rss_kb"),
                perf_f64(&reps[1], "peak_rss_kb"),
            ) {
                RssGate::Ok(r) | RssGate::Failed(r) => format!("{r:.3}"),
                RssGate::Skipped(_) => "null".to_string(),
            }
        } else {
            "null".to_string()
        };
        let digest_match = reps
            .windows(2)
            .all(|w| w[0].get("digest") == w[1].get("digest"));
        let improvement_json = if improvement.is_finite() {
            format!("{improvement:.2}")
        } else {
            "null".to_string()
        };
        let obj = format!(
            concat!(
                "    {{\"point\": \"{}\", \"digest_match\": {}, ",
                "\"wall_improvement_pct\": {}, \"rss_ratio\": {}, \"schedulers\": [{}]}}"
            ),
            point,
            digest_match,
            improvement_json,
            rss_ratio_json,
            sched_objs.join(", "),
        );
        if point == PERF_HEADLINE_POINT {
            headline = format!(
                "{{\"point\": \"{point}\", \"wall_improvement_pct\": {improvement_json}, \
                 \"rss_ratio\": {rss_ratio_json}}}"
            );
        }
        points.push(obj);
    }
    // The parallel section: per-thread-count drain rows, the digest
    // invariance verdict, and the measured speedup (serial / widest).
    let parallel_json = if parallel.is_empty() {
        "null".to_string()
    } else {
        let rows: Vec<String> = parallel
            .iter()
            .map(|(t, rep)| {
                format!(
                    concat!(
                        "{{\"threads\": {}, \"wall_ms\": {}, \"events\": {}, ",
                        "\"events_per_sec\": {}, \"digest\": \"{}\"}}"
                    ),
                    t,
                    num(rep, "wall_ms"),
                    num(rep, "events"),
                    num(rep, "events_per_sec"),
                    rep.get("digest").map_or("?", String::as_str),
                )
            })
            .collect();
        let digest_match = parallel
            .windows(2)
            .all(|w| w[0].1.get("digest") == w[1].1.get("digest"));
        let speedup = if parallel.len() >= 2 {
            let last = &parallel[parallel.len() - 1].1;
            perf_f64(&parallel[0].1, "wall_ms") / perf_f64(last, "wall_ms")
        } else {
            f64::NAN
        };
        let speedup_json = if speedup.is_finite() {
            format!("{speedup:.3}")
        } else {
            "null".to_string()
        };
        format!(
            "{{\"point\": \"{PERF_PARALLEL_POINT}\", \"digest_match\": {digest_match}, \
             \"speedup\": {speedup_json}, \"runs\": [{}]}}",
            rows.join(", "),
        )
    };
    format!(
        concat!(
            "{{\n",
            "  \"generated_by\": \"cargo run -p xtask -- perf{}\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"digests_identical_across_schedulers\": {},\n",
            "  \"headline\": {},\n",
            "  \"parallel\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if quick { " --quick" } else { "" },
        if quick { "quick" } else { "full" },
        digests_ok,
        headline,
        parallel_json,
        points.join(",\n"),
    )
}

/// The workspace root, two levels above this crate's manifest.
/// `chaos`: replay the committed counterexample corpus, then run a
/// seeded fault-space fuzzing campaign under the degradation SLOs
/// (DESIGN.md §14). `--self-test` proves every SLO checker and the
/// shrinker trip on planted fixtures instead.
fn chaos(args: &[String]) -> ExitCode {
    use hermes_testkit::chaos;

    let mut cfg = chaos::CampaignCfg {
        quick: false,
        ..Default::default()
    };
    let mut json_out: Option<&str> = None;
    let mut emit_shrunk: Option<&str> = None;
    let mut self_test = false;
    let mut skip_corpus = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seeds = n,
                None => return chaos_usage("--seeds needs a count"),
            },
            "--seed-base" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed_base = n,
                None => return chaos_usage("--seed-base needs a seed"),
            },
            "--recovery-frac" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => cfg.slo.recovery_frac = f,
                None => return chaos_usage("--recovery-frac needs a fraction"),
            },
            "--recovery-slack-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => cfg.slo.recovery_slack = hermes_sim::Time::from_ms(ms),
                None => return chaos_usage("--recovery-slack-ms needs a duration"),
            },
            "--stranded-slack-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => cfg.slo.stranded_slack = hermes_sim::Time::from_ms(ms),
                None => return chaos_usage("--stranded-slack-ms needs a duration"),
            },
            "--quick" => cfg.quick = true,
            "--shrink" => cfg.shrink = true,
            "--self-test" => self_test = true,
            "--no-corpus" => skip_corpus = true,
            "--out" => json_out = it.next().map(String::as_str),
            "--emit-shrunk" => emit_shrunk = it.next().map(String::as_str),
            other => return chaos_usage(&format!("unexpected argument `{other}`")),
        }
    }
    if self_test {
        return chaos_self_test();
    }

    // Phase 1: the committed corpus must replay green — every entry is
    // a shrunk counterexample of a since-fixed behavior.
    let corpus_dir = workspace_root().join("tests/chaos/corpus");
    if !skip_corpus && corpus_dir.is_dir() {
        match chaos::replay_corpus(&corpus_dir, &cfg.slo, cfg.quick) {
            Ok(replay) => {
                for v in &replay.violations {
                    eprintln!(
                        "  [REGRESSED] {} {}: {}",
                        v.class.as_str(),
                        v.cell,
                        v.detail
                    );
                }
                if !replay.violations.is_empty() {
                    eprintln!(
                        "xtask chaos: corpus replay FAILED ({} violation(s))",
                        replay.violations.len()
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "xtask chaos: corpus replay green ({} entr{})",
                    replay.files.len(),
                    if replay.files.len() == 1 { "y" } else { "ies" }
                );
            }
            Err(e) => {
                eprintln!("xtask chaos: corpus: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Phase 2: the sampled campaign.
    let report = chaos::run_campaign(&cfg);
    for o in &report.outcomes {
        println!(
            "  [{}] seed={:<4} plan: {:>2} event(s) ending {}",
            if o.violations.is_empty() {
                "ok"
            } else {
                "VIOLATION"
            },
            o.seed,
            o.plan.len(),
            o.plan.end_time(),
        );
        for v in &o.violations {
            println!("      {} {}: {}", v.class.as_str(), v.cell, v.detail);
        }
        for sh in &o.shrunk {
            println!(
                "      shrunk {} -> {} event(s) in {} eval(s) [{}]",
                sh.from_events,
                sh.plan.len(),
                sh.evals,
                sh.class.as_str()
            );
        }
    }
    if let Some(dir) = emit_shrunk {
        if let Err(e) = write_shrunk(&report, Path::new(dir)) {
            eprintln!("xtask chaos: --emit-shrunk: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(out) = json_out {
        if let Err(e) = fs::write(out, report.to_json()) {
            eprintln!("xtask chaos: writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask chaos: wrote {out}");
    }
    let violations = report.total_violations();
    println!(
        "xtask chaos: {} seed(s), {} violation(s), campaign digest {:#018x}",
        report.outcomes.len(),
        violations,
        report.digest()
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Write each shrunk counterexample as a corpus-format TOML file for
/// triage (and, if it earns it, committing to `tests/chaos/corpus/`).
fn write_shrunk(report: &hermes_testkit::chaos::CampaignReport, dir: &Path) -> Result<(), String> {
    use hermes_testkit::chaos;

    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = 0;
    for o in &report.outcomes {
        for sh in &o.shrunk {
            let entry = chaos::CorpusEntry {
                description: format!(
                    "shrunk from seed {} ({} -> {} events); tripped {} in {}",
                    o.seed,
                    sh.from_events,
                    sh.plan.len(),
                    sh.class.as_str(),
                    sh.cell
                ),
                seed: o.seed,
                slo: sh.class.as_str().to_string(),
                lb: sh
                    .cell
                    .rsplit_once('/')
                    .map_or("cross", |(_, lb)| lb)
                    .to_string(),
                plan: sh.plan.clone(),
            };
            let path = dir.join(format!("seed{}-{}.toml", o.seed, sh.class.as_str()));
            fs::write(&path, chaos::plan_to_toml(&entry))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            written += 1;
        }
    }
    println!(
        "xtask chaos: wrote {written} shrunk plan(s) to {}",
        dir.display()
    );
    Ok(())
}

fn chaos_usage(msg: &str) -> ExitCode {
    eprintln!("xtask chaos: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- chaos [--seeds N] [--seed-base N] [--quick] [--shrink] \
         [--self-test] [--no-corpus] [--recovery-frac F] [--out <json>] [--emit-shrunk <dir>]"
    );
    ExitCode::FAILURE
}

/// Prove every chaos SLO checker and the plan shrinker trip on their
/// planted fixtures (mirrors `conformance --self-test`).
fn chaos_self_test() -> ExitCode {
    let cases = hermes_testkit::chaos::run_chaos_self_test();
    let mut ok = true;
    for case in &cases {
        println!(
            "  [{}] {:<32} {}",
            if case.ok { "ok" } else { "MISSED" },
            case.name,
            case.detail
        );
        ok &= case.ok;
    }
    if ok {
        println!(
            "xtask chaos --self-test: all {} fixtures behaved (checkers trip, shrinker minimizes)",
            cases.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask chaos --self-test: a planted fixture did not trip its checker");
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_gate_floor_is_a_same_run_relative_bound() {
        // The committed headline improvement sits comfortably above the
        // floor, so a healthy run passes with margin; the floor itself
        // stays well below it so machine noise on the *ratio* (not the
        // absolute wall-clock) is what it takes to trip.
        assert!(perf_improvement_pct(100.0, 80.0) >= PERF_GATE_MIN_IMPROVEMENT_PCT);
        assert!(perf_improvement_pct(100.0, 95.0) < PERF_GATE_MIN_IMPROVEMENT_PCT);
    }

    #[test]
    fn perf_improvement_is_relative_to_the_baseline() {
        assert!((perf_improvement_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((perf_improvement_pct(100.0, 125.0) + 25.0).abs() < 1e-12);
        assert_eq!(perf_improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn perf_json_shape_is_stable() {
        let mk = |sched: &str, wall: &str, digest: &str| -> PerfReport {
            [
                ("scheduler", sched),
                ("wall_ms", wall),
                ("events", "10"),
                ("events_per_sec", "100"),
                ("packets", "5"),
                ("packets_per_sec", "50"),
                ("peak_rss_kb", "1024"),
                ("trains_inlined", "3"),
                ("digest", digest),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
        };
        let results = vec![(
            PERF_HEADLINE_POINT.to_string(),
            vec![mk("wheel", "80", "0xabc"), mk("heap", "100", "0xabc")],
        )];
        let parallel = vec![
            (1, mk("wheel", "400", "0x123")),
            (4, mk("wheel", "100", "0x123")),
        ];
        let json = perf_json(false, &results, true, &parallel);
        assert!(json.contains("\"wall_improvement_pct\": 20.00"), "{json}");
        assert!(json.contains("\"digest_match\": true"), "{json}");
        assert!(
            json.contains("\"headline\": {\"point\": \"fig12_baseline\""),
            "{json}"
        );
        assert!(json.contains("\"mode\": \"full\""), "{json}");
        // Equal RSS on both sides → ratio 1.000, in the per-point object
        // and the headline; the per-scheduler rows carry the raw columns.
        assert!(json.contains("\"rss_ratio\": 1.000"), "{json}");
        assert!(json.contains("\"peak_rss_kb\": 1024"), "{json}");
        assert!(json.contains("\"trains_inlined\": 3"), "{json}");
        // The parallel section carries per-thread-count rows, the
        // digest verdict, and the serial/widest speedup.
        assert!(
            json.contains("\"parallel\": {\"point\": \"fig12_shard_drain\""),
            "{json}"
        );
        assert!(json.contains("\"speedup\": 4.000"), "{json}");
        assert!(json.contains("\"threads\": 4"), "{json}");
        // A digest split must surface in both the per-point and the
        // top-level flags.
        let split = vec![(
            PERF_HEADLINE_POINT.to_string(),
            vec![mk("wheel", "80", "0xabc"), mk("heap", "100", "0xdef")],
        )];
        let json = perf_json(true, &split, false, &[]);
        assert!(json.contains("\"parallel\": null"), "{json}");
        assert!(json.contains("\"digest_match\": false"), "{json}");
        assert!(
            json.contains("\"digests_identical_across_schedulers\": false"),
            "{json}"
        );
        assert!(json.contains("\"mode\": \"quick\""), "{json}");
    }

    #[test]
    fn speedup_gate_passes_skips_and_fails() {
        // A 4-core host reaching the floor: ok, with the ratio.
        assert_eq!(speedup_gate(400.0, 100.0, 4, 4), SpeedupGate::Ok(4.0));
        assert_eq!(speedup_gate(200.0, 100.0, 4, 8), SpeedupGate::Ok(2.0));
        // Below the floor on a wide-enough host: a real failure.
        assert_eq!(speedup_gate(150.0, 100.0, 4, 4), SpeedupGate::Failed(1.5));
        // Too few cores (the 1-core CI container): skipped, never
        // failed — the gate must measure the code, not the hardware.
        assert!(matches!(
            speedup_gate(400.0, 100.0, 4, 1),
            SpeedupGate::Skipped(_)
        ));
        assert!(matches!(
            speedup_gate(400.0, 100.0, 4, 3),
            SpeedupGate::Skipped(_)
        ));
        // Missing measurements: skipped.
        assert!(matches!(
            speedup_gate(f64::NAN, 100.0, 4, 8),
            SpeedupGate::Skipped(_)
        ));
        assert!(matches!(
            speedup_gate(400.0, 0.0, 4, 8),
            SpeedupGate::Skipped(_)
        ));
    }

    #[test]
    fn rss_gate_passes_skips_and_fails() {
        // Well under the ceiling: ok, with the measured ratio.
        assert_eq!(rss_gate(30_000.0, 19_000.0), RssGate::Ok(30.0 / 19.0));
        // Unavailable on either side (the probe's 0 sentinel or a NaN
        // from a missing report field) skips the check — never fails it.
        assert!(matches!(rss_gate(0.0, 19_000.0), RssGate::Skipped(_)));
        assert!(matches!(rss_gate(30_000.0, 0.0), RssGate::Skipped(_)));
        assert!(matches!(rss_gate(f64::NAN, 19_000.0), RssGate::Skipped(_)));
        // At the ceiling exactly is a failure: the bound is exclusive.
        assert_eq!(rss_gate(38_000.0, 19_000.0), RssGate::Failed(2.0));
        assert!(matches!(
            rss_gate(144_100.0, 19_032.0),
            RssGate::Failed(r) if r > 7.0
        ));
    }

    #[test]
    fn analyzer_runs_clean_via_the_xtask_root() {
        // The path xtask hands to hermes-analyzer must be the same
        // workspace root the analyzer's own tests use, and the tree
        // must be clean through this entry point too.
        let a = hermes_analyzer::analyze_workspace(&workspace_root(), false)
            .expect("analyzable workspace");
        assert!(a.scanned > 0);
        let report: Vec<String> = a
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.text))
            .collect();
        assert!(a.clean(), "findings:\n{}", report.join("\n"));
    }
}
