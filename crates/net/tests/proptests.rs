//! Property-based tests of the fabric: conservation, delivery, and
//! determinism under arbitrary traffic.

use hermes_net::{Event, Fabric, FlowId, HostId, LinkCfg, Packet, PathId, Port, Topology};
use hermes_sim::{EventQueue, SimRng, Time};
use proptest::prelude::*;

fn run_all(fab: &mut Fabric, q: &mut EventQueue<Event>) -> Vec<(HostId, Box<Packet>)> {
    let mut out = Vec::new();
    while let Some((_, ev)) = q.pop() {
        if let Some(d) = fab.handle(q, ev) {
            out.push(d);
        }
    }
    out
}

proptest! {
    /// Ports conserve packets and bytes: whatever goes in comes out
    /// (minus counted tail drops), in priority order.
    #[test]
    fn port_conservation(
        sizes in proptest::collection::vec(41u32..1500, 1..80),
        buf_kb in 5u64..100,
    ) {
        let link = LinkCfg::new(1_000_000_000, Time::from_us(1));
        let mut p = Port::new(link, 30_000, buf_kb * 1000);
        let mut in_bytes = 0u64;
        let mut accepted = 0u64;
        for (i, &sz) in sizes.iter().enumerate() {
            let pkt = Packet::data(FlowId(i as u64), HostId(0), HostId(1), 0, sz - 40, false);
            in_bytes += sz as u64;
            if p.enqueue(Box::new(pkt)).is_queued() {
                accepted += sz as u64;
            }
        }
        let mut out_bytes = 0u64;
        while p.begin_tx().is_some() {
            out_bytes += p.complete_tx().size as u64;
        }
        prop_assert_eq!(out_bytes, accepted);
        prop_assert_eq!(p.queued_bytes(), 0);
        prop_assert!(accepted <= in_bytes);
        prop_assert_eq!(p.stats.tx_bytes, accepted);
    }

    /// Every packet injected into a healthy fabric is delivered to its
    /// destination host exactly once (no loss, no duplication).
    #[test]
    fn healthy_fabric_delivers_exactly_once(
        n_leaves in 2usize..4,
        n_spines in 1usize..4,
        pkts in proptest::collection::vec((0u32..6, 0u32..6, 0u16..4, 100u32..1460), 1..150),
        seed in 0u64..100,
    ) {
        let hosts = 3;
        let topo = Topology::leaf_spine(
            n_leaves,
            n_spines,
            hosts,
            LinkCfg::new(10_000_000_000, Time::from_us(2)),
            LinkCfg::new(10_000_000_000, Time::from_us(3)),
        );
        let n_hosts = topo.n_hosts() as u32;
        let mut fab = Fabric::new(topo, SimRng::new(seed));
        let mut q = EventQueue::new();
        let mut sent = 0usize;
        for (i, &(src, dst, path, len)) in pkts.iter().enumerate() {
            let (src, dst) = (src % n_hosts, dst % n_hosts);
            if src == dst {
                continue;
            }
            let mut pkt = Packet::data(FlowId(i as u64), HostId(src), HostId(dst), 0, len, false);
            pkt.path = PathId(path % n_spines as u16);
            fab.host_send(&mut q, pkt);
            sent += 1;
        }
        let out = run_all(&mut fab, &mut q);
        prop_assert_eq!(out.len(), sent, "every packet delivered exactly once");
        prop_assert_eq!(fab.total_drops_full(), 0, "ample buffers: no drops expected");
        for (host, pkt) in &out {
            prop_assert_eq!(pkt.dst, *host);
        }
    }

    /// Fabric runs are bit-deterministic: identical injections and seed
    /// produce identical delivery times and marks.
    #[test]
    fn fabric_determinism(
        pkts in proptest::collection::vec((0u32..12, 0u32..12, 0u16..4, 100u32..1460), 1..100),
        seed in 0u64..50,
    ) {
        let go = || {
            let topo = Topology::testbed();
            let mut fab = Fabric::new(topo, SimRng::new(seed));
            let mut q = EventQueue::new();
            for (i, &(src, dst, path, len)) in pkts.iter().enumerate() {
                let (src, dst) = (src % 12, dst % 12);
                if src == dst {
                    continue;
                }
                let mut pkt =
                    Packet::data(FlowId(i as u64), HostId(src), HostId(dst), 0, len, false);
                pkt.path = PathId(path);
                fab.host_send(&mut q, pkt);
            }
            run_all(&mut fab, &mut q)
                .into_iter()
                .map(|(h, p)| (h.0, p.id, p.ecn_marked))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(go(), go());
    }

    /// The deterministic pair hash behind blackhole matching maps every
    /// host pair into [0, 1) — so any `pair_fraction` in [0, 1] selects
    /// a well-defined subset of pairs.
    #[test]
    fn pair_unit_stays_in_the_unit_interval(a in any::<u32>(), b in any::<u32>()) {
        let u = hermes_net::pair_unit(HostId(a), HostId(b));
        prop_assert!((0.0..1.0).contains(&u), "pair_unit({a}, {b}) = {u}");
    }

    /// A fault window (onset followed by clearance) restores the spine
    /// to exactly `SpineFailure::healthy()`, whatever the failure mode —
    /// and link down/up and degrade/restore likewise round-trip.
    #[test]
    fn fault_onset_then_clear_restores_health(
        drop_rate in 0.0f64..1.0,
        pair_fraction in 0.0f64..1.0,
        use_blackhole in any::<bool>(),
        seed in 0u64..50,
    ) {
        use hermes_net::{FaultAction, LeafId, SpineFailure, SpineId};
        let topo = Topology::testbed();
        let orig_rate = topo.up[0][1].expect("testbed uplink").rate_bps;
        let mut fab = Fabric::new(topo, SimRng::new(seed));
        let s = SpineId(0);
        let failure = if use_blackhole {
            SpineFailure::blackhole(LeafId(0), LeafId(1), pair_fraction)
        } else {
            SpineFailure::random_drops(drop_rate)
        };
        fab.apply_fault(&FaultAction::SetSpineFailure { spine: s, failure });
        fab.apply_fault(&FaultAction::ClearSpineFailure { spine: s });
        let healed = fab.spine_failure(s);
        prop_assert!(!healed.is_failed());
        prop_assert_eq!(healed.random_drop, 0.0);
        prop_assert!(healed.blackhole.is_none());

        fab.apply_fault(&FaultAction::LinkDown { leaf: LeafId(0), spine: SpineId(1) });
        prop_assert!(fab.link_is_down(LeafId(0), SpineId(1)));
        fab.apply_fault(&FaultAction::LinkUp { leaf: LeafId(0), spine: SpineId(1) });
        prop_assert!(!fab.link_is_down(LeafId(0), SpineId(1)));

        fab.apply_fault(&FaultAction::SetLinkRate {
            leaf: LeafId(0),
            spine: SpineId(1),
            rate_bps: orig_rate / 7,
        });
        prop_assert_eq!(fab.link_rate_bps(LeafId(0), SpineId(1)), Some(orig_rate / 7));
        fab.apply_fault(&FaultAction::RestoreLinkRate { leaf: LeafId(0), spine: SpineId(1) });
        prop_assert_eq!(fab.link_rate_bps(LeafId(0), SpineId(1)), Some(orig_rate));
    }

    /// Random drops: delivered + dropped = sent, and the drop rate is
    /// statistically plausible for the configured probability.
    #[test]
    fn random_drop_accounting(seed in 0u64..200) {
        use hermes_net::{SpineFailure, SpineId};
        let topo = Topology::testbed();
        let mut fab = Fabric::new(topo, SimRng::new(seed));
        fab.set_spine_failure(SpineId(0), SpineFailure::random_drops(0.3));
        let mut q = EventQueue::new();
        let n = 400;
        for i in 0..n {
            let mut pkt = Packet::data(FlowId(i), HostId(0), HostId(6), 0, 1000, false);
            pkt.path = PathId(0);
            fab.host_send(&mut q, pkt);
        }
        let out = run_all(&mut fab, &mut q);
        prop_assert_eq!(out.len() as u64 + fab.stats.drops_failure, n);
        let rate = fab.stats.drops_failure as f64 / n as f64;
        prop_assert!((0.15..0.45).contains(&rate), "drop rate {rate}");
    }
}
