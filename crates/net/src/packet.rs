//! The simulated packet.

use hermes_sim::Time;

use crate::types::{FlowId, HostId, PathId, Priority};

/// Standard maximum segment size used by all transports (bytes of payload).
pub const MSS: u32 = 1460;
/// Wire size of a full data packet (payload + 40 B of headers).
pub const HDR: u32 = 40;
/// Wire size of a pure ACK.
pub const ACK_SIZE: u32 = 40;
/// Wire size of a probe packet (§3.1.3: "a probe packet is typically 64 bytes").
pub const PROBE_SIZE: u32 = 64;

/// What a packet is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// TCP/DCTCP data segment. `seq` is the first payload byte,
    /// `len` the payload length; `retx` marks retransmissions
    /// (excluded from RTT sampling, Karn's rule).
    Data { seq: u64, len: u32, retx: bool },
    /// Cumulative ACK: `ack` is the next expected byte. `ecn_echo`
    /// reflects whether the ACKed data packet was CE-marked (per-packet
    /// echo, DCTCP-style). `echo_ts`/`echo_path` echo the data packet's
    /// departure timestamp and path for exact RTT and per-path
    /// attribution at the sender; `echo_retx` marks ACKs triggered by a
    /// retransmitted segment (no RTT sample — Karn's rule).
    Ack {
        ack: u64,
        ecn_echo: bool,
        echo_ts: Time,
        echo_path: PathId,
        echo_retx: bool,
    },
    /// Hermes probe request (low priority, experiences data queueing).
    ProbeReq,
    /// Hermes probe response (high priority). `req_ecn` echoes whether
    /// the request was CE-marked on the forward path; `echo_ts` echoes
    /// the request's departure time.
    ProbeResp { req_ecn: bool, echo_ts: Time },
    /// Unreliable constant-rate traffic (used by the Fig. 2 experiment).
    Udp,
}

/// CONGA-style in-band metadata, carried by every packet.
///
/// `lb_tag`/`ce` describe the *forward* direction (which uplink the source
/// leaf chose and the max congestion metric seen along the path so far);
/// `fb_*` piggyback one feedback entry for the reverse direction.
/// Schemes that don't use it leave it at `default()`; the fields cost a
/// few bytes per simulated packet and keep the fabric hooks monomorphic.
#[derive(Clone, Copy, Debug, Default)]
pub struct LbMeta {
    /// Uplink (spine) chosen at the source leaf.
    pub lb_tag: u16,
    /// Max link congestion (DRE output, normalized 0..=1) along the path.
    pub ce: f32,
    /// Piggybacked feedback: congestion of `fb_tag` from the packet's
    /// source leaf toward its destination leaf, valid if `fb_valid`.
    pub fb_tag: u16,
    pub fb_ce: f32,
    pub fb_valid: bool,
}

/// The payload of a cumulative ACK (mirrors [`PacketKind::Ack`]).
///
/// Bundled into one value so [`Packet::ack`] and the transport's ACK
/// plumbing pass a single coherent record instead of five loose
/// positional fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckInfo {
    /// Next expected byte (cumulative).
    pub ack: u64,
    /// Whether the ACKed data packet carried a CE mark.
    pub ecn_echo: bool,
    /// Departure timestamp echoed from the data packet ([`Time::MAX`]
    /// when no RTT sample should be taken).
    pub echo_ts: Time,
    /// Path the data packet travelled (sender-side attribution).
    pub echo_path: PathId,
    /// Whether the ACK was triggered by a retransmission (Karn's rule).
    pub echo_retx: bool,
}

/// A packet in flight or queued.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique per-simulation packet id (diagnostics only).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    /// Total wire size in bytes (headers included).
    pub size: u32,
    pub kind: PacketKind,
    /// Whether the packet may be CE-marked (data of ECN transports, probes).
    pub ecn_capable: bool,
    /// CE mark accumulated at congested queues.
    pub ecn_marked: bool,
    /// Explicit route: the spine to cross ([`PathId::DIRECT`] intra-rack).
    pub path: PathId,
    pub prio: Priority,
    /// Departure time from the sending host (set by the fabric on first
    /// enqueue; used for probe/data RTT echoes).
    pub sent_at: Time,
    /// CONGA-style metadata.
    pub meta: LbMeta,
}

impl Packet {
    /// A data segment of `len` payload bytes.
    pub fn data(flow: FlowId, src: HostId, dst: HostId, seq: u64, len: u32, retx: bool) -> Packet {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size: len + HDR,
            kind: PacketKind::Data { seq, len, retx },
            ecn_capable: true,
            ecn_marked: false,
            path: PathId::UNSET,
            prio: Priority::Low,
            sent_at: Time::ZERO,
            meta: LbMeta::default(),
        }
    }

    /// A pure cumulative ACK, echoing the data packet's mark, timestamp
    /// and path.
    pub fn ack(flow: FlowId, src: HostId, dst: HostId, info: AckInfo) -> Packet {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size: ACK_SIZE,
            kind: PacketKind::Ack {
                ack: info.ack,
                ecn_echo: info.ecn_echo,
                echo_ts: info.echo_ts,
                echo_path: info.echo_path,
                echo_retx: info.echo_retx,
            },
            ecn_capable: false,
            ecn_marked: false,
            path: PathId::UNSET,
            prio: Priority::High,
            sent_at: Time::ZERO,
            meta: LbMeta::default(),
        }
    }

    /// A probe request on an explicit path.
    pub fn probe_req(flow: FlowId, src: HostId, dst: HostId, path: PathId) -> Packet {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size: PROBE_SIZE,
            kind: PacketKind::ProbeReq,
            ecn_capable: true,
            ecn_marked: false,
            path,
            prio: Priority::Low,
            sent_at: Time::ZERO,
            meta: LbMeta::default(),
        }
    }

    /// The response to a probe request, sent back on the same path.
    pub fn probe_resp(req: &Packet) -> Packet {
        Packet {
            id: 0,
            flow: req.flow,
            src: req.dst,
            dst: req.src,
            size: PROBE_SIZE,
            kind: PacketKind::ProbeResp {
                req_ecn: req.ecn_marked,
                echo_ts: req.sent_at,
            },
            ecn_capable: false,
            ecn_marked: false,
            path: req.path,
            prio: Priority::High,
            sent_at: Time::ZERO,
            meta: LbMeta::default(),
        }
    }

    /// A UDP datagram of `len` payload bytes on an explicit path.
    pub fn udp(flow: FlowId, src: HostId, dst: HostId, len: u32, path: PathId) -> Packet {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size: len + HDR,
            kind: PacketKind::Udp,
            ecn_capable: false,
            ecn_marked: false,
            path,
            prio: Priority::Low,
            sent_at: Time::ZERO,
            meta: LbMeta::default(),
        }
    }

    /// Whether this is a data segment (any transport payload).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SpineId;

    fn ids() -> (FlowId, HostId, HostId) {
        (FlowId(1), HostId(0), HostId(9))
    }

    #[test]
    fn data_packet_shape() {
        let (f, s, d) = ids();
        let p = Packet::data(f, s, d, 1460, 1460, false);
        assert_eq!(p.size, 1500);
        assert!(p.ecn_capable && !p.ecn_marked);
        assert_eq!(p.prio, Priority::Low);
        assert!(p.is_data());
    }

    #[test]
    fn ack_packet_shape() {
        let (f, s, d) = ids();
        let p = Packet::ack(
            f,
            d,
            s,
            AckInfo {
                ack: 2920,
                ecn_echo: true,
                echo_ts: Time::from_us(5),
                echo_path: PathId::via(SpineId(1)),
                echo_retx: false,
            },
        );
        assert_eq!(p.size, ACK_SIZE);
        assert_eq!(p.prio, Priority::High);
        assert!(!p.ecn_capable);
        match p.kind {
            PacketKind::Ack {
                ack,
                ecn_echo,
                echo_path,
                ..
            } => {
                assert_eq!(ack, 2920);
                assert!(ecn_echo);
                assert_eq!(echo_path, PathId::via(SpineId(1)));
            }
            _ => panic!("not an ack"),
        }
    }

    #[test]
    fn probe_resp_echoes_request() {
        let (f, s, d) = ids();
        let mut req = Packet::probe_req(f, s, d, PathId::via(SpineId(2)));
        req.ecn_marked = true;
        req.sent_at = Time::from_us(100);
        let resp = Packet::probe_resp(&req);
        assert_eq!(resp.src, d);
        assert_eq!(resp.dst, s);
        assert_eq!(resp.path, PathId::via(SpineId(2)));
        assert_eq!(resp.prio, Priority::High);
        match resp.kind {
            PacketKind::ProbeResp { req_ecn, echo_ts } => {
                assert!(req_ecn);
                assert_eq!(echo_ts, Time::from_us(100));
            }
            _ => panic!("not a probe resp"),
        }
    }

    #[test]
    fn probes_are_64_bytes() {
        let (f, s, d) = ids();
        assert_eq!(Packet::probe_req(f, s, d, PathId::UNSET).size, 64);
    }
}
