//! Leaf-spine topology description and builders.

use hermes_sim::{SimRng, Time};

use crate::packet::{ACK_SIZE, HDR, MSS};
use crate::types::{HostId, LeafId, PathId, SpineId};

/// A unidirectional link's physical parameters. All links in this fabric
/// are full-duplex pairs with identical parameters in both directions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkCfg {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Time,
}

impl LinkCfg {
    pub fn new(rate_bps: u64, delay: Time) -> LinkCfg {
        LinkCfg { rate_bps, delay }
    }

    /// Gigabits per second, fractional.
    pub fn gbps(&self) -> f64 {
        self.rate_bps as f64 / 1e9
    }
}

/// How per-port queue parameters scale with the port's line rate.
///
/// DCTCP-style ECN marking thresholds grow with line rate (the classic
/// guideline is K ≈ C·RTT/7); commodity buffers likewise. Thresholds are
/// `max(floor, per_gbps × gbps)`.
#[derive(Clone, Copy, Debug)]
pub struct QueueCfg {
    /// ECN marking threshold scaling (bytes per Gbps of line rate).
    pub ecn_per_gbps: f64,
    /// Minimum ECN marking threshold (bytes).
    pub ecn_floor: u64,
    /// Buffer size scaling (bytes per Gbps of line rate).
    pub buf_per_gbps: f64,
    /// Minimum per-port buffer (bytes).
    pub buf_floor: u64,
}

impl Default for QueueCfg {
    /// 10 Gbps ports mark at 100 KB (≈ 80 µs of one-hop queueing — the
    /// paper's "one hop delay") and buffer 400 KB; 1 Gbps ports mark at
    /// 30 KB (the paper's testbed setting) and buffer 200 KB.
    fn default() -> QueueCfg {
        QueueCfg {
            ecn_per_gbps: 10_000.0,
            ecn_floor: 30_000,
            buf_per_gbps: 40_000.0,
            buf_floor: 200_000,
        }
    }
}

impl QueueCfg {
    /// ECN marking threshold for a port of the given rate.
    pub fn ecn_threshold(&self, rate_bps: u64) -> u64 {
        let scaled = (self.ecn_per_gbps * rate_bps as f64 / 1e9) as u64;
        scaled.max(self.ecn_floor)
    }

    /// Tail-drop buffer limit for a port of the given rate.
    pub fn buffer(&self, rate_bps: u64) -> u64 {
        let scaled = (self.buf_per_gbps * rate_bps as f64 / 1e9) as u64;
        scaled.max(self.buf_floor)
    }
}

/// A two-tier leaf-spine fabric.
///
/// `up[leaf][spine]` is the (bidirectional) link between a leaf and a
/// spine; `None` models a cut link. Host links are uniform per fabric.
#[derive(Clone, Debug)]
pub struct Topology {
    pub n_leaves: usize,
    pub n_spines: usize,
    pub hosts_per_leaf: usize,
    pub host_link: LinkCfg,
    pub up: Vec<Vec<Option<LinkCfg>>>,
    pub queue: QueueCfg,
}

impl Topology {
    /// A fully symmetric leaf-spine fabric.
    pub fn leaf_spine(
        n_leaves: usize,
        n_spines: usize,
        hosts_per_leaf: usize,
        host_link: LinkCfg,
        fabric_link: LinkCfg,
    ) -> Topology {
        assert!(n_leaves >= 1 && n_spines >= 1 && hosts_per_leaf >= 1);
        assert!(n_leaves <= u16::MAX as usize && n_spines < (u16::MAX - 1) as usize);
        Topology {
            n_leaves,
            n_spines,
            hosts_per_leaf,
            host_link,
            up: vec![vec![Some(fabric_link); n_spines]; n_leaves],
            queue: QueueCfg::default(),
        }
    }

    /// The paper's large-simulation baseline (§5.3.1): 8×8 leaf-spine,
    /// 128 hosts, 10 Gbps links, 2:1 oversubscription at the leaf.
    ///
    /// Propagation delays are chosen so the empty-fabric RTT is ≈60 µs,
    /// matching the parameter regime of §3.3 (T_RTT_high = 180 µs =
    /// base RTT + 1.5 × 80 µs one-hop delay).
    pub fn sim_baseline() -> Topology {
        Topology::leaf_spine(
            8,
            8,
            16,
            LinkCfg::new(10_000_000_000, Time::from_us(5)),
            LinkCfg::new(10_000_000_000, Time::from_us(10)),
        )
    }

    /// The paper's testbed (§5.2, Fig. 8a): 12 servers in 2 racks,
    /// 1 Gbps links, 3:2 oversubscription at the leaf — 6 Gbps of host
    /// capacity against 4 Gbps of uplink per leaf. The testbed's 2 spine
    /// boxes with 2 parallel links each are modelled as 4 virtual
    /// single-link spines (path-equivalent in a 2-tier Clos); cutting
    /// one (Fig. 8b) leaves 75% of the bisection, matching §5.2.
    pub fn testbed() -> Topology {
        Topology::leaf_spine(
            2,
            4,
            6,
            LinkCfg::new(1_000_000_000, Time::from_us(3)),
            LinkCfg::new(1_000_000_000, Time::from_us(3)),
        )
    }

    /// Cut the link between `leaf` and `spine` (topology asymmetry via
    /// link failure, as in Fig. 8b).
    pub fn cut_link(&mut self, leaf: LeafId, spine: SpineId) {
        self.up[leaf.0 as usize][spine.0 as usize] = None;
    }

    /// Reduce the capacity of one leaf-spine link (device heterogeneity).
    pub fn degrade_link(&mut self, leaf: LeafId, spine: SpineId, rate_bps: u64) {
        let l = &mut self.up[leaf.0 as usize][spine.0 as usize];
        match l {
            Some(cfg) => cfg.rate_bps = rate_bps,
            None => panic!("degrading a cut link"),
        }
    }

    /// The paper's asymmetric scenario (§5.3.2): degrade a random
    /// `fraction` of leaf-spine links to `rate_bps`, chosen with `rng`.
    pub fn degrade_random_links(&mut self, fraction: f64, rate_bps: u64, rng: &mut SimRng) {
        let total = self.n_leaves * self.n_spines;
        let k = ((total as f64) * fraction).round() as usize;
        for idx in rng.sample_distinct(total, k) {
            let (l, s) = (idx / self.n_spines, idx % self.n_spines);
            if let Some(cfg) = &mut self.up[l][s] {
                cfg.rate_bps = rate_bps;
            }
        }
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_leaves * self.hosts_per_leaf
    }

    /// The leaf a host hangs off.
    #[inline]
    pub fn host_leaf(&self, h: HostId) -> LeafId {
        debug_assert!((h.0 as usize) < self.n_hosts());
        LeafId((h.0 as usize / self.hosts_per_leaf) as u16)
    }

    /// Position of a host under its leaf (down-port index).
    #[inline]
    pub fn host_slot(&self, h: HostId) -> usize {
        h.0 as usize % self.hosts_per_leaf
    }

    /// Hosts under a leaf.
    pub fn leaf_hosts(&self, l: LeafId) -> impl Iterator<Item = HostId> {
        let base = l.0 as usize * self.hosts_per_leaf;
        (base..base + self.hosts_per_leaf).map(|i| HostId(i as u32))
    }

    /// The first host under a leaf (used as the rack's probe agent).
    pub fn leaf_agent(&self, l: LeafId) -> HostId {
        HostId((l.0 as usize * self.hosts_per_leaf) as u32)
    }

    /// Live paths between two distinct leaves: every spine whose links to
    /// both leaves are up.
    pub fn path_candidates(&self, a: LeafId, b: LeafId) -> Vec<PathId> {
        assert_ne!(a, b, "no spine path within a rack");
        (0..self.n_spines)
            .filter(|&s| self.up[a.0 as usize][s].is_some() && self.up[b.0 as usize][s].is_some())
            .map(|s| PathId(s as u16))
            .collect()
    }

    /// The empty-fabric round-trip time for a full-MSS data packet and
    /// its ACK across the *fastest* live spine path between two leaves:
    /// store-and-forward serialization at every hop plus propagation,
    /// both directions. This is the paper's "base RTT".
    pub fn base_rtt(&self) -> Time {
        let mut best: Option<Time> = None;
        for l in 0..self.n_leaves {
            for m in 0..self.n_leaves {
                if l == m {
                    continue;
                }
                for s in 0..self.n_spines {
                    if let (Some(u), Some(d)) = (self.up[l][s], self.up[m][s]) {
                        let rtt = self.rtt_via(u, d);
                        best = Some(best.map_or(rtt, |b: Time| b.min(rtt)));
                    }
                }
            }
        }
        best.unwrap_or_else(|| {
            // Single-rack fabric: host → leaf → host.
            let h = self.host_link;
            let data = (Time::tx_time((MSS + HDR) as u64, h.rate_bps) + h.delay) * 2;
            let ack = (Time::tx_time(ACK_SIZE as u64, h.rate_bps) + h.delay) * 2;
            data + ack
        })
    }

    fn rtt_via(&self, up: LinkCfg, down: LinkCfg) -> Time {
        let h = self.host_link;
        let data_hops = [h, up, down, h];
        let mut t = Time::ZERO;
        for l in data_hops {
            t += Time::tx_time((MSS + HDR) as u64, l.rate_bps) + l.delay;
        }
        for l in data_hops {
            t += Time::tx_time(ACK_SIZE as u64, l.rate_bps) + l.delay;
        }
        t
    }

    /// The paper's "one hop delay": the queueing delay a fully loaded hop
    /// sustains under DCTCP, i.e. ECN marking threshold / line rate, for
    /// the fastest fabric link.
    pub fn one_hop_delay(&self) -> Time {
        let rate = self
            .up
            .iter()
            .flatten()
            .flatten()
            .map(|l| l.rate_bps)
            .max()
            .unwrap_or(self.host_link.rate_bps);
        let k = self.queue.ecn_threshold(rate);
        Time::tx_time(k, rate)
    }

    /// Aggregate capacity of all live leaf uplinks (the fabric's
    /// bisection-ish capacity against which offered load is defined).
    pub fn total_uplink_bps(&self) -> u64 {
        self.up.iter().flatten().flatten().map(|l| l.rate_bps).sum()
    }

    /// Sanity-check invariants; panics on inconsistency. Called by the
    /// fabric constructor.
    pub fn validate(&self) {
        assert_eq!(self.up.len(), self.n_leaves);
        for row in &self.up {
            assert_eq!(row.len(), self.n_spines);
        }
        assert!(self.host_link.rate_bps > 0);
        for l in self.up.iter().flatten().flatten() {
            assert!(l.rate_bps > 0, "zero-rate fabric link");
        }
        // Every leaf must keep at least one live uplink if there are >1 leaves.
        if self.n_leaves > 1 {
            for (i, row) in self.up.iter().enumerate() {
                assert!(
                    row.iter().any(Option::is_some),
                    "leaf {i} has no live uplinks"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shape() {
        let t = Topology::sim_baseline();
        assert_eq!(t.n_hosts(), 128);
        assert_eq!(t.path_candidates(LeafId(0), LeafId(1)).len(), 8);
        t.validate();
        // 2:1 oversubscription: 16×10G down vs 8×10G up per leaf.
        assert_eq!(t.total_uplink_bps(), 8 * 8 * 10_000_000_000);
    }

    #[test]
    fn testbed_shape() {
        let t = Topology::testbed();
        assert_eq!(t.n_hosts(), 12);
        assert_eq!(t.path_candidates(LeafId(0), LeafId(1)).len(), 4);
        t.validate();
    }

    #[test]
    fn host_indexing() {
        let t = Topology::sim_baseline();
        assert_eq!(t.host_leaf(HostId(0)), LeafId(0));
        assert_eq!(t.host_leaf(HostId(15)), LeafId(0));
        assert_eq!(t.host_leaf(HostId(16)), LeafId(1));
        assert_eq!(t.host_slot(HostId(17)), 1);
        assert_eq!(t.leaf_agent(LeafId(3)), HostId(48));
        let hosts: Vec<_> = t.leaf_hosts(LeafId(1)).collect();
        assert_eq!(hosts.len(), 16);
        assert_eq!(hosts[0], HostId(16));
    }

    #[test]
    fn cut_link_removes_candidate() {
        let mut t = Topology::testbed();
        t.cut_link(LeafId(0), SpineId(3));
        let c = t.path_candidates(LeafId(0), LeafId(1));
        assert_eq!(c, vec![PathId(0), PathId(1), PathId(2)]);
        // The other leaf pair direction is equally affected.
        assert_eq!(
            t.path_candidates(LeafId(1), LeafId(0)),
            vec![PathId(0), PathId(1), PathId(2)]
        );
    }

    #[test]
    fn degrade_random_links_hits_fraction() {
        let mut t = Topology::sim_baseline();
        let mut rng = SimRng::new(1);
        t.degrade_random_links(0.2, 2_000_000_000, &mut rng);
        let degraded =
            t.up.iter()
                .flatten()
                .flatten()
                .filter(|l| l.rate_bps == 2_000_000_000)
                .count();
        assert_eq!(degraded, (64.0_f64 * 0.2).round() as usize);
        t.validate();
    }

    #[test]
    fn queue_cfg_scales_with_rate() {
        let q = QueueCfg::default();
        assert_eq!(q.ecn_threshold(10_000_000_000), 100_000);
        assert_eq!(q.ecn_threshold(1_000_000_000), 30_000); // floor
        assert!(q.buffer(10_000_000_000) > q.ecn_threshold(10_000_000_000));
    }

    #[test]
    fn base_rtt_in_expected_regime() {
        // Sim baseline: ≈ 60 µs empty-fabric RTT (paper §3.3 regime).
        let rtt = Topology::sim_baseline().base_rtt();
        assert!(
            rtt > Time::from_us(50) && rtt < Time::from_us(80),
            "base rtt {rtt}"
        );
        // One-hop delay ≈ 80 µs (100 KB at 10 Gbps).
        let hop = Topology::sim_baseline().one_hop_delay();
        assert_eq!(hop, Time::from_us(80));
    }

    #[test]
    fn base_rtt_uses_fastest_path() {
        let mut t = Topology::testbed();
        let before = t.base_rtt();
        // Degrading one link must not change the *fastest* path RTT.
        t.degrade_link(LeafId(0), SpineId(0), 100_000_000);
        assert_eq!(t.base_rtt(), before);
    }

    #[test]
    #[should_panic]
    fn no_intra_rack_spine_paths() {
        let t = Topology::testbed();
        let _ = t.path_candidates(LeafId(0), LeafId(0));
    }
}
