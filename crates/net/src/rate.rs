//! DRE — the Discounting Rate Estimator from CONGA (§3.2 of the Hermes
//! paper uses it to measure a flow's sending rate `r_f`; CONGA uses it
//! per switch link; Hermes also aggregates it per path as `r_p`).
//!
//! The hardware DRE keeps a byte counter `X` that is incremented on every
//! transmission and multiplied by `(1 − α)` every `T_dre`; the rate
//! estimate is `X / τ` with `τ = T_dre / α`. This implementation is the
//! event-driven continuous-time limit: `X` decays by `exp(−Δt/τ)` lazily
//! on every access, which avoids periodic timer events entirely and
//! converges to the same steady state (`X = R·τ` under rate `R`).

use hermes_sim::Time;

/// Event-driven discounting rate estimator.
#[derive(Clone, Copy, Debug)]
pub struct Dre {
    /// Discounted byte counter.
    x: f64,
    /// Time of last update.
    last: Time,
    /// Discounting horizon τ.
    tau: Time,
}

impl Dre {
    /// CONGA's effective horizon (T_dre = 20 µs, α = 0.1 ⇒ τ = 200 µs).
    pub const DEFAULT_TAU: Time = Time::from_us(200);

    pub fn new(tau: Time) -> Dre {
        assert!(tau > Time::ZERO);
        Dre {
            x: 0.0,
            last: Time::ZERO,
            tau,
        }
    }

    /// A DRE with the CONGA-default 200 µs horizon.
    pub fn default_horizon() -> Dre {
        Dre::new(Dre::DEFAULT_TAU)
    }

    fn decay_to(&mut self, now: Time) {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.x *= (-dt / self.tau.as_secs_f64()).exp();
            self.last = now;
        }
    }

    /// Record `bytes` transmitted at `now`.
    pub fn add(&mut self, bytes: u64, now: Time) {
        self.decay_to(now);
        self.x += bytes as f64;
    }

    /// Current rate estimate in bits per second.
    pub fn rate_bps(&mut self, now: Time) -> f64 {
        self.decay_to(now);
        self.x * 8.0 / self.tau.as_secs_f64()
    }

    /// Current rate as a fraction of `link_bps`, clamped to `[0, 1]`
    /// (CONGA's congestion metric).
    pub fn utilization(&mut self, link_bps: u64, now: Time) -> f64 {
        (self.rate_bps(now) / link_bps as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_offered_rate() {
        let mut d = Dre::default_horizon();
        // 1 Gbps = 125 bytes/us: send 1500B every 12us for 5 ms.
        let mut t = Time::ZERO;
        for _ in 0..400 {
            d.add(1500, t);
            t += Time::from_us(12);
        }
        let r = d.rate_bps(t);
        assert!(
            (r - 1e9).abs() < 0.1e9,
            "estimated {r:.3e} bps, expected ~1e9"
        );
    }

    #[test]
    fn decays_when_idle() {
        let mut d = Dre::default_horizon();
        d.add(100_000, Time::ZERO);
        let r0 = d.rate_bps(Time::ZERO);
        let r1 = d.rate_bps(Time::from_us(200));
        let r2 = d.rate_bps(Time::from_ms(2));
        assert!(r1 < r0 * 0.4 && r1 > r0 * 0.3, "one τ ≈ e⁻¹ decay");
        assert!(r2 < r0 * 1e-4, "ten τ ≈ vanished");
    }

    #[test]
    fn utilization_clamps() {
        let mut d = Dre::default_horizon();
        for _ in 0..100 {
            d.add(100_000, Time::from_us(1));
        }
        assert_eq!(d.utilization(1_000, Time::from_us(1)), 1.0);
        let mut idle = Dre::default_horizon();
        assert_eq!(idle.utilization(1_000_000_000, Time::from_ms(1)), 0.0);
    }

    #[test]
    fn monotone_time_only() {
        // Accessing with an older timestamp must not panic or decay.
        let mut d = Dre::default_horizon();
        d.add(1000, Time::from_us(10));
        let r_now = d.rate_bps(Time::from_us(10));
        let r_past = d.rate_bps(Time::from_us(5));
        assert_eq!(r_now, r_past);
    }
}
