//! Load-balancer hook traits.
//!
//! Two families of scheme plug into the fabric:
//!
//! * **Edge-based** ([`EdgeLb`]) — run at the sending host/hypervisor
//!   (ECMP, Presto*, CLOVE-ECN, FlowBender, **Hermes**). They pick the
//!   explicit path stamped on every outgoing data packet and observe
//!   transport-level signals (ACK ECN/RTT, retransmissions, timeouts).
//! * **Fabric-based** ([`FabricLb`]) — run inside switches (CONGA,
//!   LetFlow, DRILL). They pick the uplink at the source leaf and may
//!   read/write in-band metadata at every hop.
//!
//! The runtime drives exactly one of the two per experiment.

use hermes_sim::{SimRng, Time};

use crate::packet::Packet;
use crate::types::{FlowId, HostId, LeafId, PathId};

/// A snapshot of sender-side flow state handed to [`EdgeLb`] hooks.
///
/// This is the "flow status" half of Hermes' cautious-rerouting inputs
/// (Table 3): size sent `s_sent`, sending rate `r_f`, and whether the
/// flow just experienced a timeout.
#[derive(Clone, Copy, Debug)]
pub struct FlowCtx {
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub src_leaf: LeafId,
    pub dst_leaf: LeafId,
    /// Bytes of payload handed to the fabric so far (including
    /// retransmissions) — the paper's `s_sent`.
    pub bytes_sent: u64,
    /// DRE-estimated current sending rate in bits/s — the paper's `r_f`.
    // ANALYZER: allow(float-determinism, carries rate.rs's allowlisted DRE estimate across the LB API unmodified)
    pub rate_bps: f64,
    /// Path the flow most recently used ([`PathId::UNSET`] for new flows).
    pub current_path: PathId,
    /// True until the first data packet is stamped.
    pub is_new: bool,
    /// True if the flow has experienced an RTO that has not yet been
    /// answered by a rerouting decision (Algorithm 2's `f.if_timeout`).
    pub timed_out: bool,
    /// Time since the flow last changed paths (`Time::MAX` if never) —
    /// lets schemes damp reroute flip-flopping.
    pub since_change: Time,
}

/// A probe the scheme wants sent this tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeTarget {
    pub dst_leaf: LeafId,
    pub path: PathId,
}

/// An edge-based (end-host) load balancer.
///
/// One instance exists per host; instances may share rack-level state
/// internally (Hermes' probe agents do).
pub trait EdgeLb {
    /// Pick the path for the next outgoing data packet of `flow`.
    ///
    /// Called for *every* data packet, so per-flow/per-flowlet schemes
    /// must memoize internally. `candidates` is the set of live spine
    /// paths to `ctx.dst_leaf`, never empty.
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        now: Time,
        rng: &mut SimRng,
    ) -> PathId;

    /// An ACK arrived for `ctx.flow`. `path` is the path of the data
    /// packet the ACK echoes; `rtt` is present for ACKs of
    /// non-retransmitted segments; `ecn` is the CE echo;
    /// `bytes_acked` is how much new data this ACK cumulatively covers.
    fn on_ack(
        &mut self,
        ctx: &FlowCtx,
        path: PathId,
        rtt: Option<Time>,
        ecn: bool,
        bytes_acked: u64,
        now: Time,
    ) {
        let _ = (ctx, path, rtt, ecn, bytes_acked, now);
    }

    /// The flow's retransmission timer fired while on `path`.
    fn on_timeout(&mut self, ctx: &FlowCtx, path: PathId, now: Time) {
        let _ = (ctx, path, now);
    }

    /// A segment was retransmitted (fast retransmit or RTO) on `path`.
    fn on_retransmit(&mut self, ctx: &FlowCtx, path: PathId, now: Time) {
        let _ = (ctx, path, now);
    }

    /// `bytes` of data were handed to the fabric on `path`.
    fn on_data_sent(&mut self, ctx: &FlowCtx, path: PathId, bytes: u64, now: Time) {
        let _ = (ctx, path, bytes, now);
    }

    /// The flow delivered its last byte.
    fn on_flow_finished(&mut self, ctx: &FlowCtx, now: Time) {
        let _ = (ctx, now);
    }

    /// Active-probing plan for this probe tick (empty = scheme does not
    /// probe). Only called on hosts designated as probe agents.
    fn probe_plan(&mut self, now: Time, rng: &mut SimRng) -> Vec<ProbeTarget> {
        let _ = (now, rng);
        Vec::new()
    }

    /// A probe response came back: round-trip `rtt` on `path` toward
    /// `dst_leaf`, with `ecn` = whether the request was CE-marked.
    fn on_probe_result(&mut self, dst_leaf: LeafId, path: PathId, rtt: Time, ecn: bool, now: Time) {
        let _ = (dst_leaf, path, rtt, ecn, now);
    }

    /// A probe sent toward `dst_leaf` on `path` got no response within
    /// the runtime's probe timeout — negative evidence about the path
    /// (it may still be blackholed), used to keep suspected-failed paths
    /// out of probation.
    fn on_probe_timeout(&mut self, dst_leaf: LeafId, path: PathId, now: Time) {
        let _ = (dst_leaf, path, now);
    }
}

/// Which link a packet is being forwarded onto (for [`FabricLb::on_forward`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkRef {
    /// Leaf → spine.
    Up { leaf: LeafId, spine: u16 },
    /// Spine → leaf.
    Down { spine: u16, leaf: LeafId },
    /// Leaf → host (last hop).
    HostDown { leaf: LeafId },
}

/// The candidate uplinks at a source leaf, paired with their current
/// queue occupancies: `qbytes[i]` is the queued byte count of the
/// uplink toward `paths[i]` (for DRILL-style local decisions).
#[derive(Clone, Copy, Debug)]
pub struct Uplinks<'a> {
    pub paths: &'a [PathId],
    pub qbytes: &'a [u64],
}

/// A switch-resident load balancer (one object holds the state of every
/// switch — the simulator is single-threaded, so "distributed" state is
/// simply indexed by switch id).
pub trait FabricLb {
    /// At the source leaf: choose the uplink for an inter-rack packet
    /// from the live candidates in `uplinks`.
    fn ingress_select(
        &mut self,
        leaf: LeafId,
        dst_leaf: LeafId,
        pkt: &Packet,
        uplinks: Uplinks<'_>,
        now: Time,
        rng: &mut SimRng,
    ) -> PathId;

    /// A packet is about to be enqueued on `link` — update in-band
    /// metadata (CONGA's CE field) and link-rate estimators.
    fn on_forward(&mut self, link: LinkRef, pkt: &mut Packet, now: Time) {
        let _ = (link, pkt, now);
    }

    /// An inter-rack packet reached its destination leaf — harvest
    /// metadata and stamp piggybacked feedback.
    fn on_dst_leaf(&mut self, leaf: LeafId, pkt: &mut Packet, now: Time) {
        let _ = (leaf, pkt, now);
    }
}

/// The trivial edge scheme: stick to the first candidate. Useful in
/// tests and as a base case.
#[derive(Default)]
pub struct PinnedPath;

impl EdgeLb for PinnedPath {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        _now: Time,
        _rng: &mut SimRng,
    ) -> PathId {
        if ctx.current_path.is_spine() && candidates.contains(&ctx.current_path) {
            ctx.current_path
        } else {
            candidates[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(current: PathId, is_new: bool) -> FlowCtx {
        FlowCtx {
            flow: FlowId(1),
            src: HostId(0),
            dst: HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: current,
            is_new,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    #[test]
    fn pinned_path_sticks() {
        let mut lb = PinnedPath;
        let mut rng = SimRng::new(0);
        let cands = [PathId(0), PathId(1), PathId(2)];
        let first = lb.select_path(&ctx(PathId::UNSET, true), &cands, Time::ZERO, &mut rng);
        assert_eq!(first, PathId(0));
        let again = lb.select_path(&ctx(PathId(2), false), &cands, Time::ZERO, &mut rng);
        assert_eq!(again, PathId(2));
        // Current path no longer a candidate → falls back to first.
        let moved = lb.select_path(&ctx(PathId(7), false), &cands, Time::ZERO, &mut rng);
        assert_eq!(moved, PathId(0));
    }
}
