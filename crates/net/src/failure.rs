//! Switch failure injection: silent random packet drops and packet
//! blackholes (§2.1, evaluated in §5.3.3).
//!
//! Both failure modes reproduce the Microsoft production study the paper
//! cites (Guo et al., Pingmesh): a malfunctioning switch either drops a
//! high fraction of all traversing packets silently, or deterministically
//! drops every packet matching certain source–destination "patterns".

use crate::types::{FlowId, HostId, LeafId};

/// Deterministic blackhole: the switch drops 100% of packets whose
/// (source, destination) hosts fall in the configured rack pair *and*
/// whose pair-hash lands below `pair_fraction`.
///
/// With `pair_fraction = 0.5` this is the paper's Fig. 17 scenario:
/// "drop packets for half of the source-destination IP pairs from
/// Rack 1 to Rack 8 deterministically".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Blackhole {
    pub src_leaf: LeafId,
    pub dst_leaf: LeafId,
    /// Fraction of host pairs affected, in `[0, 1]`.
    pub pair_fraction: f64,
}

impl Blackhole {
    /// Whether a packet from `src` to `dst` (hosts) matches the hole.
    ///
    /// The match is deterministic in (src, dst): the same pair is either
    /// always dropped or never — exactly the failure signature Hermes'
    /// 3-timeouts-and-nothing-ACKed detector keys on.
    pub fn matches(&self, src: HostId, dst: HostId, src_leaf: LeafId, dst_leaf: LeafId) -> bool {
        if src_leaf != self.src_leaf || dst_leaf != self.dst_leaf {
            return false;
        }
        pair_unit(src, dst) < self.pair_fraction
    }
}

/// Hash a host pair to a deterministic point in `[0, 1)`.
///
/// Public so property tests can pin the codomain: `matches` compares
/// this value against `pair_fraction`, so the whole-fraction semantics
/// ("1.0 hits every pair, 0.0 hits none") rely on the range being
/// half-open.
pub fn pair_unit(src: HostId, dst: HostId) -> f64 {
    let mut z = ((src.0 as u64) << 32) | dst.0 as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Hash a flow id to a deterministic point in `[0, 1)` — the per-flow
/// analogue of [`pair_unit`], used by [`FlowBlackhole::matches`]. Same
/// half-open codomain, so `victim_fraction = 1.0` hits every flow and
/// `0.0` hits none.
pub fn flow_unit(flow: FlowId) -> f64 {
    let mut z = flow.0;
    z = z.wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Gray failure: the switch deterministically drops every packet of a
/// *victim subset of flows*, regardless of rack pair — the "pattern"
/// blackhole of the Microsoft study at flow granularity. Unlike
/// [`Blackhole`] this punishes rehashing schemes asymmetrically: a
/// victim flow is dead on this spine no matter which host pair it
/// joins, so only schemes that move the flow *off the spine* recover.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowBlackhole {
    /// Fraction of flows affected, in `[0, 1]`.
    pub victim_fraction: f64,
}

impl FlowBlackhole {
    /// Whether packets of `flow` are swallowed by this hole. The match
    /// is a pure function of the flow id: a victim flow is *always*
    /// dropped here, a non-victim never — the signature Hermes'
    /// 3-timeouts-and-nothing-ACKed detector keys on.
    pub fn matches(&self, flow: FlowId) -> bool {
        flow_unit(flow) < self.victim_fraction
    }
}

/// Failure state of one spine switch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpineFailure {
    /// Probability that any traversing packet is silently dropped.
    pub random_drop: f64,
    /// Optional deterministic blackhole.
    pub blackhole: Option<Blackhole>,
    /// Optional per-victim-flow partial blackhole.
    pub flow_blackhole: Option<FlowBlackhole>,
    /// ECN mute: the switch keeps forwarding but stops CE-marking, so
    /// congestion-sensing load balancers fly blind through it. Packets
    /// are *not* dropped; the failure is pure sensing deprivation.
    pub ecn_mute: bool,
}

impl SpineFailure {
    /// A healthy switch.
    pub fn healthy() -> SpineFailure {
        SpineFailure::default()
    }

    /// A switch silently dropping `rate` of packets (Fig. 16 uses 0.02).
    pub fn random_drops(rate: f64) -> SpineFailure {
        assert!((0.0..=1.0).contains(&rate));
        SpineFailure {
            random_drop: rate,
            ..SpineFailure::default()
        }
    }

    /// A switch blackholing `pair_fraction` of host pairs from
    /// `src_leaf` to `dst_leaf`.
    pub fn blackhole(src_leaf: LeafId, dst_leaf: LeafId, pair_fraction: f64) -> SpineFailure {
        assert!(
            (0.0..=1.0).contains(&pair_fraction),
            "pair_fraction must lie in [0, 1], got {pair_fraction}"
        );
        SpineFailure {
            blackhole: Some(Blackhole {
                src_leaf,
                dst_leaf,
                pair_fraction,
            }),
            ..SpineFailure::default()
        }
    }

    /// A switch blackholing `victim_fraction` of flows, everywhere.
    pub fn flow_blackhole(victim_fraction: f64) -> SpineFailure {
        assert!(
            (0.0..=1.0).contains(&victim_fraction),
            "victim_fraction must lie in [0, 1], got {victim_fraction}"
        );
        SpineFailure {
            flow_blackhole: Some(FlowBlackhole { victim_fraction }),
            ..SpineFailure::default()
        }
    }

    /// A switch that forwards normally but no longer CE-marks.
    pub fn ecn_muted() -> SpineFailure {
        SpineFailure {
            ecn_mute: true,
            ..SpineFailure::default()
        }
    }

    /// Merge a flow-blackhole setting into this state, leaving every
    /// other failure mode untouched; a fraction of 0 clears the hole
    /// (nothing can hash strictly below 0, and normalizing to `None`
    /// keeps [`SpineFailure::is_failed`] honest).
    pub fn with_flow_blackhole(mut self, victim_fraction: f64) -> SpineFailure {
        self.flow_blackhole = if victim_fraction > 0.0 {
            Some(FlowBlackhole { victim_fraction })
        } else {
            None
        };
        self
    }

    /// Merge an ECN-mute setting into this state, leaving every other
    /// failure mode untouched.
    pub fn with_ecn_mute(mut self, mute: bool) -> SpineFailure {
        self.ecn_mute = mute;
        self
    }

    /// Whether this switch has any failure configured.
    pub fn is_failed(&self) -> bool {
        self.random_drop > 0.0
            || self.blackhole.is_some()
            || self.flow_blackhole.is_some()
            || self.ecn_mute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackhole_is_deterministic_per_pair() {
        let b = Blackhole {
            src_leaf: LeafId(0),
            dst_leaf: LeafId(7),
            pair_fraction: 0.5,
        };
        for s in 0..16u32 {
            for d in 112..128u32 {
                let m1 = b.matches(HostId(s), HostId(d), LeafId(0), LeafId(7));
                let m2 = b.matches(HostId(s), HostId(d), LeafId(0), LeafId(7));
                assert_eq!(m1, m2);
            }
        }
    }

    #[test]
    fn blackhole_hits_roughly_the_fraction() {
        let b = Blackhole {
            src_leaf: LeafId(0),
            dst_leaf: LeafId(7),
            pair_fraction: 0.5,
        };
        let mut hits = 0;
        let total = 16 * 16;
        for s in 0..16u32 {
            for d in 112..128u32 {
                if b.matches(HostId(s), HostId(d), LeafId(0), LeafId(7)) {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.15, "hit fraction {frac}");
    }

    #[test]
    fn blackhole_is_directional_and_rack_scoped() {
        let b = Blackhole {
            src_leaf: LeafId(0),
            dst_leaf: LeafId(7),
            pair_fraction: 1.0,
        };
        // Matching rack pair: dropped.
        assert!(b.matches(HostId(0), HostId(112), LeafId(0), LeafId(7)));
        // Reverse direction: not matched (ACKs survive).
        assert!(!b.matches(HostId(112), HostId(0), LeafId(7), LeafId(0)));
        // Other racks: not matched.
        assert!(!b.matches(HostId(16), HostId(112), LeafId(1), LeafId(7)));
    }

    #[test]
    fn failure_constructors() {
        assert!(!SpineFailure::healthy().is_failed());
        assert!(SpineFailure::random_drops(0.02).is_failed());
        assert!(SpineFailure::blackhole(LeafId(0), LeafId(1), 0.5).is_failed());
        assert!(SpineFailure::flow_blackhole(0.3).is_failed());
        assert!(SpineFailure::ecn_muted().is_failed());
    }

    #[test]
    fn flow_blackhole_is_deterministic_and_fraction_bounded() {
        let fb = FlowBlackhole {
            victim_fraction: 0.5,
        };
        let mut hits = 0;
        for id in 0..512u64 {
            let m1 = fb.matches(FlowId(id));
            assert_eq!(m1, fb.matches(FlowId(id)), "same flow, same verdict");
            hits += usize::from(m1);
        }
        let frac = hits as f64 / 512.0;
        assert!((frac - 0.5).abs() < 0.1, "hit fraction {frac}");
        // The codomain is half-open: 1.0 hits everything, 0.0 nothing.
        let all = FlowBlackhole {
            victim_fraction: 1.0,
        };
        let none = FlowBlackhole {
            victim_fraction: 0.0,
        };
        for id in 0..64u64 {
            assert!(all.matches(FlowId(id)));
            assert!(!none.matches(FlowId(id)));
        }
    }

    #[test]
    #[should_panic]
    fn flow_blackhole_fraction_validated() {
        SpineFailure::flow_blackhole(1.5);
    }

    #[test]
    #[should_panic]
    fn random_drop_rate_validated() {
        SpineFailure::random_drops(1.5);
    }

    #[test]
    #[should_panic]
    fn blackhole_fraction_validated_above() {
        SpineFailure::blackhole(LeafId(0), LeafId(1), 1.5);
    }

    #[test]
    #[should_panic]
    fn blackhole_fraction_validated_below() {
        SpineFailure::blackhole(LeafId(0), LeafId(1), -0.1);
    }
}
