//! Fabric sharding: event→shard routing for the runtime's deterministic
//! merge engine, and a conservative window-barrier drain engine that
//! runs genuinely parallel across leaf/spine shards (DESIGN.md §17).
//!
//! Two layers share the same lookahead rule but make different
//! trade-offs:
//!
//! * [`ShardMap`] routes every [`Event`] to a shard (shard 0 owns the
//!   global timer wheel and all spines; shard `1 + l` owns leaf `l`,
//!   its ports, and its member hosts' NICs and timers). The runtime's
//!   `ShardedQueue` merge preserves the exact single-queue total order,
//!   so *every* digest and golden stays byte-identical at any thread
//!   count.
//! * [`DrainCfg::run_parallel`] is the fabric-only parallel point: each
//!   leaf and spine shard drains its own wheel inside a conservative
//!   window bounded by `min(next event) + link delay`, hands packets
//!   across shards through per-shard inboxes, and re-synchronizes at
//!   two barriers per round. Handoffs are sorted by
//!   `(time, src shard, src seq)` before insertion, so the per-shard
//!   event sequences — and therefore the combined digest — are
//!   identical whether the rounds run on one thread or many.
//!
//! Safety argument for the window protocol: every event processed in a
//! round satisfies `t < horizon = global_min + L` where `L` is the
//! cross-shard link delay. Any cross-shard arrival it generates lands
//! at `t_tx + L ≥ global_min + L = horizon`, i.e. never inside the
//! window being drained — so shards cannot miss each other's traffic
//! no matter how the threads interleave.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use hermes_sim::{ShardStats, Time, WheelQueue};

use crate::audit::FnvDigest;
use crate::fabric::Event;
use crate::topology::{LinkCfg, Topology};
use crate::types::NodeId;

/// Routes runtime events to merge shards.
///
/// Shard 0 is the *hub*: global timers (flow arrivals, probe ticks,
/// fault actions) plus every spine. Shards `1..=n_leaves` each own one
/// leaf — its switch ports, its hosts' NICs, and those hosts' timers.
/// All traffic between leaves crosses the hub, so the minimum fabric
/// link delay bounds every cross-shard interaction and serves as the
/// conservative lookahead.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    n_leaves: usize,
    hosts_per_leaf: u32,
    lookahead: Time,
}

impl ShardMap {
    /// Build the routing map for a topology. The lookahead is the
    /// minimum leaf↔spine propagation delay (falling back to the host
    /// link for degenerate fabrics with every uplink cut).
    pub fn new(topo: &Topology) -> ShardMap {
        let lookahead = topo
            .up
            .iter()
            .flatten()
            .flatten()
            .map(|l| l.delay)
            .min()
            .unwrap_or(topo.host_link.delay);
        ShardMap {
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf as u32,
            lookahead,
        }
    }

    /// Shard count: the hub plus one shard per leaf.
    pub fn n_shards(&self) -> usize {
        1 + self.n_leaves
    }

    /// The conservative cross-shard lookahead bound.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// The merge shard that owns `ev`.
    pub fn shard_of(&self, ev: &Event) -> usize {
        match ev {
            Event::Global { .. } => 0,
            Event::HostTimer { host, .. } => 1 + (host.0 / self.hosts_per_leaf) as usize,
            Event::TxDone { node, .. } | Event::Arrive { node, .. } => match node {
                NodeId::Spine(_) => 0,
                NodeId::Leaf(l) => 1 + l.0 as usize,
                NodeId::Host(h) => 1 + (h.0 / self.hosts_per_leaf) as usize,
            },
        }
    }
}

/// A packet in the drain engine: fixed-size, spine picked at injection
/// (per-packet spraying), one up hop and one down hop.
#[derive(Clone, Copy, Debug)]
struct DrainPkt {
    id: u64,
    dst_leaf: u16,
    spine: u16,
    going_up: bool,
}

/// A drain shard's event: a packet arriving at this node, or one of
/// this node's ports finishing serialization.
#[derive(Debug)]
enum DrainEv {
    Arrive(DrainPkt),
    TxDone { port: usize },
}

/// A minimal FIFO output port: one queue, one wire slot. The full
/// [`crate::Port`] carries priority queues, ECN and drop accounting the
/// drain benchmark doesn't exercise.
#[derive(Default)]
struct LitePort {
    q: VecDeque<DrainPkt>,
    in_flight: Option<DrainPkt>,
}

/// One cross-shard packet handoff. Sorted by `(at, src_shard, src_seq)`
/// before insertion — a total order (the per-source sequence is unique),
/// so inbox arrival order never leaks into the event order.
struct Handoff {
    at: Time,
    src_shard: usize,
    src_seq: u64,
    dst_shard: usize,
    pkt: DrainPkt,
}

/// One drain shard: a leaf (`idx < n_leaves`, ports point up to each
/// spine) or a spine (ports point down to each leaf).
struct DrainShard {
    idx: usize,
    q: WheelQueue<DrainEv>,
    ports: Vec<LitePort>,
    /// Per-shard handoff sequence, part of the handoff sort key.
    seq: u64,
    digest: FnvDigest,
    stats: ShardStats,
    delivered: u64,
}

/// Configuration for a drain run.
#[derive(Clone, Copy, Debug)]
pub struct DrainCfg {
    pub n_leaves: usize,
    pub n_spines: usize,
    pub hosts_per_leaf: usize,
    /// Fabric link; its propagation delay is the lookahead.
    pub link: LinkCfg,
    /// Packets each host injects at its leaf.
    pub pkts_per_host: u32,
    pub pkt_size: u32,
    pub seed: u64,
}

/// Outcome of a drain run: aggregate counters plus the order-sensitive
/// digest (per-shard digests folded in shard index order).
#[derive(Clone, Debug)]
pub struct DrainResult {
    pub digest: u64,
    pub events: u64,
    pub injected: u64,
    pub delivered: u64,
    pub handoffs: u64,
    pub rounds: u64,
    pub shards: Vec<ShardStats>,
}

impl DrainCfg {
    /// The Fig. 12-shaped parallel point: the sim baseline's 8×8 fabric
    /// and 128 hosts, spraying fixed-size packets across all spines.
    pub fn fig12(quick: bool) -> DrainCfg {
        DrainCfg {
            n_leaves: 8,
            n_spines: 8,
            hosts_per_leaf: 16,
            link: LinkCfg::new(10_000_000_000, Time::from_us(10)),
            pkts_per_host: if quick { 40 } else { 400 },
            pkt_size: 1500,
            seed: 12,
        }
    }

    fn n_shards(&self) -> usize {
        self.n_leaves + self.n_spines
    }

    fn injected(&self) -> u64 {
        (self.n_leaves * self.hosts_per_leaf) as u64 * u64::from(self.pkts_per_host)
    }

    /// Build all shards with their injection schedules pre-loaded.
    /// Injection is derived from a per-shard LCG stream, so it is
    /// identical for every thread count by construction.
    fn build(&self) -> Vec<DrainShard> {
        assert!(self.n_leaves >= 2, "packet spraying needs a second leaf");
        assert!(self.n_spines >= 1 && self.hosts_per_leaf >= 1);
        let spacing = Time::tx_time(u64::from(self.pkt_size), self.link.rate_bps)
            .as_ns()
            .max(1);
        let mut next_id = 0u64;
        (0..self.n_shards())
            .map(|idx| {
                let n_ports = if idx < self.n_leaves {
                    self.n_spines
                } else {
                    self.n_leaves
                };
                let mut shard = DrainShard {
                    idx,
                    q: WheelQueue::new(),
                    ports: (0..n_ports).map(|_| LitePort::default()).collect(),
                    seq: 0,
                    digest: FnvDigest::new(),
                    stats: ShardStats::default(),
                    delivered: 0,
                };
                if idx < self.n_leaves {
                    let mut lcg =
                        (self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                    let mut step = || {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        lcg >> 33
                    };
                    for _host in 0..self.hosts_per_leaf {
                        for k in 0..u64::from(self.pkts_per_host) {
                            let d = step() as usize % (self.n_leaves - 1);
                            let dst_leaf = if d >= idx { d + 1 } else { d } as u16;
                            let spine = (step() as usize % self.n_spines) as u16;
                            let at = Time::from_ns(k * spacing + step() % spacing);
                            shard.q.schedule(
                                at,
                                DrainEv::Arrive(DrainPkt {
                                    id: next_id,
                                    dst_leaf,
                                    spine,
                                    going_up: true,
                                }),
                            );
                            next_id += 1;
                        }
                    }
                }
                shard
            })
            .collect()
    }

    /// Drain the fabric on the calling thread, replaying the exact
    /// bulk-synchronous rounds of the parallel engine — the reference
    /// the parallel digest must match, and the serial leg of the
    /// speedup measurement.
    pub fn run_serial(&self) -> DrainResult {
        let mut shards = self.build();
        let lookahead = self.link.delay;
        let n = shards.len();
        let mut inboxes: Vec<Vec<Handoff>> = (0..n).map(|_| Vec::new()).collect();
        let mut out = Vec::new();
        let mut rounds = 0u64;
        while let Some(min) = shards.iter_mut().filter_map(|s| s.q.peek_time()).min() {
            let horizon = min + lookahead;
            rounds += 1;
            for s in &mut shards {
                s.process_window(horizon, self, &mut out);
            }
            for h in out.drain(..) {
                // invariant: dst_shard is a topology index produced by process_window
                inboxes[h.dst_shard].push(h);
            }
            for (s, inbox) in shards.iter_mut().zip(inboxes.iter_mut()) {
                s.absorb(inbox);
            }
        }
        finish(shards, rounds, self.injected())
    }

    /// Drain the fabric across `threads` worker threads (clamped to the
    /// shard count; 1 falls back to [`DrainCfg::run_serial`]). Each
    /// worker owns a contiguous block of shards; rounds are separated
    /// by two barriers — one after processing/handoff delivery, one
    /// after every shard has absorbed its inbox and published its next
    /// event time. Every worker then recomputes the same global minimum
    /// independently, so all of them agree on the next window (and on
    /// termination) without a coordinator.
    pub fn run_parallel(&self, threads: usize) -> DrainResult {
        let mut shards = self.build();
        let n = shards.len();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            return self.run_serial();
        }
        let inboxes: Vec<Mutex<Vec<Handoff>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let next_at: Vec<AtomicU64> = shards
            .iter_mut()
            .map(|s| AtomicU64::new(s.q.peek_time().map_or(u64::MAX, Time::as_ns)))
            .collect();
        let rounds = AtomicU64::new(0);
        let chunk = n.div_ceil(threads);
        // The barrier must count the *blocks actually spawned*: ceil
        // division can cover all n shards with fewer than `threads`
        // chunks (e.g. 5 shards over 4 threads → 3 blocks of 2).
        let barrier = Barrier::new(n.div_ceil(chunk));
        std::thread::scope(|scope| {
            for (w, block) in shards.chunks_mut(chunk).enumerate() {
                let (inboxes, next_at, barrier, rounds) = (&inboxes, &next_at, &barrier, &rounds);
                scope.spawn(move || {
                    drain_worker(self, block, inboxes, next_at, barrier, w == 0, rounds);
                });
            }
        });
        finish(shards, rounds.into_inner(), self.injected())
    }
}

/// One worker's round loop. All cross-thread data flows through the
/// inbox mutexes and the published next-event times; the two barriers
/// order those accesses, so `SeqCst` is belt-and-braces rather than
/// load-bearing.
fn drain_worker(
    cfg: &DrainCfg,
    shards: &mut [DrainShard],
    inboxes: &[Mutex<Vec<Handoff>>],
    next_at: &[AtomicU64],
    barrier: &Barrier,
    count_rounds: bool,
    rounds: &AtomicU64,
) {
    let lookahead = cfg.link.delay;
    let mut out = Vec::new();
    loop {
        let min = next_at
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if min == u64::MAX {
            return;
        }
        if count_rounds {
            rounds.fetch_add(1, Ordering::SeqCst);
        }
        let horizon = Time::from_ns(min) + lookahead;
        for s in shards.iter_mut() {
            s.process_window(horizon, cfg, &mut out);
        }
        for h in out.drain(..) {
            // invariant: dst_shard is a topology index produced by process_window
            let mut inbox = inboxes[h.dst_shard].lock().expect("inbox lock poisoned");
            inbox.push(h);
        }
        barrier.wait(); // every handoff for this round is delivered
        for s in shards.iter_mut() {
            // invariant: one inbox per shard by construction
            let mut inbox =
                std::mem::take(&mut *inboxes[s.idx].lock().expect("inbox lock poisoned"));
            s.absorb(&mut inbox);
            // invariant: one published slot per shard by construction
            next_at[s.idx].store(
                s.q.peek_time().map_or(u64::MAX, Time::as_ns),
                Ordering::SeqCst,
            );
        }
        barrier.wait(); // every next-event time is published
    }
}

impl DrainShard {
    /// Process every owned event strictly before `horizon`, appending
    /// cross-shard handoffs to `out`.
    fn process_window(&mut self, horizon: Time, cfg: &DrainCfg, out: &mut Vec<Handoff>) {
        let mut worked = false;
        while self.q.peek_time().is_some_and(|t| t < horizon) {
            let Some((at, ev)) = self.q.pop() else { break };
            worked = true;
            self.stats.events += 1;
            match ev {
                DrainEv::Arrive(mut pkt) => {
                    self.fold(at, 2, pkt.id);
                    let port = if self.idx < cfg.n_leaves {
                        if !pkt.going_up {
                            self.delivered += 1;
                            continue;
                        }
                        pkt.spine as usize
                    } else {
                        pkt.going_up = false;
                        pkt.dst_leaf as usize
                    };
                    // invariant: spine/leaf indices are drawn modulo the port count at injection
                    self.ports[port].q.push_back(pkt);
                    self.kick(port, at, cfg);
                }
                DrainEv::TxDone { port } => {
                    self.fold(at, 1, port as u64);
                    // invariant: TxDone events carry the port index that scheduled them
                    let p = &mut self.ports[port];
                    let pkt = p.in_flight.take().expect("TxDone with idle port");
                    let dst_shard = if self.idx < cfg.n_leaves {
                        cfg.n_leaves + port
                    } else {
                        pkt.dst_leaf as usize
                    };
                    self.seq += 1;
                    self.stats.handoffs += 1;
                    out.push(Handoff {
                        at: at + cfg.link.delay,
                        src_shard: self.idx,
                        src_seq: self.seq,
                        dst_shard,
                        pkt,
                    });
                    self.kick(port, at, cfg);
                }
            }
        }
        if !worked {
            self.stats.stalls += 1;
        }
    }

    /// Start serializing the next queued packet if the wire is idle.
    fn kick(&mut self, port: usize, now: Time, cfg: &DrainCfg) {
        // invariant: callers pass indices bounded by the port vector they just touched
        let p = &mut self.ports[port];
        if p.in_flight.is_none() {
            if let Some(pkt) = p.q.pop_front() {
                let tx = Time::tx_time(u64::from(cfg.pkt_size), cfg.link.rate_bps);
                p.in_flight = Some(pkt);
                self.q.schedule(now + tx, DrainEv::TxDone { port });
            }
        }
    }

    /// Sort this round's received handoffs into the deterministic
    /// `(time, src shard, src seq)` order and insert them. Handoffs
    /// land at or after the round's horizon (see the module-level
    /// safety argument), so they never precede the wheel cursor.
    fn absorb(&mut self, inbox: &mut Vec<Handoff>) {
        inbox.sort_unstable_by_key(|h| (h.at, h.src_shard, h.src_seq));
        for h in inbox.drain(..) {
            self.q.schedule(h.at, DrainEv::Arrive(h.pkt));
        }
    }

    fn fold(&mut self, at: Time, code: u64, key: u64) {
        self.digest.push(at.as_ns());
        self.digest.push(code);
        self.digest.push(key);
    }
}

/// Fold the per-shard digests (in shard index order) and counters into
/// one result — identical for the serial and parallel engines because
/// each shard's event sequence is.
fn finish(shards: Vec<DrainShard>, rounds: u64, injected: u64) -> DrainResult {
    let mut master = FnvDigest::new();
    let mut r = DrainResult {
        digest: 0,
        events: 0,
        injected,
        delivered: 0,
        handoffs: 0,
        rounds,
        shards: Vec::with_capacity(shards.len()),
    };
    for s in shards {
        master.push(s.digest.value());
        master.push(s.stats.events);
        r.events += s.stats.events;
        r.delivered += s.delivered;
        r.handoffs += s.stats.handoffs;
        r.shards.push(s.stats);
    }
    r.digest = master.value();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{FlowId, HostId, LeafId, SpineId};

    fn small() -> DrainCfg {
        DrainCfg {
            n_leaves: 3,
            n_spines: 2,
            hosts_per_leaf: 4,
            link: LinkCfg::new(10_000_000_000, Time::from_us(10)),
            pkts_per_host: 25,
            pkt_size: 1500,
            seed: 7,
        }
    }

    #[test]
    fn shard_map_routes_hub_and_leaves() {
        let topo = Topology::sim_baseline();
        let m = ShardMap::new(&topo);
        assert_eq!(m.n_shards(), 9);
        assert_eq!(m.lookahead(), Time::from_us(10));
        assert_eq!(m.shard_of(&Event::Global { token: 3 }), 0);
        assert_eq!(
            m.shard_of(&Event::TxDone {
                node: NodeId::Spine(SpineId(5)),
                port: 2
            }),
            0
        );
        assert_eq!(
            m.shard_of(&Event::TxDone {
                node: NodeId::Leaf(LeafId(4)),
                port: 0
            }),
            5
        );
        // Host 17 sits under leaf 1 (16 hosts per leaf).
        assert_eq!(
            m.shard_of(&Event::HostTimer {
                host: HostId(17),
                token: 0
            }),
            2
        );
        assert_eq!(
            m.shard_of(&Event::Arrive {
                node: NodeId::Host(HostId(127)),
                pkt: Box::new(Packet::data(
                    FlowId(1),
                    HostId(0),
                    HostId(127),
                    0,
                    100,
                    false
                ))
            }),
            8
        );
    }

    #[test]
    fn shard_map_lookahead_survives_cut_uplinks() {
        let mut topo = Topology::sim_baseline();
        for row in &mut topo.up {
            for l in row.iter_mut() {
                *l = None;
            }
        }
        assert_eq!(ShardMap::new(&topo).lookahead(), topo.host_link.delay);
    }

    #[test]
    fn drain_conserves_every_injected_packet() {
        let r = small().run_serial();
        assert_eq!(r.injected, 3 * 4 * 25);
        assert_eq!(r.delivered, r.injected, "no drops in the lite fabric");
        // Each packet: leaf arrive + leaf tx + spine arrive + spine tx
        // + destination arrive.
        assert_eq!(r.events, 5 * r.injected);
        assert_eq!(r.handoffs, 2 * r.injected, "one hop up, one hop down");
        assert!(r.rounds > 0);
    }

    #[test]
    fn parallel_drain_matches_serial_at_any_thread_count() {
        let cfg = small();
        let serial = cfg.run_serial();
        for threads in [1, 2, 4, 16] {
            let par = cfg.run_parallel(threads);
            assert_eq!(par.digest, serial.digest, "threads={threads}");
            assert_eq!(par.events, serial.events);
            assert_eq!(par.delivered, serial.delivered);
            assert_eq!(par.rounds, serial.rounds);
            assert_eq!(par.shards, serial.shards);
        }
    }

    #[test]
    fn drain_digest_is_sensitive_to_the_schedule() {
        let a = small().run_serial();
        let mut cfg = small();
        cfg.seed = 8;
        let b = cfg.run_serial();
        assert_ne!(a.digest, b.digest, "different spraying, different trace");
    }
}
