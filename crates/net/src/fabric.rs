//! The fabric: ports wired into a leaf-spine topology, packet
//! forwarding, failure application, and load-balancer hook dispatch.

use hermes_sim::{Scheduler, SimRng, Time};

use crate::failure::SpineFailure;
use crate::faultplan::FaultAction;
use crate::lbapi::{FabricLb, LinkRef, Uplinks};
use crate::packet::Packet;
use crate::pool::{PacketPool, PoolStats};
use crate::port::{Enqueue, Port};
use crate::topology::Topology;
use crate::types::{HostId, LeafId, NodeId, PathId, SpineId};

/// The single event type of a fabric simulation.
///
/// `HostTimer` and `Global` are never produced or consumed by the fabric
/// itself — they exist so higher layers (transport timers, flow arrivals,
/// probe ticks) share one totally ordered queue with packet events.
#[derive(Clone, Debug)]
pub enum Event {
    /// A port finished serializing its in-flight packet.
    TxDone { node: NodeId, port: usize },
    /// A packet arrived at a node (after link propagation).
    Arrive { node: NodeId, pkt: Box<Packet> },
    /// Runtime-interpreted per-host timer (e.g. a flow's RTO).
    HostTimer { host: HostId, token: u64 },
    /// Runtime-interpreted global timer (flow arrivals, probe ticks, …).
    Global { token: u64 },
}

/// Fabric-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Packets destroyed by injected switch failures.
    pub drops_failure: u64,
    /// Packets dropped because no live path existed.
    pub drops_disconnected: u64,
    /// Edge-stamped paths that were invalid and had to be re-hashed
    /// (should stay 0 — a nonzero value flags a scheme bug).
    pub path_fallbacks: u64,
    /// Packets delivered to destination hosts.
    pub delivered: u64,
    /// `TxDone` boundaries processed inline within a packet train
    /// instead of as scheduled events (see [`Fabric::handle_traced`]).
    /// Each one is an event the queue never had to store.
    pub trains_inlined: u64,
}

/// The simulated fabric.
pub struct Fabric {
    topo: Topology,
    /// Host NIC uplink ports (host → leaf), indexed by host.
    host_ports: Vec<Port>,
    /// Leaf ports: `0..hosts_per_leaf` down to host slots, then
    /// `hosts_per_leaf + s` up to spine `s` (None where cut).
    leaf_ports: Vec<Vec<Option<Port>>>,
    /// Spine ports: down to each leaf (None where cut).
    spine_ports: Vec<Vec<Option<Port>>>,
    /// Precomputed live path candidates per ordered leaf pair.
    candidates: Vec<Vec<Vec<PathId>>>,
    failures: Vec<SpineFailure>,
    /// Transiently downed leaf↔spine links (`[leaf][spine]`), driven by
    /// [`FaultAction::LinkDown`]/`LinkUp` and spine outages. Unlike
    /// topology cuts these do not shrink the candidate sets — schemes
    /// must *sense* the fault, exactly as on a real fabric where routing
    /// has not yet reconverged. Packets forwarded onto a downed link are
    /// destroyed and counted as `drops_failure`.
    link_down: Vec<Vec<bool>>,
    lb: Option<Box<dyn FabricLb>>,
    rng: SimRng,
    next_pkt_id: u64,
    /// Arena of retired packet allocations, reused by `host_send` so the
    /// steady-state fast path performs no heap allocation per packet.
    pool: PacketPool,
    /// Reused buffer for per-candidate queue depths handed to fabric
    /// LBs on ingress (avoids a Vec allocation per uplink-forwarded
    /// packet). Always left empty between calls.
    qbytes_scratch: Vec<u64>,
    /// Packets currently propagating on links (scheduled `Arrive`
    /// events). Together with the port census this gives an accounting
    /// of in-flight packets that is independent of the drop/delivery
    /// counters — see [`Fabric::conservation_report`].
    on_wire: u64,
    #[cfg(feature = "audit")]
    ledger: crate::audit::Ledger,
    pub stats: FabricStats,
}

impl Fabric {
    /// Build a fabric from a validated topology. `rng` drives failure
    /// randomness only (so failure injection never perturbs workload or
    /// load-balancer random streams).
    pub fn new(topo: Topology, rng: SimRng) -> Fabric {
        topo.validate();
        let q = &topo.queue;
        let mk = |link: crate::topology::LinkCfg| {
            Port::new(
                link,
                q.ecn_threshold(link.rate_bps),
                q.buffer(link.rate_bps),
            )
        };
        // Host NICs: deep buffer, no marking (marking lives in switches).
        let host_ports = (0..topo.n_hosts())
            .map(|_| Port::new(topo.host_link, u64::MAX, 8_000_000))
            .collect();
        let leaf_ports = (0..topo.n_leaves)
            .map(|l| {
                let mut v: Vec<Option<Port>> = (0..topo.hosts_per_leaf)
                    .map(|_| Some(mk(topo.host_link)))
                    .collect();
                v.extend((0..topo.n_spines).map(|s| topo.up[l][s].map(mk)));
                v
            })
            .collect();
        let spine_ports = (0..topo.n_spines)
            .map(|s| (0..topo.n_leaves).map(|l| topo.up[l][s].map(mk)).collect())
            .collect();
        let candidates = (0..topo.n_leaves)
            .map(|a| {
                (0..topo.n_leaves)
                    .map(|b| {
                        if a == b {
                            Vec::new()
                        } else {
                            topo.path_candidates(LeafId(a as u16), LeafId(b as u16))
                        }
                    })
                    .collect()
            })
            .collect();
        Fabric {
            failures: vec![SpineFailure::healthy(); topo.n_spines],
            link_down: vec![vec![false; topo.n_spines]; topo.n_leaves],
            topo,
            host_ports,
            leaf_ports,
            spine_ports,
            candidates,
            lb: None,
            rng,
            next_pkt_id: 0,
            pool: PacketPool::new(),
            qbytes_scratch: Vec::new(),
            on_wire: 0,
            #[cfg(feature = "audit")]
            ledger: crate::audit::Ledger::default(),
            stats: FabricStats::default(),
        }
    }

    /// Install a switch-resident load balancer (CONGA/LetFlow/DRILL).
    pub fn set_fabric_lb(&mut self, lb: Box<dyn FabricLb>) {
        self.lb = Some(lb);
    }

    /// Inject a failure at a spine switch.
    pub fn set_spine_failure(&mut self, spine: SpineId, f: SpineFailure) {
        self.failures[spine.0 as usize] = f;
        // ECN mute lives at the muted switch's egress ports — only its
        // own marking engine goes quiet; leaf ports downstream keep
        // marking normally (which is why the mute is not modeled by
        // clearing the packet's ecn_capable bit).
        for port in self.spine_ports[spine.0 as usize].iter_mut().flatten() {
            port.marking = !f.ecn_mute;
        }
    }

    /// Current failure state of a spine switch.
    pub fn spine_failure(&self, spine: SpineId) -> SpineFailure {
        self.failures[spine.0 as usize]
    }

    /// Transiently take one leaf↔spine link down (or back up). The link
    /// must exist in the topology; packets forwarded onto it while down
    /// are destroyed (`drops_failure`), in both directions. Packets
    /// already queued on the port keep draining — the link's transmit
    /// side is what "fails", as when a transceiver loses light.
    pub fn set_link_down(&mut self, leaf: LeafId, spine: SpineId, down: bool) {
        assert!(
            self.topo.up[leaf.0 as usize][spine.0 as usize].is_some(),
            "cannot flap a link the topology cut permanently"
        );
        self.link_down[leaf.0 as usize][spine.0 as usize] = down;
    }

    /// Whether a leaf↔spine link is transiently down.
    pub fn link_is_down(&self, leaf: LeafId, spine: SpineId) -> bool {
        self.link_down[leaf.0 as usize][spine.0 as usize]
    }

    /// Change one leaf↔spine link's rate mid-run (both directions).
    /// ECN threshold and buffer limit are rescaled to the new rate, as a
    /// reconfigured switch port would be. Takes effect from the next
    /// packet dequeue — transmission time is computed when serialization
    /// starts, so the packet currently on the wire is unaffected.
    pub fn set_link_rate(&mut self, leaf: LeafId, spine: SpineId, rate_bps: u64) {
        assert!(rate_bps > 0, "a live link needs a nonzero rate");
        let l = leaf.0 as usize;
        let s = spine.0 as usize;
        let up_idx = self.topo.hosts_per_leaf + s;
        let ecn = self.topo.queue.ecn_threshold(rate_bps);
        let buf = self.topo.queue.buffer(rate_bps);
        let up = self.leaf_ports[l][up_idx]
            .as_mut()
            .expect("cannot re-rate a link the topology cut");
        up.link.rate_bps = rate_bps;
        up.ecn_threshold = ecn;
        up.buf_limit = buf;
        let down = self.spine_ports[s][l]
            .as_mut()
            .expect("spine side exists whenever the leaf side does");
        down.link.rate_bps = rate_bps;
        down.ecn_threshold = ecn;
        down.buf_limit = buf;
    }

    /// Restore one leaf↔spine link to its topology-configured rate.
    pub fn restore_link_rate(&mut self, leaf: LeafId, spine: SpineId) {
        let orig = self.topo.up[leaf.0 as usize][spine.0 as usize]
            .expect("cannot restore a link the topology cut")
            .rate_bps;
        self.set_link_rate(leaf, spine, orig);
    }

    /// Current rate of a leaf↔spine link, `None` if the topology cut it.
    pub fn link_rate_bps(&self, leaf: LeafId, spine: SpineId) -> Option<u64> {
        let up_idx = self.topo.hosts_per_leaf + spine.0 as usize;
        self.leaf_ports[leaf.0 as usize][up_idx]
            .as_ref()
            .map(|p| p.link.rate_bps)
    }

    /// Take a whole spine out of (or back into) service: every link the
    /// topology wired to it goes down (or up) at once.
    pub fn set_spine_down(&mut self, spine: SpineId, down: bool) {
        for l in 0..self.topo.n_leaves {
            if self.topo.up[l][spine.0 as usize].is_some() {
                self.link_down[l][spine.0 as usize] = down;
            }
        }
    }

    /// Apply one scheduled fault action. This is the single entry point
    /// the runtime's event dispatcher uses to replay a
    /// [`crate::FaultPlan`]; calling the underlying mutators from
    /// anywhere outside the event queue breaks trace determinism (the
    /// `fault-mutation` workspace lint enforces this).
    pub fn apply_fault(&mut self, action: &FaultAction) {
        match *action {
            FaultAction::SetSpineFailure { spine, failure } => {
                self.set_spine_failure(spine, failure);
            }
            FaultAction::ClearSpineFailure { spine } => {
                self.set_spine_failure(spine, SpineFailure::healthy());
            }
            // The gray-failure actions merge into the spine's existing
            // state (read-modify-write) so concurrent windows of
            // different failure modes on one switch compose instead of
            // clobbering each other.
            FaultAction::FlowBlackhole {
                spine,
                victim_fraction,
            } => {
                let f = self
                    .spine_failure(spine)
                    .with_flow_blackhole(victim_fraction);
                self.set_spine_failure(spine, f);
            }
            FaultAction::EcnMute { spine } => {
                let f = self.spine_failure(spine).with_ecn_mute(true);
                self.set_spine_failure(spine, f);
            }
            FaultAction::EcnUnmute { spine } => {
                let f = self.spine_failure(spine).with_ecn_mute(false);
                self.set_spine_failure(spine, f);
            }
            FaultAction::LinkDown { leaf, spine } => self.set_link_down(leaf, spine, true),
            FaultAction::LinkUp { leaf, spine } => self.set_link_down(leaf, spine, false),
            FaultAction::SetLinkRate {
                leaf,
                spine,
                rate_bps,
            } => self.set_link_rate(leaf, spine, rate_bps),
            FaultAction::RestoreLinkRate { leaf, spine } => self.restore_link_rate(leaf, spine),
            FaultAction::SpineDown { spine } => self.set_spine_down(spine, true),
            FaultAction::SpineUp { spine } => self.set_spine_down(spine, false),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Live paths from `src_leaf` to `dst_leaf` (empty iff same leaf or
    /// disconnected).
    pub fn candidates(&self, src_leaf: LeafId, dst_leaf: LeafId) -> &[PathId] {
        &self.candidates[src_leaf.0 as usize][dst_leaf.0 as usize]
    }

    /// Queue occupancy (bytes, both priorities) of a leaf's uplink
    /// toward a spine; 0 for cut links.
    pub fn leaf_up_qbytes(&self, leaf: LeafId, spine: SpineId) -> u64 {
        let idx = self.topo.hosts_per_leaf + spine.0 as usize;
        self.leaf_ports[leaf.0 as usize][idx]
            .as_ref()
            .map_or(0, Port::queued_bytes)
    }

    /// Queue occupancy of a spine's downlink toward a leaf.
    pub fn spine_down_qbytes(&self, spine: SpineId, leaf: LeafId) -> u64 {
        self.spine_ports[spine.0 as usize][leaf.0 as usize]
            .as_ref()
            .map_or(0, Port::queued_bytes)
    }

    /// Per-port statistics of a leaf uplink.
    pub fn leaf_up_stats(&self, leaf: LeafId, spine: SpineId) -> Option<crate::port::PortStats> {
        let idx = self.topo.hosts_per_leaf + spine.0 as usize;
        self.leaf_ports[leaf.0 as usize][idx]
            .as_ref()
            .map(|p| p.stats)
    }

    /// Sum of tail drops across every port in the fabric.
    pub fn total_drops_full(&self) -> u64 {
        let hp = self
            .host_ports
            .iter()
            .map(|p| p.stats.drops_full)
            .sum::<u64>();
        let lp = self
            .leaf_ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.stats.drops_full)
            .sum::<u64>();
        let sp = self
            .spine_ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.stats.drops_full)
            .sum::<u64>();
        hp + lp + sp
    }

    /// Sum of CE marks across every port.
    pub fn total_ecn_marks(&self) -> u64 {
        let lp = self
            .leaf_ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.stats.ecn_marks)
            .sum::<u64>();
        let sp = self
            .spine_ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.stats.ecn_marks)
            .sum::<u64>();
        lp + sp
    }

    /// Physical census: packets sitting in a port queue or currently
    /// serializing, across every port in the fabric. Together with the
    /// link-propagation count this is the fabric's half of the
    /// conservation cross-check — it is computed from the ports
    /// themselves, independently of the injected/retired counters.
    pub fn held_packets(&self) -> u64 {
        let count = |p: &Port| p.queued_pkts() as u64 + u64::from(p.busy());
        let hp = self.host_ports.iter().map(count).sum::<u64>();
        let lp = self
            .leaf_ports
            .iter()
            .flatten()
            .flatten()
            .map(count)
            .sum::<u64>();
        let sp = self
            .spine_ports
            .iter()
            .flatten()
            .flatten()
            .map(count)
            .sum::<u64>();
        hp + lp + sp
    }

    /// Snapshot the packet-conservation accounting. The report balances
    /// (`injected == delivered + dropped + in_flight`) at *every*
    /// instant, not just at quiescence; an imbalance means a packet was
    /// leaked, double-counted, or destroyed without being recorded.
    pub fn conservation_report(&self) -> crate::audit::ConservationReport {
        crate::audit::ConservationReport {
            injected: self.next_pkt_id,
            delivered: self.stats.delivered,
            drops_failure: self.stats.drops_failure,
            drops_disconnected: self.stats.drops_disconnected,
            drops_full: self.total_drops_full(),
            in_flight: self.held_packets() + self.on_wire,
        }
    }

    /// Exact count of packet ids currently inside the fabric, from the
    /// per-packet ledger. Only available with the `audit` feature.
    #[cfg(feature = "audit")]
    pub fn ledger_outstanding(&self) -> u64 {
        self.ledger.outstanding()
    }

    /// Return a retired packet's allocation to the fabric's arena. The
    /// runtime calls this after consuming a delivered packet; internal
    /// drop sites recycle automatically.
    #[inline]
    pub fn recycle(&mut self, pkt: Box<Packet>) {
        self.pool.recycle(pkt);
    }

    /// Packet-arena effectiveness counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Hand a packet from a host to the fabric. Stamps id and departure
    /// time, then queues it on the host NIC. The box comes from the
    /// fabric's packet arena, so steady-state sends allocate nothing.
    pub fn host_send<Q: Scheduler<Event>>(&mut self, q: &mut Q, pkt: Packet) {
        let boxed = self.pool.boxed(pkt);
        self.host_send_boxed(q, boxed);
    }

    /// Like [`Fabric::host_send`], for callers that already boxed.
    pub fn host_send_boxed<Q: Scheduler<Event>>(&mut self, q: &mut Q, mut pkt: Box<Packet>) {
        debug_assert!((pkt.src.0 as usize) < self.topo.n_hosts());
        debug_assert!((pkt.dst.0 as usize) < self.topo.n_hosts());
        debug_assert_ne!(pkt.src, pkt.dst, "loopback traffic is not modelled");
        pkt.id = self.next_pkt_id;
        self.next_pkt_id += 1;
        pkt.sent_at = q.now();
        if self.topo.host_leaf(pkt.src) == self.topo.host_leaf(pkt.dst) {
            pkt.path = PathId::DIRECT;
        }
        let host = pkt.src;
        let node = NodeId::Host(host);
        #[cfg(feature = "audit")]
        self.ledger.injected(pkt.id);
        let port = &mut self.host_ports[host.0 as usize];
        match port.enqueue(pkt) {
            Enqueue::Queued => Self::kick_port(q, node, 0, port),
            Enqueue::Dropped(pkt) => {
                Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::BufferFull);
                #[cfg(feature = "audit")]
                self.ledger.retired(pkt.id);
                self.pool.recycle(pkt);
            }
        }
    }

    /// Advance the fabric by one event. Returns the packet delivered to
    /// a host, if this event completed a delivery.
    ///
    /// Panics on `HostTimer`/`Global` events — those belong to the
    /// runtime layer and must be filtered out before reaching the fabric.
    pub fn handle<Q: Scheduler<Event>>(
        &mut self,
        q: &mut Q,
        ev: Event,
    ) -> Option<(HostId, Box<Packet>)> {
        self.handle_traced(q, ev, None, Time::MAX)
    }

    /// Like [`Fabric::handle`], with packet-train batching enabled.
    ///
    /// When `digest` is provided, a `TxDone` event may *inline* the
    /// port's subsequent back-to-back transmissions (a "train") instead
    /// of scheduling one `TxDone` per packet, provided each inlined
    /// boundary is provably the very next thing the simulation would
    /// dispatch anyway (see [`Fabric::tx_done`] for the exact gate).
    /// Inlined boundaries are fed to `digest` and counted in
    /// [`FabricStats::trains_inlined`], so the digested event stream is
    /// byte-identical to the unbatched one; `limit` must be the run
    /// loop's horizon so no boundary beyond it — which the unbatched run
    /// would have left undispatched — is ever inlined.
    pub fn handle_traced<Q: Scheduler<Event>>(
        &mut self,
        q: &mut Q,
        ev: Event,
        digest: Option<&mut crate::audit::DigestSink>,
        limit: Time,
    ) -> Option<(HostId, Box<Packet>)> {
        match ev {
            Event::TxDone { node, port } => {
                self.tx_done(q, node, port, digest, limit);
                None
            }
            Event::Arrive { node, pkt } => {
                self.on_wire -= 1;
                match node {
                    NodeId::Host(h) => {
                        debug_assert_eq!(pkt.dst, h, "packet delivered to wrong host");
                        debug_assert!(pkt.sent_at <= q.now(), "delivery before departure");
                        #[cfg(feature = "audit")]
                        self.ledger.retired(pkt.id);
                        self.stats.delivered += 1;
                        Some((h, pkt))
                    }
                    NodeId::Leaf(l) => {
                        self.forward_leaf(q, l, pkt);
                        None
                    }
                    NodeId::Spine(s) => {
                        self.forward_spine(q, s, pkt);
                        None
                    }
                }
            }
            Event::HostTimer { .. } | Event::Global { .. } => {
                panic!("runtime event leaked into the fabric")
            }
        }
    }

    fn port_mut(&mut self, node: NodeId, idx: usize) -> &mut Port {
        match node {
            NodeId::Host(h) => {
                debug_assert_eq!(idx, 0);
                &mut self.host_ports[h.0 as usize]
            }
            NodeId::Leaf(l) => self.leaf_ports[l.0 as usize][idx]
                .as_mut()
                .expect("event on cut leaf port"),
            NodeId::Spine(s) => self.spine_ports[s.0 as usize][idx]
                .as_mut()
                .expect("event on cut spine port"),
        }
    }

    /// Where a packet leaving (node, port) arrives.
    fn peer(&self, node: NodeId, idx: usize) -> NodeId {
        match node {
            NodeId::Host(h) => NodeId::Leaf(self.topo.host_leaf(h)),
            NodeId::Leaf(l) => {
                if idx < self.topo.hosts_per_leaf {
                    NodeId::Host(HostId(
                        (l.0 as usize * self.topo.hosts_per_leaf + idx) as u32,
                    ))
                } else {
                    NodeId::Spine(SpineId((idx - self.topo.hosts_per_leaf) as u16))
                }
            }
            NodeId::Spine(_) => NodeId::Leaf(LeafId(idx as u16)),
        }
    }

    /// Complete a port's in-flight transmission and launch the packet
    /// onto the wire, then either schedule the port's next `TxDone` or —
    /// when batching is enabled — process the whole back-to-back train
    /// inline, one queue event for the lot.
    ///
    /// A boundary at `b = now + tx_time` may be inlined only when all of:
    ///
    /// * `digest` is present (runtime-driven run that accounts for
    ///   inlined events) and `b <= limit` (the unbatched run would have
    ///   dispatched it before the horizon);
    /// * `b <= now + delay`, this packet's own arrival time — evaluated
    ///   *before* the `Arrive` is scheduled, with `>=` ties allowed
    ///   because in the unbatched order the `TxDone` was scheduled first
    ///   and so carried the smaller seq;
    /// * every already-queued event is due strictly *after* `b` — a
    ///   same-time queued event holds a smaller seq and would have
    ///   dispatched first.
    ///
    /// Under those conditions the boundary is provably the next event
    /// the simulation would pop, so handling it here — cursor advanced
    /// via `advance_to`, digest fed the identical `(time, TxDone)`
    /// record — reproduces the unbatched event stream byte-for-byte.
    fn tx_done<Q: Scheduler<Event>>(
        &mut self,
        q: &mut Q,
        node: NodeId,
        idx: usize,
        mut digest: Option<&mut crate::audit::DigestSink>,
        limit: Time,
    ) {
        let peer = self.peer(node, idx);
        loop {
            let port = self.port_mut(node, idx);
            let pkt = port.complete_tx();
            let delay = port.link.delay;
            let arrive_at = q.now() + delay;
            // Decide the next boundary's fate before scheduling anything:
            // the gate must see the queue exactly as the unbatched run's
            // scheduler would have at its kick_port call.
            let inline_at = match port.begin_tx() {
                Some(t) => {
                    let boundary = q.now() + t;
                    if digest.is_some()
                        && boundary <= limit
                        && arrive_at >= boundary
                        && q.peek_time().is_none_or(|p| p > boundary)
                    {
                        Some(boundary)
                    } else {
                        // Unbatched path: TxDone before Arrive, exactly
                        // the old kick-then-launch scheduling order.
                        q.schedule(boundary, Event::TxDone { node, port: idx });
                        None
                    }
                }
                None => None,
            };
            self.on_wire += 1;
            q.schedule(arrive_at, Event::Arrive { node: peer, pkt });
            let Some(boundary) = inline_at else { break };
            q.advance_to(boundary);
            if let Some(d) = digest.as_deref_mut() {
                d.record(boundary, &Event::TxDone { node, port: idx });
            }
            self.stats.trains_inlined += 1;
        }
    }

    fn kick_port<Q: Scheduler<Event>>(q: &mut Q, node: NodeId, idx: usize, port: &mut Port) {
        if let Some(t) = port.begin_tx() {
            q.schedule_in(t, Event::TxDone { node, port: idx });
        }
    }

    /// Telemetry: record a packet retired without delivery. Must run
    /// *before* the box goes back to the pool — `recycle` poisons the
    /// identity fields this record reads.
    #[inline]
    fn trace_drop(now: hermes_sim::Time, pkt: &Packet, reason: hermes_telemetry::DropReason) {
        if !hermes_telemetry::enabled() {
            return;
        }
        let flow = pkt.flow.0;
        let path = if pkt.path.is_spine() {
            i64::from(pkt.path.0)
        } else {
            -1
        };
        hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Drop {
            flow,
            path,
            reason,
        });
    }

    fn forward_leaf<Q: Scheduler<Event>>(&mut self, q: &mut Q, l: LeafId, mut pkt: Box<Packet>) {
        let dst_leaf = self.topo.host_leaf(pkt.dst);
        let src_leaf = self.topo.host_leaf(pkt.src);
        if dst_leaf == l {
            // Down toward the host (either intra-rack or from a spine).
            if src_leaf != l {
                if let Some(lb) = self.lb.as_mut() {
                    lb.on_dst_leaf(l, &mut pkt, q.now());
                }
            }
            let slot = self.topo.host_slot(pkt.dst);
            if let Some(lb) = self.lb.as_mut() {
                lb.on_forward(LinkRef::HostDown { leaf: l }, &mut pkt, q.now());
            }
            let node = NodeId::Leaf(l);
            let port = self.leaf_ports[l.0 as usize][slot]
                .as_mut()
                .expect("host-facing leaf ports are never cut");
            match port.enqueue(pkt) {
                Enqueue::Queued => Self::kick_port(q, node, slot, port),
                Enqueue::Dropped(pkt) => {
                    Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::BufferFull);
                    #[cfg(feature = "audit")]
                    self.ledger.retired(pkt.id);
                    self.pool.recycle(pkt);
                }
            }
            return;
        }
        // Uplink required: this must be the source leaf.
        debug_assert_eq!(src_leaf, l, "transit through a second leaf is impossible");
        let cands = &self.candidates[l.0 as usize][dst_leaf.0 as usize];
        if cands.is_empty() {
            self.stats.drops_disconnected += 1;
            Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::Disconnected);
            #[cfg(feature = "audit")]
            self.ledger.retired(pkt.id);
            self.pool.recycle(pkt);
            return;
        }
        let path = if let Some(lb) = self.lb.as_mut() {
            let mut qbytes = std::mem::take(&mut self.qbytes_scratch);
            qbytes.extend(cands.iter().map(|p| {
                let idx = self.topo.hosts_per_leaf + p.0 as usize;
                self.leaf_ports[l.0 as usize][idx]
                    .as_ref()
                    .map_or(0, Port::queued_bytes)
            }));
            let uplinks = Uplinks {
                paths: cands,
                qbytes: &qbytes,
            };
            let path = lb.ingress_select(l, dst_leaf, &pkt, uplinks, q.now(), &mut self.rng);
            qbytes.clear();
            self.qbytes_scratch = qbytes;
            path
        } else if cands.contains(&pkt.path) {
            pkt.path
        } else {
            // Edge scheme stamped a dead/unset path: deterministic hash.
            self.stats.path_fallbacks += 1;
            cands[(pkt.flow.0 as usize) % cands.len()]
        };
        debug_assert!(cands.contains(&path), "fabric LB chose a dead path");
        pkt.path = path;
        pkt.meta.lb_tag = path.0;
        let spine = path.0;
        if self.link_down[l.0 as usize][spine as usize] {
            // Transient link failure: the packet is lost on the dead
            // uplink. Schemes keep this path in their candidate set and
            // must sense the loss.
            self.stats.drops_failure += 1;
            Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::LinkDown);
            #[cfg(feature = "audit")]
            self.ledger.retired(pkt.id);
            self.pool.recycle(pkt);
            return;
        }
        if let Some(lb) = self.lb.as_mut() {
            lb.on_forward(LinkRef::Up { leaf: l, spine }, &mut pkt, q.now());
        }
        let idx = self.topo.hosts_per_leaf + spine as usize;
        let node = NodeId::Leaf(l);
        let port = self.leaf_ports[l.0 as usize][idx]
            .as_mut()
            .expect("candidate paths only cross live uplinks");
        // Telemetry: detect a CE mark applied by this enqueue via the
        // port's mark counter (the box is moved into the queue, so the
        // marked flag itself is no longer visible here).
        let marks_before = port.stats.ecn_marks;
        let tel_flow = pkt.flow.0;
        match port.enqueue(pkt) {
            Enqueue::Queued => {
                if hermes_telemetry::enabled() && port.stats.ecn_marks > marks_before {
                    let qbytes = port.low_queue_bytes();
                    hermes_telemetry::emit_with(q.now(), || hermes_telemetry::Record::EcnMark {
                        leaf: u32::from(l.0),
                        spine: u32::from(spine),
                        qbytes,
                        flow: tel_flow,
                    });
                }
                Self::kick_port(q, node, idx, port);
            }
            Enqueue::Dropped(pkt) => {
                Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::BufferFull);
                #[cfg(feature = "audit")]
                self.ledger.retired(pkt.id);
                self.pool.recycle(pkt);
            }
        }
    }

    fn forward_spine<Q: Scheduler<Event>>(&mut self, q: &mut Q, s: SpineId, mut pkt: Box<Packet>) {
        let f = self.failures[s.0 as usize];
        // ANALYZER: allow(float-determinism, random_drop is a FaultPlan constant compared against a seeded draw; nothing accumulates)
        if f.random_drop > 0.0 && self.rng.chance(f.random_drop) {
            self.stats.drops_failure += 1;
            Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::RandomDrop);
            #[cfg(feature = "audit")]
            self.ledger.retired(pkt.id);
            self.pool.recycle(pkt);
            return;
        }
        if let Some(bh) = f.blackhole {
            let src_leaf = self.topo.host_leaf(pkt.src);
            let dst_leaf = self.topo.host_leaf(pkt.dst);
            if bh.matches(pkt.src, pkt.dst, src_leaf, dst_leaf) {
                self.stats.drops_failure += 1;
                Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::Blackhole);
                #[cfg(feature = "audit")]
                self.ledger.retired(pkt.id);
                self.pool.recycle(pkt);
                return;
            }
        }
        if let Some(fb) = f.flow_blackhole {
            if fb.matches(pkt.flow) {
                self.stats.drops_failure += 1;
                Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::FlowBlackhole);
                #[cfg(feature = "audit")]
                self.ledger.retired(pkt.id);
                self.pool.recycle(pkt);
                return;
            }
        }
        let dst_leaf = self.topo.host_leaf(pkt.dst);
        let idx = dst_leaf.0 as usize;
        if self.spine_ports[s.0 as usize][idx].is_none() {
            self.stats.drops_disconnected += 1;
            Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::Disconnected);
            #[cfg(feature = "audit")]
            self.ledger.retired(pkt.id);
            self.pool.recycle(pkt);
            return;
        }
        if self.link_down[idx][s.0 as usize] {
            // Transient failure of the spine→leaf downlink.
            self.stats.drops_failure += 1;
            Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::LinkDown);
            #[cfg(feature = "audit")]
            self.ledger.retired(pkt.id);
            self.pool.recycle(pkt);
            return;
        }
        if let Some(lb) = self.lb.as_mut() {
            lb.on_forward(
                LinkRef::Down {
                    spine: s.0,
                    leaf: dst_leaf,
                },
                &mut pkt,
                q.now(),
            );
        }
        let node = NodeId::Spine(s);
        let port = self.spine_ports[s.0 as usize][idx]
            .as_mut()
            .expect("downlink existence checked above");
        match port.enqueue(pkt) {
            Enqueue::Queued => Self::kick_port(q, node, idx, port),
            Enqueue::Dropped(pkt) => {
                Self::trace_drop(q.now(), &pkt, hermes_telemetry::DropReason::BufferFull);
                #[cfg(feature = "audit")]
                self.ledger.retired(pkt.id);
                self.pool.recycle(pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::types::FlowId;
    use hermes_sim::{EventQueue, Time};

    fn run_to_completion(
        fab: &mut Fabric,
        q: &mut EventQueue<Event>,
    ) -> Vec<(Time, HostId, Box<Packet>)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let Some((h, p)) = fab.handle(q, ev) {
                out.push((t, h, p));
            }
        }
        out
    }

    fn send_data(fab: &mut Fabric, q: &mut EventQueue<Event>, src: u32, dst: u32, path: PathId) {
        let mut p = Packet::data(FlowId(1), HostId(src), HostId(dst), 0, 1460, false);
        p.path = path;
        fab.host_send(q, p);
    }

    #[test]
    fn delivers_inter_rack_packet_with_expected_latency() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
        let (t, h, p) = &out[0];
        assert_eq!(*h, HostId(6));
        assert_eq!(p.path, PathId(0));
        // 4 store-and-forward hops of 1500B at 1G (12us) + 4 × 3us prop.
        assert_eq!(*t, Time::from_us(4 * 12 + 4 * 3));
        assert_eq!(fab.stats.delivered, 1);
    }

    #[test]
    fn delivers_intra_rack_directly() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 1, PathId::UNSET);
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2.path, PathId::DIRECT);
        // host→leaf→host: 2 hops.
        assert_eq!(out[0].0, Time::from_us(2 * 12 + 2 * 3));
    }

    #[test]
    fn dead_path_falls_back_and_is_counted() {
        let mut topo = Topology::testbed();
        topo.cut_link(LeafId(0), SpineId(1));
        let mut fab = Fabric::new(topo, SimRng::new(0));
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(1)); // stamped dead path
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1, "packet must be re-hashed onto live path");
        // Live candidates are {0, 2, 3}; flow 1 hashes to index 1 → s2.
        assert_eq!(out[0].2.path, PathId(2));
        assert_eq!(fab.stats.path_fallbacks, 1);
    }

    #[test]
    fn random_drop_failure_kills_packets() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.set_spine_failure(SpineId(0), SpineFailure::random_drops(1.0));
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert!(out.is_empty());
        assert_eq!(fab.stats.drops_failure, 1);
    }

    #[test]
    fn blackhole_drops_matching_pairs_only() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.set_spine_failure(
            SpineId(0),
            SpineFailure::blackhole(LeafId(0), LeafId(1), 1.0),
        );
        let mut q = EventQueue::new();
        // Forward direction through failed spine: dropped.
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        // Forward direction through healthy spine: delivered.
        send_data(&mut fab, &mut q, 0, 7, PathId(1));
        // Reverse direction through failed spine: delivered (directional).
        send_data(&mut fab, &mut q, 6, 0, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 2);
        assert_eq!(fab.stats.drops_failure, 1);
    }

    #[test]
    fn flow_blackhole_drops_victim_flows_everywhere() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.apply_fault(&FaultAction::FlowBlackhole {
            spine: SpineId(0),
            victim_fraction: 1.0,
        });
        let mut q = EventQueue::new();
        // Any flow through the failed spine is a victim, both rack
        // directions — unlike the pair blackhole, which is directional.
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        send_data(&mut fab, &mut q, 6, 0, PathId(0));
        // Healthy spine: delivered.
        send_data(&mut fab, &mut q, 0, 7, PathId(1));
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
        assert_eq!(fab.stats.drops_failure, 2);
        // Clearing by merging fraction 0 normalizes to healthy.
        fab.apply_fault(&FaultAction::FlowBlackhole {
            spine: SpineId(0),
            victim_fraction: 0.0,
        });
        assert!(!fab.spine_failure(SpineId(0)).is_failed());
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        assert_eq!(run_to_completion(&mut fab, &mut q).len(), 1);
    }

    #[test]
    fn gray_failures_merge_instead_of_replacing() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.apply_fault(&FaultAction::SetSpineFailure {
            spine: SpineId(2),
            failure: SpineFailure::random_drops(0.05),
        });
        fab.apply_fault(&FaultAction::FlowBlackhole {
            spine: SpineId(2),
            victim_fraction: 0.3,
        });
        fab.apply_fault(&FaultAction::EcnMute { spine: SpineId(2) });
        let f = fab.spine_failure(SpineId(2));
        assert_eq!(f.random_drop, 0.05, "merge keeps the drop window");
        assert!(f.flow_blackhole.is_some());
        assert!(f.ecn_mute);
        // Unmuting leaves the other overlapping failures in place.
        fab.apply_fault(&FaultAction::EcnUnmute { spine: SpineId(2) });
        let f = fab.spine_failure(SpineId(2));
        assert!(!f.ecn_mute);
        assert_eq!(f.random_drop, 0.05);
        assert!(f.flow_blackhole.is_some());
        // ClearSpineFailure still wipes everything at once.
        fab.apply_fault(&FaultAction::ClearSpineFailure { spine: SpineId(2) });
        assert!(!fab.spine_failure(SpineId(2)).is_failed());
    }

    #[test]
    fn ecn_mute_disables_marking_on_the_spines_ports_only() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        fab.apply_fault(&FaultAction::EcnMute { spine: SpineId(1) });
        for l in 0..fab.topo.n_leaves {
            assert!(
                !fab.spine_ports[1][l]
                    .as_ref()
                    .expect("testbed is full mesh")
                    .marking,
                "muted spine's downlink {l} must stop marking"
            );
            assert!(
                fab.spine_ports[0][l]
                    .as_ref()
                    .expect("testbed is full mesh")
                    .marking,
                "other spines keep marking"
            );
        }
        // Leaf ports (host-facing and uplinks) are untouched: the mute
        // is local to the broken switch.
        for ports in &fab.leaf_ports {
            for p in ports.iter().flatten() {
                assert!(p.marking);
            }
        }
        fab.apply_fault(&FaultAction::EcnUnmute { spine: SpineId(1) });
        for l in 0..fab.topo.n_leaves {
            assert!(
                fab.spine_ports[1][l]
                    .as_ref()
                    .expect("testbed is full mesh")
                    .marking
            );
        }
    }

    #[test]
    fn serialization_orders_back_to_back_packets() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        for i in 0..3 {
            let mut p = Packet::data(FlowId(1), HostId(0), HostId(6), i * 1460, 1460, false);
            p.path = PathId(0);
            fab.host_send(&mut q, p);
        }
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 3);
        // Pipelined: one extra serialization per additional packet.
        let base = Time::from_us(4 * 12 + 4 * 3);
        assert_eq!(out[0].0, base);
        assert_eq!(out[1].0, base + Time::from_us(12));
        assert_eq!(out[2].0, base + Time::from_us(24));
        // In-order delivery on a single path.
        for (i, (_, _, p)) in out.iter().enumerate() {
            match p.kind {
                PacketKind::Data { seq, .. } => assert_eq!(seq, i as u64 * 1460),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn ecn_marked_under_persistent_queue() {
        // Saturate one uplink: many packets into a 1G leaf port whose
        // threshold is 30 KB → later packets get marked.
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        for i in 0..60 {
            let mut p = Packet::data(FlowId(1), HostId(0), HostId(6), i * 1460, 1460, false);
            p.path = PathId(0);
            fab.host_send(&mut q, p);
        }
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 60);
        // Host NIC and leaf uplink have equal rates, so queue builds at
        // the host NIC (unmarked) — but the burst arrives paced at the
        // leaf. To see marking we need convergence: two hosts into one
        // uplink.
        let marked = out.iter().filter(|(_, _, p)| p.ecn_marked).count();
        let _ = marked; // may be zero here; real check below.

        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        for h in [0u32, 1] {
            for i in 0..40 {
                let mut p = Packet::data(
                    FlowId(h as u64),
                    HostId(h),
                    HostId(6),
                    i * 1460,
                    1460,
                    false,
                );
                p.path = PathId(0);
                fab.host_send(&mut q, p);
            }
        }
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 80);
        assert!(
            out.iter().any(|(_, _, p)| p.ecn_marked),
            "2:1 convergence on a 30KB-threshold port must mark"
        );
        assert!(fab.total_ecn_marks() > 0);
    }

    #[test]
    fn downed_link_destroys_uplink_packets_and_conserves() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        fab.apply_fault(&FaultAction::LinkDown {
            leaf: LeafId(0),
            spine: SpineId(0),
        });
        assert!(fab.link_is_down(LeafId(0), SpineId(0)));
        send_data(&mut fab, &mut q, 0, 6, PathId(0)); // dead uplink
        send_data(&mut fab, &mut q, 0, 7, PathId(1)); // healthy path
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2.path, PathId(1));
        assert_eq!(fab.stats.drops_failure, 1);
        let rep = fab.conservation_report();
        assert!(rep.balanced(), "link-down drops must be accounted: {rep:?}");
    }

    #[test]
    fn downed_link_destroys_downlink_packets_too() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        // Down the link on the *destination* side: leaf 1 ↔ spine 0.
        fab.apply_fault(&FaultAction::LinkDown {
            leaf: LeafId(1),
            spine: SpineId(0),
        });
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert!(out.is_empty(), "packet must die at the spine downlink");
        assert_eq!(fab.stats.drops_failure, 1);
        // LinkUp restores delivery.
        fab.apply_fault(&FaultAction::LinkUp {
            leaf: LeafId(1),
            spine: SpineId(0),
        });
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn spine_outage_downs_every_link_and_recovers() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        fab.apply_fault(&FaultAction::SpineDown { spine: SpineId(2) });
        let n_leaves = fab.topology().n_leaves;
        for l in 0..n_leaves {
            assert!(fab.link_is_down(LeafId(l as u16), SpineId(2)));
            assert!(!fab.link_is_down(LeafId(l as u16), SpineId(0)));
        }
        fab.apply_fault(&FaultAction::SpineUp { spine: SpineId(2) });
        for l in 0..n_leaves {
            assert!(!fab.link_is_down(LeafId(l as u16), SpineId(2)));
        }
    }

    #[test]
    fn link_rate_degrade_slows_delivery_and_restores_exactly() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let orig = fab.link_rate_bps(LeafId(0), SpineId(0)).unwrap();
        // Degrade to a tenth: serialization on that hop is 10× slower.
        fab.apply_fault(&FaultAction::SetLinkRate {
            leaf: LeafId(0),
            spine: SpineId(0),
            rate_bps: orig / 10,
        });
        assert_eq!(fab.link_rate_bps(LeafId(0), SpineId(0)), Some(orig / 10));
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert_eq!(out.len(), 1);
        // Healthy fabric delivers at 4×12us + 4×3us (see test above);
        // one 10×-slower hop adds 9 extra serializations of 12us.
        assert_eq!(out[0].0, Time::from_us(4 * 12 + 4 * 3 + 9 * 12));
        fab.apply_fault(&FaultAction::RestoreLinkRate {
            leaf: LeafId(0),
            spine: SpineId(0),
        });
        assert_eq!(fab.link_rate_bps(LeafId(0), SpineId(0)), Some(orig));
    }

    #[test]
    fn fault_window_restores_healthy_spine_exactly() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        fab.apply_fault(&FaultAction::SetSpineFailure {
            spine: SpineId(1),
            failure: SpineFailure::random_drops(0.3),
        });
        assert!(fab.spine_failure(SpineId(1)).is_failed());
        fab.apply_fault(&FaultAction::ClearSpineFailure { spine: SpineId(1) });
        let f = fab.spine_failure(SpineId(1));
        assert!(!f.is_failed());
        assert_eq!(f.random_drop, 0.0);
        assert!(f.blackhole.is_none());
    }

    #[test]
    #[should_panic]
    fn flapping_a_cut_link_is_rejected() {
        let mut topo = Topology::testbed();
        topo.cut_link(LeafId(0), SpineId(1));
        let mut fab = Fabric::new(topo, SimRng::new(0));
        fab.set_link_down(LeafId(0), SpineId(1), true);
    }

    #[test]
    fn qbytes_introspection() {
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        assert_eq!(fab.leaf_up_qbytes(LeafId(0), SpineId(0)), 0);
        for h in [0u32, 1, 2] {
            for i in 0..20 {
                let mut p = Packet::data(
                    FlowId(h as u64),
                    HostId(h),
                    HostId(6),
                    i * 1460,
                    1460,
                    false,
                );
                p.path = PathId(0);
                fab.host_send(&mut q, p);
            }
        }
        // Step events until the leaf uplink has queue.
        let mut saw_queue = false;
        while let Some((_, ev)) = q.pop() {
            fab.handle(&mut q, ev);
            if fab.leaf_up_qbytes(LeafId(0), SpineId(0)) > 0 {
                saw_queue = true;
            }
        }
        assert!(saw_queue, "3:1 convergence must build uplink queue");
    }

    #[test]
    fn telemetry_drop_records_carry_reason_and_identity() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::{DropReason, Record};
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());

        // Blackhole at spine 0 for the (leaf0, leaf1) pair.
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.set_spine_failure(
            SpineId(0),
            SpineFailure::blackhole(LeafId(0), LeafId(1), 1.0),
        );
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(0));
        let out = run_to_completion(&mut fab, &mut q);
        assert!(out.is_empty());
        let evs = hermes_telemetry::drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].record,
            Record::Drop {
                flow: 1,
                path: 0,
                reason: DropReason::Blackhole,
            }
        );
        // The record fires at the spine arrival, not injection time, and
        // before the box is recycled (identity not poisoned).
        assert!(evs[0].at > Time::ZERO);

        // Downed uplink → LinkDown reason with the same identity.
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(7));
        fab.set_link_down(LeafId(0), SpineId(2), true);
        let mut q = EventQueue::new();
        send_data(&mut fab, &mut q, 0, 6, PathId(2));
        run_to_completion(&mut fab, &mut q);
        let evs = hermes_telemetry::drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].record,
            Record::Drop {
                flow: 1,
                path: 2,
                reason: DropReason::LinkDown,
            }
        );
        hermes_telemetry::uninstall();
    }

    #[test]
    fn telemetry_ecn_marks_surface_with_queue_depth() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::Record;
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        // 2:1 convergence onto one 30KB-threshold uplink (same setup as
        // ecn_marked_under_persistent_queue).
        let mut fab = Fabric::new(Topology::testbed(), SimRng::new(0));
        let mut q = EventQueue::new();
        for h in [0u32, 1] {
            for i in 0..40 {
                let mut p = Packet::data(
                    FlowId(h as u64),
                    HostId(h),
                    HostId(6),
                    i * 1460,
                    1460,
                    false,
                );
                p.path = PathId(0);
                fab.host_send(&mut q, p);
            }
        }
        run_to_completion(&mut fab, &mut q);
        let marks: Vec<_> = hermes_telemetry::drain()
            .into_iter()
            .filter_map(|ev| match ev.record {
                Record::EcnMark {
                    leaf,
                    spine,
                    qbytes,
                    flow,
                } => Some((leaf, spine, qbytes, flow)),
                _ => None,
            })
            .collect();
        assert_eq!(
            marks.len() as u64,
            fab.total_ecn_marks(),
            "one record per counted mark"
        );
        assert!(!marks.is_empty());
        for (leaf, spine, qbytes, flow) in marks {
            assert_eq!((leaf, spine), (0, 0));
            assert!(flow == 0 || flow == 1);
            // Marking requires the data queue above K = 30 KB.
            assert!(qbytes > 30_000, "mark-time queue {qbytes} must exceed K");
        }
        hermes_telemetry::uninstall();
    }
}
