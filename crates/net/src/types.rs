//! Identifier newtypes shared across the fabric.
//!
//! Everything is a small integer index into dense `Vec`s; the newtypes
//! exist so that a host index can never be confused with a leaf index at
//! a call site.

use std::fmt;

/// A server (end host). Hosts are numbered fabric-wide,
/// `leaf * hosts_per_leaf + slot`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// A leaf (top-of-rack) switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LeafId(pub u16);

/// A spine (core) switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpineId(pub u16);

/// Any node in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeId {
    Host(HostId),
    Leaf(LeafId),
    Spine(SpineId),
}

/// A flow (one sender→receiver byte stream, or a probe/UDP pseudo-flow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// An end-to-end path between two racks.
///
/// In a two-tier leaf-spine fabric a path is fully determined by the
/// spine it crosses, so `PathId` is the spine index. Intra-rack traffic
/// uses [`PathId::DIRECT`]; [`PathId::UNSET`] means "not chosen yet"
/// (switch-based schemes choose at the source leaf).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u16);

impl PathId {
    /// Intra-rack: no spine crossing.
    pub const DIRECT: PathId = PathId(u16::MAX);
    /// Path not yet selected (to be resolved at the source leaf).
    pub const UNSET: PathId = PathId(u16::MAX - 1);

    /// The spine this path crosses, if it is a real spine path.
    #[inline]
    pub fn spine(self) -> Option<SpineId> {
        if self == PathId::DIRECT || self == PathId::UNSET {
            None
        } else {
            Some(SpineId(self.0))
        }
    }

    /// Construct from a spine index.
    #[inline]
    pub fn via(spine: SpineId) -> PathId {
        PathId(spine.0)
    }

    /// Whether this is a concrete spine path.
    #[inline]
    pub fn is_spine(self) -> bool {
        self.spine().is_some()
    }
}

impl fmt::Debug for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PathId::DIRECT {
            write!(f, "Path(direct)")
        } else if *self == PathId::UNSET {
            write!(f, "Path(unset)")
        } else {
            write!(f, "Path(s{})", self.0)
        }
    }
}

/// Strict scheduling priority of a packet at every output port.
///
/// Mirrors the paper's switch configuration (§4): pure ACKs (and probe
/// responses) ride the high-priority queue so that reverse-path queueing
/// does not pollute RTT measurements; everything else is best-effort.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Priority {
    High,
    Low,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_sentinels_are_distinct() {
        assert_ne!(PathId::DIRECT, PathId::UNSET);
        assert!(PathId::DIRECT.spine().is_none());
        assert!(PathId::UNSET.spine().is_none());
        assert!(!PathId::DIRECT.is_spine());
    }

    #[test]
    fn path_roundtrips_spine() {
        let p = PathId::via(SpineId(3));
        assert_eq!(p.spine(), Some(SpineId(3)));
        assert!(p.is_spine());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", PathId::via(SpineId(2))), "Path(s2)");
        assert_eq!(format!("{:?}", PathId::DIRECT), "Path(direct)");
        assert_eq!(format!("{:?}", PathId::UNSET), "Path(unset)");
    }
}
