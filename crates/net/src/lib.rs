//! # hermes-net — packet-level leaf-spine fabric
//!
//! The network substrate the Hermes reproduction runs on: an
//! output-queued, store-and-forward, two-tier Clos (leaf-spine) fabric
//! with
//!
//! * explicit per-packet routing (a [`PathId`] names the spine a packet
//!   crosses — the simulator-native equivalent of the paper's XPath
//!   path control),
//! * two strict-priority queues per port with DCTCP-style ECN marking on
//!   the data queue (§4's switch configuration),
//! * switch failure injection — silent random drops and deterministic
//!   packet blackholes (§2.1, §5.3.3),
//! * hook traits for edge-based ([`EdgeLb`]) and switch-based
//!   ([`FabricLb`]) load balancers.
//!
//! The fabric knows nothing about transports: it moves [`Packet`]s
//! between hosts and reports deliveries; `hermes-transport` implements
//! DCTCP on top, and `hermes-runtime` wires the two together.

pub mod audit;
mod fabric;
mod failure;
mod faultplan;
mod lbapi;
mod packet;
mod pool;
mod port;
mod rate;
mod shard;
mod topology;
mod types;

pub use audit::{ConservationReport, DigestSink, FnvDigest};
pub use fabric::{Event, Fabric, FabricStats};
pub use failure::{flow_unit, pair_unit, Blackhole, FlowBlackhole, SpineFailure};
pub use faultplan::{FaultAction, FaultEvent, FaultPlan, PlanError};
pub use lbapi::{EdgeLb, FabricLb, FlowCtx, LinkRef, PinnedPath, ProbeTarget, Uplinks};
pub use packet::{AckInfo, LbMeta, Packet, PacketKind, ACK_SIZE, HDR, MSS, PROBE_SIZE};
pub use pool::{PacketPool, PoolStats};
pub use port::{Enqueue, Port, PortStats};
pub use rate::Dre;
pub use shard::{DrainCfg, DrainResult, ShardMap};
pub use topology::{LinkCfg, QueueCfg, Topology};
pub use types::{FlowId, HostId, LeafId, NodeId, PathId, Priority, SpineId};
