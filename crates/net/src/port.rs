//! An output port: two strict-priority FIFO queues, a tail-drop buffer
//! shared across both, and DCTCP-style ECN marking on the low-priority
//! (data) queue.

use std::collections::VecDeque;

use hermes_sim::Time;

use crate::packet::Packet;
use crate::topology::LinkCfg;
use crate::types::Priority;

/// Per-port counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortStats {
    /// Packets fully serialized onto the link.
    pub tx_pkts: u64,
    /// Bytes fully serialized onto the link.
    pub tx_bytes: u64,
    /// Packets CE-marked at this port.
    pub ecn_marks: u64,
    /// Packets tail-dropped for lack of buffer.
    pub drops_full: u64,
    /// High-water mark of *offered* queue occupancy in bytes: queued
    /// bytes after a successful enqueue, or queued bytes plus the
    /// rejected arrival at drop time. Including the dropped arrival is
    /// deliberate — the mark answers "how much buffer would this port
    /// have needed", which the post-drop queue depth under-reports.
    pub max_qbytes: u64,
}

/// One output port with its attached link.
pub struct Port {
    pub link: LinkCfg,
    /// CE-mark low-priority arrivals when the low queue exceeds this.
    pub ecn_threshold: u64,
    /// Tail-drop when total *queued* bytes would exceed this. The packet
    /// currently being serialized is deliberately NOT counted against
    /// the limit: it has already left the buffer for the wire, matching
    /// switch ASICs that account egress buffer occupancy after the
    /// scheduler pulls a frame (see DESIGN.md §11). A port can therefore
    /// hold up to `buf_limit` queued bytes plus one in-flight packet.
    pub buf_limit: u64,
    /// Whether CE marking is enabled at all. Healthy ports mark; a port
    /// on an ECN-muted switch ([`SpineFailure::ecn_mute`]) forwards
    /// normally but never marks, starving congestion-sensing LBs of
    /// signal while the queue silently grows.
    ///
    /// [`SpineFailure::ecn_mute`]: crate::SpineFailure
    pub marking: bool,
    high: VecDeque<Box<Packet>>,
    low: VecDeque<Box<Packet>>,
    high_bytes: u64,
    low_bytes: u64,
    /// The packet currently being serialized, if any.
    in_flight: Option<Box<Packet>>,
    pub stats: PortStats,
}

/// Outcome of an enqueue attempt.
#[derive(Debug)]
pub enum Enqueue {
    /// Queued (possibly CE-marked).
    Queued,
    /// Tail-dropped: buffer full. The rejected packet is handed back so
    /// the caller can ledger the drop and recycle the allocation into
    /// the fabric's [`PacketPool`](crate::PacketPool).
    Dropped(Box<Packet>),
}

impl Enqueue {
    /// Whether the packet was accepted.
    #[inline]
    pub fn is_queued(&self) -> bool {
        matches!(self, Enqueue::Queued)
    }
}

impl Port {
    pub fn new(link: LinkCfg, ecn_threshold: u64, buf_limit: u64) -> Port {
        Port {
            link,
            ecn_threshold,
            buf_limit,
            marking: true,
            high: VecDeque::new(),
            low: VecDeque::new(),
            high_bytes: 0,
            low_bytes: 0,
            in_flight: None,
            stats: PortStats::default(),
        }
    }

    /// Total bytes waiting (not counting the packet on the wire).
    #[inline]
    pub fn queued_bytes(&self) -> u64 {
        self.high_bytes + self.low_bytes
    }

    /// Bytes waiting in the low-priority (data) queue — the quantity the
    /// ECN marker and DRILL-style local decisions look at.
    #[inline]
    pub fn low_queue_bytes(&self) -> u64 {
        self.low_bytes
    }

    /// Whether the port is currently serializing a packet.
    #[inline]
    pub fn busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Try to enqueue. Applies tail-drop and ECN marking.
    pub fn enqueue(&mut self, mut pkt: Box<Packet>) -> Enqueue {
        let sz = pkt.size as u64;
        if self.queued_bytes() + sz > self.buf_limit {
            self.stats.drops_full += 1;
            // Sample the high-water mark with the rejected arrival
            // included: occupancy *offered* to the buffer at drop time.
            self.stats.max_qbytes = self.stats.max_qbytes.max(self.queued_bytes() + sz);
            return Enqueue::Dropped(pkt);
        }
        match pkt.prio {
            Priority::High => {
                self.high_bytes += sz;
                self.high.push_back(pkt);
            }
            Priority::Low => {
                self.low_bytes += sz;
                // DCTCP marking: CE when the instantaneous data queue
                // (including this arrival) exceeds K — unless the
                // switch's marking engine is muted (gray failure).
                if self.marking && pkt.ecn_capable && self.low_bytes > self.ecn_threshold {
                    pkt.ecn_marked = true;
                    self.stats.ecn_marks += 1;
                }
                self.low.push_back(pkt);
            }
        }
        self.stats.max_qbytes = self.stats.max_qbytes.max(self.queued_bytes());
        Enqueue::Queued
    }

    /// If idle and non-empty, move the next packet (strict priority:
    /// high first) onto the wire and return its serialization time.
    /// Returns `None` if already busy or empty.
    pub fn begin_tx(&mut self) -> Option<Time> {
        if self.in_flight.is_some() {
            return None;
        }
        let pkt = if let Some(p) = self.high.pop_front() {
            self.high_bytes -= p.size as u64;
            p
        } else if let Some(p) = self.low.pop_front() {
            self.low_bytes -= p.size as u64;
            p
        } else {
            return None;
        };
        let t = Time::tx_time(pkt.size as u64, self.link.rate_bps);
        self.in_flight = Some(pkt);
        Some(t)
    }

    /// Serialization finished: take the packet off the wire.
    ///
    /// Panics if no transmission was in progress (a scheduling bug).
    pub fn complete_tx(&mut self) -> Box<Packet> {
        let pkt = self
            .in_flight
            .take()
            // ANALYZER: allow(panic-surface, documented contract: the runtime only schedules TxDone while a packet is in flight)
            .expect("complete_tx with no transmission in flight");
        self.stats.tx_pkts += 1;
        self.stats.tx_bytes += pkt.size as u64;
        pkt
    }

    /// Number of packets waiting (both priorities).
    pub fn queued_pkts(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FlowId, HostId, PathId};

    fn link() -> LinkCfg {
        LinkCfg::new(1_000_000_000, Time::from_us(1))
    }

    fn data(len: u32) -> Box<Packet> {
        Box::new(Packet::data(FlowId(1), HostId(0), HostId(1), 0, len, false))
    }

    fn ack() -> Box<Packet> {
        Box::new(Packet::ack(
            FlowId(1),
            HostId(1),
            HostId(0),
            crate::packet::AckInfo {
                ack: 0,
                ecn_echo: false,
                echo_ts: Time::ZERO,
                echo_path: PathId::DIRECT,
                echo_retx: false,
            },
        ))
    }

    /// A high-priority arrival overtakes low-priority packets that were
    /// enqueued earlier, as long as none of them has started serializing.
    #[test]
    fn high_priority_overtakes_earlier_low() {
        let mut p = Port::new(link(), 30_000, 100_000);
        assert!(p.enqueue(data(1460)).is_queued());
        assert!(p.enqueue(ack()).is_queued());
        p.begin_tx();
        assert_eq!(p.complete_tx().prio, Priority::High, "ACK leaves first");
        p.begin_tx();
        assert_eq!(p.complete_tx().prio, Priority::Low, "then the data");
        assert_eq!(p.queued_pkts(), 0);
    }

    /// Strict priority does not preempt: once a low-priority packet is
    /// on the wire, a high-priority arrival waits for it to finish, then
    /// goes next.
    #[test]
    fn high_priority_waits_for_in_flight_low() {
        let mut p = Port::new(link(), 30_000, 100_000);
        p.enqueue(data(1460));
        p.begin_tx(); // the data packet is now serializing
        p.enqueue(ack());
        assert!(p.begin_tx().is_none(), "must not preempt the wire");
        assert_eq!(p.complete_tx().prio, Priority::Low);
        p.begin_tx();
        assert_eq!(p.complete_tx().prio, Priority::High);
    }

    #[test]
    fn tx_time_matches_link_rate() {
        let mut p = Port::new(link(), 30_000, 100_000);
        p.enqueue(data(1460));
        let t = p.begin_tx().unwrap();
        assert_eq!(t, Time::from_us(12)); // 1500 B at 1 Gbps
        assert!(p.busy());
        assert!(p.begin_tx().is_none(), "must not preempt");
        let pkt = p.complete_tx();
        assert_eq!(pkt.size, 1500);
        assert!(!p.busy());
    }

    #[test]
    fn ecn_marks_when_low_queue_exceeds_threshold() {
        let mut p = Port::new(link(), 3_000, 1_000_000);
        // First two packets: 1500, 3000 bytes queued — second crosses K.
        p.enqueue(data(1460));
        p.enqueue(data(1460));
        p.enqueue(data(1460));
        p.begin_tx();
        let a = p.complete_tx();
        assert!(!a.ecn_marked, "first packet queued below threshold");
        p.begin_tx();
        let b = p.complete_tx();
        assert!(
            !b.ecn_marked,
            "second packet exactly at 3000 > 3000 is false"
        );
        p.begin_tx();
        let c = p.complete_tx();
        assert!(c.ecn_marked, "third packet queued above threshold");
        assert_eq!(p.stats.ecn_marks, 1);
    }

    #[test]
    fn muted_port_never_marks_but_still_forwards() {
        let mut p = Port::new(link(), 3_000, 1_000_000);
        p.marking = false;
        for _ in 0..5 {
            assert!(p.enqueue(data(1460)).is_queued(), "mute must not drop");
        }
        assert_eq!(p.stats.ecn_marks, 0, "muted marking engine stays silent");
        let mut drained = 0;
        while p.begin_tx().is_some() {
            assert!(!p.complete_tx().ecn_marked);
            drained += 1;
        }
        assert_eq!(drained, 5);
        // Re-enabling marking restores DCTCP behavior.
        p.marking = true;
        p.enqueue(data(1460));
        p.enqueue(data(1460));
        p.enqueue(data(1460));
        assert_eq!(p.stats.ecn_marks, 1, "third arrival crosses K again");
    }

    #[test]
    fn non_ecn_capable_never_marked() {
        let mut p = Port::new(link(), 0, 1_000_000);
        let mut u = Box::new(Packet::udp(
            FlowId(2),
            HostId(0),
            HostId(1),
            1460,
            PathId(0),
        ));
        u.ecn_capable = false;
        p.enqueue(u);
        p.begin_tx();
        assert!(!p.complete_tx().ecn_marked);
    }

    #[test]
    fn high_priority_queue_does_not_mark() {
        let mut p = Port::new(link(), 0, 1_000_000);
        for _ in 0..10 {
            p.enqueue(ack());
        }
        assert_eq!(p.stats.ecn_marks, 0);
    }

    #[test]
    fn tail_drop_on_full_buffer() {
        let mut p = Port::new(link(), 100_000, 3_000);
        assert!(p.enqueue(data(1460)).is_queued());
        assert!(p.enqueue(data(1460)).is_queued());
        match p.enqueue(data(1460)) {
            Enqueue::Dropped(pkt) => assert_eq!(pkt.size, 1500, "packet handed back intact"),
            Enqueue::Queued => panic!("third packet must tail-drop"),
        }
        assert_eq!(p.stats.drops_full, 1);
        assert_eq!(p.queued_pkts(), 2);
    }

    /// The high-water mark reports *offered* occupancy: at drop time it
    /// includes the arrival that was rejected, not just what fit.
    #[test]
    fn high_water_mark_includes_dropped_arrival() {
        let mut p = Port::new(link(), 100_000, 3_000);
        p.enqueue(data(1460));
        p.enqueue(data(1460));
        assert_eq!(p.stats.max_qbytes, 3_000, "two packets fit exactly");
        assert!(!p.enqueue(data(1460)).is_queued());
        assert_eq!(
            p.stats.max_qbytes, 4_500,
            "drop-time sample counts the rejected 1500-byte arrival"
        );
        assert_eq!(p.queued_bytes(), 3_000, "queue itself is unchanged");
    }

    /// `buf_limit` governs *queued* bytes only: the in-flight packet has
    /// left the buffer for the wire and frees its share of the limit.
    /// This is the explicit accounting choice documented in DESIGN.md §11.
    #[test]
    fn buf_limit_excludes_in_flight_packet() {
        let mut p = Port::new(link(), 100_000, 3_000);
        p.enqueue(data(1460));
        p.begin_tx(); // 1500 bytes now on the wire, zero queued
        assert_eq!(p.queued_bytes(), 0);
        assert!(p.enqueue(data(1460)).is_queued());
        assert!(
            p.enqueue(data(1460)).is_queued(),
            "limit covers the 3000 queued bytes; the wire packet is exempt"
        );
        assert!(!p.enqueue(data(1460)).is_queued(), "queue itself is full");
    }

    #[test]
    fn byte_accounting_is_conserved() {
        let mut p = Port::new(link(), 100_000, 1_000_000);
        for _ in 0..5 {
            p.enqueue(data(1000));
        }
        assert_eq!(p.queued_bytes(), 5 * 1040);
        let mut drained = 0;
        while p.begin_tx().is_some() {
            drained += p.complete_tx().size as u64;
        }
        assert_eq!(drained, 5 * 1040);
        assert_eq!(p.queued_bytes(), 0);
        assert_eq!(p.stats.tx_pkts, 5);
        assert_eq!(p.stats.tx_bytes, 5 * 1040);
    }

    #[test]
    #[should_panic(expected = "no transmission in flight")]
    fn complete_without_begin_panics() {
        let mut p = Port::new(link(), 0, 1_000_000);
        p.complete_tx();
    }
}
