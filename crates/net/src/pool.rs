//! Packet arena: a free-list of recycled `Box<Packet>` allocations.
//!
//! Every packet a simulation forwards lives in a `Box<Packet>` so the
//! event queue moves 8-byte pointers, not 100-byte structs. Without a
//! pool that costs one heap allocation per injected packet on the
//! `host_send` hot path and one free per drop/delivery. The pool turns
//! that round trip into a `Vec` push/pop plus a plain `Packet` store
//! (every [`Packet`] field is `Copy`, so `*slot = pkt` is a memcpy —
//! no drop glue runs).
//!
//! # Lifetime rules (see DESIGN.md §11)
//!
//! * Boxes are handed out by [`PacketPool::boxed`] and come back via
//!   [`PacketPool::recycle`] when the fabric retires a packet: tail
//!   drop, failure/blackhole/disconnected drop, or delivery after the
//!   runtime has consumed the payload.
//! * Recycling is *optional for correctness* — a box that is simply
//!   dropped (e.g. by a test that never returns it) is freed normally;
//!   the pool just loses the reuse.
//! * A recycled box's contents are stale until `boxed` overwrites them;
//!   the pool never reads packet fields.
//! * The free list is capped so a drain-heavy phase cannot pin an
//!   unbounded high-water mark of dead allocations, and trimmed toward
//!   its epoch low-water mark on sustained underuse so a burst's
//!   high-water mark is released once the burst drains.

use hermes_sim::Time;

use crate::packet::{Packet, PacketKind};
use crate::types::{FlowId, HostId, PathId, Priority};

/// Counters for pool effectiveness; surfaced through
/// [`Fabric::pool_stats`](crate::Fabric::pool_stats) and the perf
/// harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Boxes allocated fresh because the free list was empty.
    pub fresh: u64,
    /// Boxes handed out from the free list (allocations avoided).
    pub reused: u64,
    /// Boxes returned to the free list.
    pub recycled: u64,
    /// Boxes dropped on return because the free list was at capacity.
    pub discarded: u64,
    /// Parked boxes freed by the underuse trim policy (see
    /// [`PacketPool::TRIM_PERIOD`]).
    pub trimmed: u64,
}

/// A bounded free-list of packet allocations.
pub struct PacketPool {
    // The boxes ARE the payload: the pool exists to park allocations so
    // `boxed` can hand them back out. `Vec<Packet>` would discard the
    // very thing being recycled.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    cap: usize,
    stats: PoolStats,
    /// Pool operations (boxed/recycle) since the last trim epoch ended.
    ops_since_trim: u32,
    /// Smallest free-list length observed this epoch: boxes that sat
    /// parked through every operation of the epoch, i.e. provably unused
    /// surplus.
    epoch_min_free: usize,
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketPool {
    /// Free-list bound: comfortably above the packets-in-flight
    /// high-water mark of the largest bench topology, small enough
    /// (64Ki boxes ≈ a few MiB) that an idle pool is cheap to keep.
    pub const DEFAULT_CAP: usize = 1 << 16;

    /// A pool with the default capacity bound.
    pub fn new() -> PacketPool {
        PacketPool::with_capacity(Self::DEFAULT_CAP)
    }

    /// A pool retaining at most `cap` free boxes.
    pub fn with_capacity(cap: usize) -> PacketPool {
        PacketPool {
            free: Vec::new(),
            cap,
            stats: PoolStats::default(),
            ops_since_trim: 0,
            epoch_min_free: 0,
        }
    }

    /// Operations per trim epoch. At each epoch boundary half of the
    /// epoch's low-water free-list surplus — boxes that sat parked
    /// through *every* operation of the epoch — is freed, so a
    /// burst-then-idle workload releases its dead high-water allocation
    /// geometrically instead of pinning it for the rest of the run.
    /// Driven purely by operation counts (no wall clock, no RNG), so
    /// trimming is deterministic and digest-neutral.
    pub const TRIM_PERIOD: u32 = 4096;

    /// Box `pkt`, reusing a recycled allocation when one is available.
    #[inline]
    pub fn boxed(&mut self, pkt: Packet) -> Box<Packet> {
        let slot = match self.free.pop() {
            Some(mut slot) => {
                *slot = pkt;
                self.stats.reused += 1;
                slot
            }
            None => {
                self.stats.fresh += 1;
                Box::new(pkt)
            }
        };
        self.note_op();
        slot
    }

    /// Identity stamped on parked boxes: no live packet or flow ever
    /// carries it, so a stale id surfacing anywhere downstream (a
    /// ledger entry, a telemetry record) is immediately recognizable
    /// as a pool bug rather than a plausible-looking misattribution.
    pub const POISON_ID: u64 = u64::MAX;

    /// Return a retired packet's allocation to the free list. Boxes
    /// beyond the capacity bound are freed instead of retained.
    ///
    /// The parked packet's whole identity-bearing surface is poisoned on
    /// the way in: `boxed` overwrites the entire struct on reuse, but a
    /// retired packet's fields must never be observable between recycle
    /// and reuse — e.g. by a telemetry or audit hook reading a box it
    /// should no longer hold (see `tests` for the regressions).
    #[inline]
    pub fn recycle(&mut self, mut pkt: Box<Packet>) {
        if self.free.len() < self.cap {
            self.stats.recycled += 1;
            Self::poison(&mut pkt);
            self.free.push(pkt);
        } else {
            self.stats.discarded += 1;
        }
        self.note_op();
    }

    /// Scrub every field a downstream hook could mistake for live packet
    /// state: identity (`id`, `flow`, endpoints), routing (`path`,
    /// `prio`), ECN bits, sizes, timestamps, and LB metadata. `kind`
    /// collapses to the payload-free `Udp` so no stale seq/ack numbers
    /// survive either.
    fn poison(pkt: &mut Packet) {
        pkt.id = Self::POISON_ID;
        pkt.flow = FlowId(Self::POISON_ID);
        pkt.src = HostId(u32::MAX);
        pkt.dst = HostId(u32::MAX);
        pkt.size = 0;
        pkt.kind = PacketKind::Udp;
        pkt.ecn_capable = false;
        pkt.ecn_marked = false;
        pkt.path = PathId::UNSET;
        pkt.prio = Priority::Low;
        pkt.sent_at = Time::MAX;
        pkt.meta = crate::packet::LbMeta::default();
    }

    /// Record one pool operation; at epoch boundaries, release half of
    /// the free list's provably-unused surplus.
    #[inline]
    fn note_op(&mut self) {
        self.epoch_min_free = self.epoch_min_free.min(self.free.len());
        self.ops_since_trim += 1;
        if self.ops_since_trim >= Self::TRIM_PERIOD {
            self.trim_epoch();
        }
    }

    fn trim_epoch(&mut self) {
        let surplus = self.epoch_min_free / 2;
        if surplus > 0 {
            // len >= epoch_min_free >= surplus: the minimum bounds the
            // current length from below, so the subtraction is safe.
            self.free.truncate(self.free.len() - surplus);
            self.stats.trimmed += surplus as u64;
            // Return the Vec's own spare capacity too once it dwarfs the
            // live list; otherwise the boxes are freed but the pointer
            // array still pins its high-water allocation.
            if self.free.capacity() > 64 && self.free.capacity() / 2 > self.free.len() {
                self.free.shrink_to(self.free.len().max(64));
            }
        }
        self.ops_since_trim = 0;
        self.epoch_min_free = self.free.len();
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Boxes currently parked on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{FlowId, HostId};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(1), seq, 1460, false)
    }

    #[test]
    fn reuses_recycled_allocations() {
        let mut pool = PacketPool::new();
        let a = pool.boxed(pkt(0));
        let addr = std::ptr::addr_of!(*a) as usize;
        pool.recycle(a);
        let b = pool.boxed(pkt(7));
        assert_eq!(std::ptr::addr_of!(*b) as usize, addr, "allocation reused");
        match b.kind {
            crate::packet::PacketKind::Data { seq, .. } => {
                assert_eq!(seq, 7, "contents fully overwritten on reuse");
            }
            _ => panic!("wrong kind"),
        }
        let s = pool.stats();
        assert_eq!((s.fresh, s.reused, s.recycled), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_discards_excess() {
        let mut pool = PacketPool::with_capacity(2);
        let boxes: Vec<_> = (0..4).map(|i| pool.boxed(pkt(i))).collect();
        for b in boxes {
            pool.recycle(b);
        }
        assert_eq!(pool.free_len(), 2);
        let s = pool.stats();
        assert_eq!((s.recycled, s.discarded), (2, 2));
    }

    #[test]
    fn recycled_identity_is_poisoned_until_reuse() {
        // Regression: a retired packet's (id, flow) must not survive on
        // the free list, where a later hook reading a stale box would
        // attribute events to the wrong flow.
        let mut pool = PacketPool::new();
        let mut a = pool.boxed(pkt(0));
        a.id = 42;
        a.flow = FlowId(7);
        pool.recycle(a);
        // While parked, the box carries the poison identity, not flow 7.
        assert_eq!(pool.free[0].id, PacketPool::POISON_ID);
        assert_eq!(pool.free[0].flow, FlowId(PacketPool::POISON_ID));
        // Reuse hands out the *new* packet's identity, fully fresh.
        let mut b = pool.boxed(pkt(3));
        b.id = 99;
        assert_eq!(b.flow, FlowId(1));
        assert_eq!(b.id, 99);
    }

    #[test]
    fn dropped_enqueue_recycle_does_not_leak_flow_id() {
        // The Enqueue::Dropped path hands the rejected box back for
        // recycling; the next allocation must carry only the fresh
        // packet's flow id.
        let mut port = crate::port::Port::new(
            crate::topology::LinkCfg::new(10_000_000_000, hermes_sim::Time::from_us(1)),
            1_000_000,
            100, // buffer smaller than one packet: every enqueue drops
        );
        let mut pool = PacketPool::new();
        let mut doomed = pool.boxed(pkt(5));
        doomed.flow = FlowId(1234);
        match port.enqueue(doomed) {
            crate::port::Enqueue::Dropped(b) => pool.recycle(b),
            crate::port::Enqueue::Queued => panic!("expected tail drop"),
        }
        let reused = pool.boxed(Packet::data(
            FlowId(2),
            HostId(0),
            HostId(1),
            0,
            1460,
            false,
        ));
        assert_eq!(reused.flow, FlowId(2), "stale flow id leaked through reuse");
        assert_ne!(reused.flow, FlowId(1234));
    }

    #[test]
    fn empty_pool_allocates_fresh() {
        let mut pool = PacketPool::new();
        assert_eq!(pool.free_len(), 0);
        let _a = pool.boxed(pkt(0));
        let _b = pool.boxed(pkt(1));
        assert_eq!(pool.stats().fresh, 2);
        assert_eq!(pool.stats().reused, 0);
    }

    /// Regression: the full identity-bearing surface is scrubbed while a
    /// box is parked, not just (id, flow) — path tags, ECN bits, sizes
    /// and timestamps must be unreadable between recycle and reuse.
    #[test]
    fn recycle_poisons_the_full_identity_surface() {
        let mut pool = PacketPool::new();
        let mut a = pool.boxed(pkt(9));
        a.id = 42;
        a.flow = FlowId(7);
        a.path = crate::types::PathId(3);
        a.ecn_capable = true;
        a.ecn_marked = true;
        a.prio = Priority::High;
        a.sent_at = hermes_sim::Time::from_us(123);
        a.meta.lb_tag = 5;
        a.meta.fb_valid = true;
        pool.recycle(a);
        let parked = &pool.free[0];
        assert_eq!(parked.id, PacketPool::POISON_ID);
        assert_eq!(parked.flow, FlowId(PacketPool::POISON_ID));
        assert_eq!(parked.src, HostId(u32::MAX));
        assert_eq!(parked.dst, HostId(u32::MAX));
        assert_eq!(parked.size, 0);
        assert!(matches!(parked.kind, crate::packet::PacketKind::Udp));
        assert!(!parked.ecn_capable && !parked.ecn_marked);
        assert_eq!(parked.path, crate::types::PathId::UNSET);
        assert_eq!(parked.prio, Priority::Low);
        assert_eq!(parked.sent_at, hermes_sim::Time::MAX);
        assert_eq!(parked.meta.lb_tag, crate::packet::LbMeta::default().lb_tag);
        assert!(!parked.meta.fb_valid);
    }

    /// Burst-then-idle: a drained burst's free-list high-water mark is
    /// released geometrically by the epoch trim instead of pinned for
    /// the rest of the run.
    #[test]
    fn sustained_underuse_trims_the_free_list() {
        let mut pool = PacketPool::new();
        // Burst: 10k boxes out, all recycled.
        let burst: Vec<_> = (0..10_000).map(|i| pool.boxed(pkt(i))).collect();
        for b in burst {
            pool.recycle(b);
        }
        // A few epoch boundaries already passed while the burst drained
        // back, so some early trimming may have happened; the bulk of
        // the surplus is still parked.
        assert!(pool.free_len() > 4_000, "burst did not park its boxes");
        // Idle phase: single-packet churn for several epochs. The free
        // list's low-water mark stays high, so each epoch frees half.
        for i in 0..(6 * PacketPool::TRIM_PERIOD as u64) {
            let b = pool.boxed(pkt(i));
            pool.recycle(b);
        }
        assert!(
            pool.free_len() < 1_000,
            "free list still holds {} boxes after sustained underuse",
            pool.free_len()
        );
        assert!(
            pool.stats().trimmed > 9_000,
            "trim stat should record the released surplus, got {}",
            pool.stats().trimmed
        );
        // The churn itself kept being served from the pool.
        assert_eq!(pool.stats().fresh, 10_000);
    }

    /// An active pool (free list regularly near-empty) must NOT trim:
    /// the low-water mark is what protects working capacity.
    #[test]
    fn active_pool_is_not_trimmed() {
        let mut pool = PacketPool::new();
        let outstanding: Vec<_> = (0..64).map(|i| pool.boxed(pkt(i))).collect();
        for b in outstanding {
            pool.recycle(b);
        }
        // Every epoch drains the list completely at least once.
        for round in 0..(3 * PacketPool::TRIM_PERIOD as u64 / 64) {
            let out: Vec<_> = (0..64).map(|i| pool.boxed(pkt(round * 64 + i))).collect();
            assert_eq!(pool.free_len(), 0, "all 64 boxes in flight");
            for b in out {
                pool.recycle(b);
            }
        }
        assert_eq!(pool.stats().trimmed, 0, "working capacity was trimmed");
        assert_eq!(pool.free_len(), 64);
    }
}
