//! Packet arena: a free-list of recycled `Box<Packet>` allocations.
//!
//! Every packet a simulation forwards lives in a `Box<Packet>` so the
//! event queue moves 8-byte pointers, not 100-byte structs. Without a
//! pool that costs one heap allocation per injected packet on the
//! `host_send` hot path and one free per drop/delivery. The pool turns
//! that round trip into a `Vec` push/pop plus a plain `Packet` store
//! (every [`Packet`] field is `Copy`, so `*slot = pkt` is a memcpy —
//! no drop glue runs).
//!
//! # Lifetime rules (see DESIGN.md §11)
//!
//! * Boxes are handed out by [`PacketPool::boxed`] and come back via
//!   [`PacketPool::recycle`] when the fabric retires a packet: tail
//!   drop, failure/blackhole/disconnected drop, or delivery after the
//!   runtime has consumed the payload.
//! * Recycling is *optional for correctness* — a box that is simply
//!   dropped (e.g. by a test that never returns it) is freed normally;
//!   the pool just loses the reuse.
//! * A recycled box's contents are stale until `boxed` overwrites them;
//!   the pool never reads packet fields.
//! * The free list is capped so a drain-heavy phase cannot pin an
//!   unbounded high-water mark of dead allocations.

use crate::packet::Packet;

/// Counters for pool effectiveness; surfaced through
/// [`Fabric::pool_stats`](crate::Fabric::pool_stats) and the perf
/// harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Boxes allocated fresh because the free list was empty.
    pub fresh: u64,
    /// Boxes handed out from the free list (allocations avoided).
    pub reused: u64,
    /// Boxes returned to the free list.
    pub recycled: u64,
    /// Boxes dropped on return because the free list was at capacity.
    pub discarded: u64,
}

/// A bounded free-list of packet allocations.
pub struct PacketPool {
    // The boxes ARE the payload: the pool exists to park allocations so
    // `boxed` can hand them back out. `Vec<Packet>` would discard the
    // very thing being recycled.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    cap: usize,
    stats: PoolStats,
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketPool {
    /// Free-list bound: comfortably above the packets-in-flight
    /// high-water mark of the largest bench topology, small enough
    /// (64Ki boxes ≈ a few MiB) that an idle pool is cheap to keep.
    pub const DEFAULT_CAP: usize = 1 << 16;

    /// A pool with the default capacity bound.
    pub fn new() -> PacketPool {
        PacketPool::with_capacity(Self::DEFAULT_CAP)
    }

    /// A pool retaining at most `cap` free boxes.
    pub fn with_capacity(cap: usize) -> PacketPool {
        PacketPool {
            free: Vec::new(),
            cap,
            stats: PoolStats::default(),
        }
    }

    /// Box `pkt`, reusing a recycled allocation when one is available.
    #[inline]
    pub fn boxed(&mut self, pkt: Packet) -> Box<Packet> {
        match self.free.pop() {
            Some(mut slot) => {
                *slot = pkt;
                self.stats.reused += 1;
                slot
            }
            None => {
                self.stats.fresh += 1;
                Box::new(pkt)
            }
        }
    }

    /// Identity stamped on parked boxes: no live packet or flow ever
    /// carries it, so a stale id surfacing anywhere downstream (a
    /// ledger entry, a telemetry record) is immediately recognizable
    /// as a pool bug rather than a plausible-looking misattribution.
    pub const POISON_ID: u64 = u64::MAX;

    /// Return a retired packet's allocation to the free list. Boxes
    /// beyond the capacity bound are freed instead of retained.
    ///
    /// The parked packet's identity (`id`, `flow`) is poisoned on the
    /// way in: `boxed` overwrites the whole struct on reuse, but a
    /// retired packet's flow id must never be observable between
    /// recycle and reuse — e.g. by a telemetry or audit hook reading a
    /// box it should no longer hold (see `tests` for the regression).
    #[inline]
    pub fn recycle(&mut self, mut pkt: Box<Packet>) {
        if self.free.len() < self.cap {
            self.stats.recycled += 1;
            pkt.id = Self::POISON_ID;
            pkt.flow = crate::types::FlowId(Self::POISON_ID);
            self.free.push(pkt);
        } else {
            self.stats.discarded += 1;
        }
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Boxes currently parked on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{FlowId, HostId};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(1), seq, 1460, false)
    }

    #[test]
    fn reuses_recycled_allocations() {
        let mut pool = PacketPool::new();
        let a = pool.boxed(pkt(0));
        let addr = std::ptr::addr_of!(*a) as usize;
        pool.recycle(a);
        let b = pool.boxed(pkt(7));
        assert_eq!(std::ptr::addr_of!(*b) as usize, addr, "allocation reused");
        match b.kind {
            crate::packet::PacketKind::Data { seq, .. } => {
                assert_eq!(seq, 7, "contents fully overwritten on reuse");
            }
            _ => panic!("wrong kind"),
        }
        let s = pool.stats();
        assert_eq!((s.fresh, s.reused, s.recycled), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_discards_excess() {
        let mut pool = PacketPool::with_capacity(2);
        let boxes: Vec<_> = (0..4).map(|i| pool.boxed(pkt(i))).collect();
        for b in boxes {
            pool.recycle(b);
        }
        assert_eq!(pool.free_len(), 2);
        let s = pool.stats();
        assert_eq!((s.recycled, s.discarded), (2, 2));
    }

    #[test]
    fn recycled_identity_is_poisoned_until_reuse() {
        // Regression: a retired packet's (id, flow) must not survive on
        // the free list, where a later hook reading a stale box would
        // attribute events to the wrong flow.
        let mut pool = PacketPool::new();
        let mut a = pool.boxed(pkt(0));
        a.id = 42;
        a.flow = FlowId(7);
        pool.recycle(a);
        // While parked, the box carries the poison identity, not flow 7.
        assert_eq!(pool.free[0].id, PacketPool::POISON_ID);
        assert_eq!(pool.free[0].flow, FlowId(PacketPool::POISON_ID));
        // Reuse hands out the *new* packet's identity, fully fresh.
        let mut b = pool.boxed(pkt(3));
        b.id = 99;
        assert_eq!(b.flow, FlowId(1));
        assert_eq!(b.id, 99);
    }

    #[test]
    fn dropped_enqueue_recycle_does_not_leak_flow_id() {
        // The Enqueue::Dropped path hands the rejected box back for
        // recycling; the next allocation must carry only the fresh
        // packet's flow id.
        let mut port = crate::port::Port::new(
            crate::topology::LinkCfg::new(10_000_000_000, hermes_sim::Time::from_us(1)),
            1_000_000,
            100, // buffer smaller than one packet: every enqueue drops
        );
        let mut pool = PacketPool::new();
        let mut doomed = pool.boxed(pkt(5));
        doomed.flow = FlowId(1234);
        match port.enqueue(doomed) {
            crate::port::Enqueue::Dropped(b) => pool.recycle(b),
            crate::port::Enqueue::Queued => panic!("expected tail drop"),
        }
        let reused = pool.boxed(Packet::data(
            FlowId(2),
            HostId(0),
            HostId(1),
            0,
            1460,
            false,
        ));
        assert_eq!(reused.flow, FlowId(2), "stale flow id leaked through reuse");
        assert_ne!(reused.flow, FlowId(1234));
    }

    #[test]
    fn empty_pool_allocates_fresh() {
        let mut pool = PacketPool::new();
        assert_eq!(pool.free_len(), 0);
        let _a = pool.boxed(pkt(0));
        let _b = pool.boxed(pkt(1));
        assert_eq!(pool.stats().fresh, 2);
        assert_eq!(pool.stats().reused, 0);
    }
}
