//! Runtime auditing: packet-conservation accounting, rolling
//! event-trace digests for determinism self-checks, and (behind the
//! `audit` feature) an exact per-packet ledger.
//!
//! The always-on pieces are O(1) per event — a couple of counters and,
//! when a caller asks, one census over the fabric's ports — so they run
//! in every build. The ledger tracks the precise set of outstanding
//! packet ids and is compiled in only with `--features audit`.

use std::fmt;

use hermes_sim::Time;

use crate::fabric::Event;
use crate::types::NodeId;

/// Rolling FNV-1a (64-bit) over a stream of words.
///
/// Used to fingerprint an entire event trace: feeding every dispatched
/// event through [`digest_event`] yields a single value that two
/// same-seed runs must reproduce exactly. Any divergence — a reordered
/// event, a different packet id, a shifted timestamp — changes the
/// digest with overwhelming probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnvDigest(u64);

impl Default for FnvDigest {
    fn default() -> FnvDigest {
        FnvDigest::new()
    }
}

impl FnvDigest {
    /// The FNV-1a offset basis.
    pub fn new() -> FnvDigest {
        FnvDigest(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb one word (little-endian byte order).
    #[inline]
    pub fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The digest so far.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

fn node_code(n: NodeId) -> u64 {
    match n {
        NodeId::Host(h) => u64::from(h.0),
        NodeId::Leaf(l) => (1 << 32) | u64::from(l.0),
        NodeId::Spine(s) => (2 << 32) | u64::from(s.0),
    }
}

/// Absorb one dispatched event (with its dispatch time) into `d`.
///
/// The encoding covers everything that identifies the event — kind,
/// location, packet identity, timer token — so the digest pins the full
/// event interleaving, not just the event count.
pub fn digest_event(d: &mut FnvDigest, at: Time, ev: &Event) {
    d.push(at.as_ns());
    match ev {
        Event::TxDone { node, port } => {
            d.push(1);
            d.push(node_code(*node));
            d.push(*port as u64);
        }
        Event::Arrive { node, pkt } => {
            d.push(2);
            d.push(node_code(*node));
            d.push(pkt.id);
            d.push(pkt.flow.0);
        }
        Event::HostTimer { host, token } => {
            d.push(3);
            d.push(u64::from(host.0));
            d.push(*token);
        }
        Event::Global { token } => {
            d.push(4);
            d.push(*token);
        }
    }
}

/// Encode one dispatched event into digest words — the exact stream
/// [`digest_event`] folds, exposed so the offload sink can ship the
/// words to a worker thread and fold them there in the same order.
/// Differentially tested against [`digest_event`] below.
#[inline]
pub fn push_event_words(buf: &mut Vec<u64>, at: Time, ev: &Event) {
    buf.push(at.as_ns());
    match ev {
        Event::TxDone { node, port } => {
            buf.push(1);
            buf.push(node_code(*node));
            buf.push(*port as u64);
        }
        Event::Arrive { node, pkt } => {
            buf.push(2);
            buf.push(node_code(*node));
            buf.push(pkt.id);
            buf.push(pkt.flow.0);
        }
        Event::HostTimer { host, token } => {
            buf.push(3);
            buf.push(u64::from(host.0));
            buf.push(*token);
        }
        Event::Global { token } => {
            buf.push(4);
            buf.push(*token);
        }
    }
}

/// Words buffered per batch before the offload sink ships them to its
/// worker — big enough to amortize the channel, small enough that the
/// worker stays warm behind the dispatch loop.
const SINK_BATCH_WORDS: usize = 4096;

/// The event-trace digest pipeline: inline (fold on the dispatch
/// thread, today's behavior) or offloaded (ship encoded words over a
/// FIFO channel to a dedicated folding thread).
///
/// Both modes produce the *identical* digest for the identical event
/// stream: the encoding is shared ([`push_event_words`] vs
/// [`digest_event`]) and the channel preserves order from the single
/// producer, so offloading is invisible to every golden. An offloaded
/// sink's [`DigestSink::value`] is only final after [`DigestSink::seal`]
/// joins the worker; mid-run reads see the words folded so far locally
/// (always the FNV basis until seal).
pub struct DigestSink {
    local: FnvDigest,
    buf: Vec<u64>,
    tx: Option<std::sync::mpsc::Sender<Vec<u64>>>,
    worker: Option<std::thread::JoinHandle<FnvDigest>>,
}

impl Default for DigestSink {
    fn default() -> DigestSink {
        DigestSink::inline()
    }
}

impl DigestSink {
    /// Fold events on the calling thread (the single-thread fast path).
    pub fn inline() -> DigestSink {
        DigestSink {
            local: FnvDigest::new(),
            buf: Vec::new(),
            tx: None,
            worker: None,
        }
    }

    /// Spawn a folding worker and ship encoded words to it in batches.
    pub fn offload() -> DigestSink {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u64>>();
        let worker = std::thread::spawn(move || {
            let mut d = FnvDigest::new();
            while let Ok(batch) = rx.recv() {
                for w in batch {
                    d.push(w);
                }
            }
            d
        });
        DigestSink {
            local: FnvDigest::new(),
            buf: Vec::with_capacity(SINK_BATCH_WORDS),
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Whether a worker thread is folding this sink's words.
    pub fn is_offloaded(&self) -> bool {
        self.worker.is_some()
    }

    /// Absorb one dispatched event (with its dispatch time).
    #[inline]
    pub fn record(&mut self, at: Time, ev: &Event) {
        if self.tx.is_some() {
            push_event_words(&mut self.buf, at, ev);
            if self.buf.len() >= SINK_BATCH_WORDS {
                self.flush();
            }
        } else {
            digest_event(&mut self.local, at, ev);
        }
    }

    /// Ship the buffered words to the worker.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(SINK_BATCH_WORDS));
        if let Some(tx) = &self.tx {
            // A dead worker is a panic in the fold loop; surface it at
            // seal time via the join, not here.
            let _ = tx.send(batch);
        }
    }

    /// Finish an offloaded stream: flush, close the channel, join the
    /// worker and adopt its digest. Idempotent; a no-op for inline
    /// sinks.
    pub fn seal(&mut self) {
        self.flush();
        self.tx = None; // close the channel so the worker drains out
        if let Some(worker) = self.worker.take() {
            self.local = worker.join().expect("digest worker panicked");
        }
    }

    /// The digest value (final only after [`DigestSink::seal`] for
    /// offloaded sinks).
    pub fn value(&self) -> u64 {
        self.local.value()
    }
}

impl Drop for DigestSink {
    fn drop(&mut self) {
        // Never leak a detached folding thread.
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Two independent accountings of every packet the fabric ever saw.
///
/// The global counters (`injected`, `delivered`, `drops_*`) are bumped
/// at injection and retirement; `in_flight` is a physical census of
/// where packets currently sit (port queues, serialization, link
/// propagation). Conservation demands the two agree at *every* instant:
/// a packet that leaks (dropped without accounting, delivered twice,
/// forgotten in a queue) breaks [`ConservationReport::balanced`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConservationReport {
    /// Packets handed to the fabric by hosts.
    pub injected: u64,
    /// Packets delivered to destination hosts.
    pub delivered: u64,
    /// Packets destroyed by injected switch failures.
    pub drops_failure: u64,
    /// Packets dropped because no live path existed.
    pub drops_disconnected: u64,
    /// Packets tail-dropped at full port buffers.
    pub drops_full: u64,
    /// Census of packets physically inside the fabric right now
    /// (queued, serializing, or propagating on a link).
    pub in_flight: u64,
}

impl ConservationReport {
    /// Total packets dropped, for any reason.
    pub fn dropped(&self) -> u64 {
        self.drops_failure + self.drops_disconnected + self.drops_full
    }

    /// Whether every injected packet is accounted for.
    pub fn balanced(&self) -> bool {
        self.injected == self.delivered + self.dropped() + self.in_flight
    }
}

impl fmt::Display for ConservationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} delivered={} drops(failure={}, disconnected={}, full={}) in_flight={}{}",
            self.injected,
            self.delivered,
            self.drops_failure,
            self.drops_disconnected,
            self.drops_full,
            self.in_flight,
            if self.balanced() { "" } else { " [IMBALANCED]" }
        )
    }
}

/// Exact per-packet ledger: the set of packet ids that are inside the
/// fabric. Catches duplicate ids, double deliveries, and drops of
/// packets that were never injected — failure modes the aggregate
/// counters can cancel out.
#[cfg(feature = "audit")]
#[derive(Debug, Default)]
pub struct Ledger {
    outstanding: std::collections::BTreeSet<u64>,
}

#[cfg(feature = "audit")]
impl Ledger {
    /// A packet entered the fabric.
    pub fn injected(&mut self, id: u64) {
        assert!(self.outstanding.insert(id), "packet id {id} injected twice");
    }

    /// A packet left the fabric (delivered or dropped, any cause).
    pub fn retired(&mut self, id: u64) {
        assert!(
            self.outstanding.remove(&id),
            "packet {id} retired twice or never injected"
        );
    }

    /// How many packets are currently inside the fabric.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{FlowId, HostId, LeafId};

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = FnvDigest::new();
        let mut b = FnvDigest::new();
        let mut c = FnvDigest::new();
        for v in [1u64, 2, 3] {
            a.push(v);
            b.push(v);
        }
        for v in [3u64, 2, 1] {
            c.push(v);
        }
        assert_eq!(a.value(), b.value());
        assert_ne!(a.value(), c.value(), "permuted stream must differ");
        assert_ne!(FnvDigest::new().value(), a.value());
    }

    #[test]
    fn event_encoding_separates_kinds_and_fields() {
        let now = Time::from_us(5);
        let mk = |ev: &Event| {
            let mut d = FnvDigest::new();
            digest_event(&mut d, now, ev);
            d.value()
        };
        let tx = Event::TxDone {
            node: NodeId::Leaf(LeafId(1)),
            port: 2,
        };
        let tx2 = Event::TxDone {
            node: NodeId::Spine(crate::types::SpineId(1)),
            port: 2,
        };
        let timer = Event::HostTimer {
            host: HostId(1),
            token: 2,
        };
        let global = Event::Global { token: 2 };
        let arrive = Event::Arrive {
            node: NodeId::Host(HostId(1)),
            pkt: Box::new(Packet::data(
                FlowId(9),
                HostId(0),
                HostId(1),
                0,
                1460,
                false,
            )),
        };
        let vals = [mk(&tx), mk(&tx2), mk(&timer), mk(&global), mk(&arrive)];
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                assert_ne!(vals[i], vals[j], "events {i} and {j} collide");
            }
        }
    }

    /// The fixture events used to drive both digest encodings.
    fn fixture_events() -> Vec<(Time, Event)> {
        let mut evs = Vec::new();
        for i in 0..10u64 {
            let t = Time::from_us(i);
            evs.push((
                t,
                Event::TxDone {
                    node: NodeId::Leaf(LeafId(i as u16 % 3)),
                    port: i as usize % 4,
                },
            ));
            evs.push((
                t,
                Event::Arrive {
                    node: NodeId::Host(HostId(i as u32)),
                    pkt: Box::new(Packet::data(
                        FlowId(i),
                        HostId(0),
                        HostId(1),
                        i,
                        1460,
                        false,
                    )),
                },
            ));
            evs.push((
                t,
                Event::HostTimer {
                    host: HostId(i as u32),
                    token: i,
                },
            ));
            evs.push((t, Event::Global { token: i }));
        }
        evs
    }

    #[test]
    fn push_event_words_matches_digest_event_exactly() {
        // The offload sink's word encoding and the inline fold must be
        // the same function observed two ways — any drift would split
        // digests between thread counts.
        let mut inline = FnvDigest::new();
        let mut via_words = FnvDigest::new();
        let mut buf = Vec::new();
        for (t, ev) in fixture_events() {
            digest_event(&mut inline, t, &ev);
            push_event_words(&mut buf, t, &ev);
        }
        for w in buf {
            via_words.push(w);
        }
        assert_eq!(inline.value(), via_words.value());
    }

    #[test]
    fn offloaded_sink_equals_inline_sink() {
        let mut a = DigestSink::inline();
        let mut b = DigestSink::offload();
        assert!(!a.is_offloaded());
        assert!(b.is_offloaded());
        for (t, ev) in fixture_events() {
            a.record(t, &ev);
            b.record(t, &ev);
        }
        b.seal();
        b.seal(); // idempotent
        assert_eq!(a.value(), b.value());
        assert!(!b.is_offloaded(), "seal joins the worker");
    }

    #[test]
    fn report_balance_arithmetic() {
        let mut r = ConservationReport {
            injected: 100,
            delivered: 80,
            drops_failure: 5,
            drops_disconnected: 3,
            drops_full: 2,
            in_flight: 10,
        };
        assert!(r.balanced());
        assert_eq!(r.dropped(), 10);
        r.delivered += 1; // a phantom delivery breaks the balance
        assert!(!r.balanced());
        assert!(r.to_string().contains("IMBALANCED"));
    }

    #[cfg(feature = "audit")]
    #[test]
    fn ledger_tracks_outstanding_exactly() {
        let mut l = Ledger::default();
        l.injected(1);
        l.injected(2);
        assert_eq!(l.outstanding(), 2);
        l.retired(1);
        assert_eq!(l.outstanding(), 1);
    }

    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "retired twice")]
    fn ledger_rejects_double_retirement() {
        let mut l = Ledger::default();
        l.injected(1);
        l.retired(1);
        l.retired(1);
    }
}
