//! Time-triggered fault schedules — the "chaos schedule".
//!
//! The static failure API ([`crate::Fabric::set_spine_failure`]) can
//! only break the fabric before a run starts, which cannot reproduce the
//! paper's transient story: a switch starts misbehaving mid-run, Hermes
//! detects and evacuates, the operator fixes it, and traffic returns
//! (§2.1's "in the wild" failures, §5.3.3's evaluation). A [`FaultPlan`]
//! is a declarative list of *(simulation time, fault action)* pairs that
//! the runtime replays through the one shared event queue, so fault
//! injection obeys the determinism contract like every other event:
//!
//! * spine failure **onset and clearance** (blackholes, silent random
//!   drops, and stepwise drop-rate ramps),
//! * leaf↔spine link **degrade/restore** and periodic link **flapping**,
//! * whole-spine **down/up** (maintenance or crash-and-reboot).
//!
//! The plan itself never touches the fabric — it is pure data. The
//! runtime schedules one `Global` event per entry and applies it via
//! [`crate::Fabric::apply_fault`] when the event fires; mutating the
//! fabric from anywhere else bypasses the event trace and is flagged by
//! the workspace lint (`fault-mutation`).

use hermes_sim::Time;

use crate::failure::SpineFailure;
use crate::types::{LeafId, SpineId};

/// One atomic change to the fabric's health.
#[derive(Clone, Copy, Debug)]
pub enum FaultAction {
    /// Install (or replace) a spine's failure mode.
    SetSpineFailure {
        spine: SpineId,
        failure: SpineFailure,
    },
    /// Restore a spine to [`SpineFailure::healthy`].
    ClearSpineFailure { spine: SpineId },
    /// Sever one leaf↔spine link (both directions); packets forwarded
    /// onto it are destroyed until the matching [`FaultAction::LinkUp`].
    LinkDown { leaf: LeafId, spine: SpineId },
    /// Bring a downed leaf↔spine link back.
    LinkUp { leaf: LeafId, spine: SpineId },
    /// Change a leaf↔spine link's rate mid-run (degrade or upgrade);
    /// marking threshold and buffer are rescaled with the rate.
    SetLinkRate {
        leaf: LeafId,
        spine: SpineId,
        rate_bps: u64,
    },
    /// Restore a leaf↔spine link to its topology-configured rate.
    RestoreLinkRate { leaf: LeafId, spine: SpineId },
    /// Take a whole spine out of service: every live link to it drops.
    SpineDown { spine: SpineId },
    /// Return a whole spine to service.
    SpineUp { spine: SpineId },
}

/// A fault action bound to a simulation instant.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    pub at: Time,
    pub action: FaultAction,
}

/// A deterministic schedule of fault events.
///
/// Events fire in time order; events sharing an instant apply in
/// insertion order (the event queue is FIFO among equal timestamps).
/// Builders are chainable and expand compound scenarios (windows,
/// ramps, flapping) into plain event lists at build time, so the
/// resulting plan is a static, auditable value — printable, cloneable,
/// and identical on every run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled event (`Time::ZERO` if empty).
    pub fn end_time(&self) -> Time {
        self.events.iter().map(|e| e.at).max().unwrap_or(Time::ZERO)
    }

    /// Schedule one raw action.
    pub fn at(mut self, at: Time, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// A blackhole on `spine` for `src_leaf → dst_leaf` pairs, active
    /// over `[onset, clear)`.
    pub fn blackhole_window(
        self,
        spine: SpineId,
        src_leaf: LeafId,
        dst_leaf: LeafId,
        pair_fraction: f64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        self.at(
            onset,
            FaultAction::SetSpineFailure {
                spine,
                failure: SpineFailure::blackhole(src_leaf, dst_leaf, pair_fraction),
            },
        )
        .at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// Silent random drops at `rate` on `spine` over `[onset, clear)`.
    pub fn random_drop_window(
        self,
        spine: SpineId,
        rate: f64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        self.at(
            onset,
            FaultAction::SetSpineFailure {
                spine,
                failure: SpineFailure::random_drops(rate),
            },
        )
        .at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// A drop-rate ramp: the spine's silent-drop probability climbs from
    /// `peak/steps` to `peak` in `steps` equal increments spread across
    /// `[onset, clear)`, then clears at `clear` — the "slowly dying
    /// linecard" pattern where loss starts marginal and worsens.
    pub fn drop_rate_ramp(
        mut self,
        spine: SpineId,
        peak: f64,
        onset: Time,
        clear: Time,
        steps: u32,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        assert!(steps >= 1, "a ramp needs at least one step");
        assert!((0.0..=1.0).contains(&peak), "peak drop rate out of range");
        let span = clear - onset;
        for k in 0..steps {
            let at = onset + span.mul_f64(f64::from(k) / f64::from(steps));
            let rate = peak * f64::from(k + 1) / f64::from(steps);
            self = self.at(
                at,
                FaultAction::SetSpineFailure {
                    spine,
                    failure: SpineFailure::random_drops(rate),
                },
            );
        }
        self.at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// Degrade one leaf↔spine link to `rate_bps` over `[onset, clear)`,
    /// then restore its topology-configured rate.
    pub fn link_degrade_window(
        self,
        leaf: LeafId,
        spine: SpineId,
        rate_bps: u64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        assert!(rate_bps > 0, "a degraded link still needs a rate");
        self.at(
            onset,
            FaultAction::SetLinkRate {
                leaf,
                spine,
                rate_bps,
            },
        )
        .at(clear, FaultAction::RestoreLinkRate { leaf, spine })
    }

    /// Periodic link flapping: starting at `first_down`, the link goes
    /// down for `downtime` once every `period`, with the last flap
    /// starting strictly before `until`. Expanded into explicit
    /// down/up event pairs so the plan stays a flat, inspectable list.
    pub fn link_flap(
        mut self,
        leaf: LeafId,
        spine: SpineId,
        first_down: Time,
        downtime: Time,
        period: Time,
        until: Time,
    ) -> FaultPlan {
        assert!(
            downtime > Time::ZERO && downtime < period,
            "flap must spend time up and down"
        );
        let mut down_at = first_down;
        while down_at < until {
            self = self
                .at(down_at, FaultAction::LinkDown { leaf, spine })
                .at(down_at + downtime, FaultAction::LinkUp { leaf, spine });
            down_at += period;
        }
        self
    }

    /// A whole-spine outage over `[down_at, up_at)`.
    pub fn spine_outage(self, spine: SpineId, down_at: Time, up_at: Time) -> FaultPlan {
        assert!(down_at < up_at, "outage must have positive length");
        self.at(down_at, FaultAction::SpineDown { spine })
            .at(up_at, FaultAction::SpineUp { spine })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_expand_to_onset_and_clear() {
        let plan = FaultPlan::new().blackhole_window(
            SpineId(2),
            LeafId(0),
            LeafId(7),
            0.5,
            Time::from_ms(100),
            Time::from_ms(300),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, Time::from_ms(100));
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::SetSpineFailure {
                spine: SpineId(2),
                ..
            }
        ));
        assert!(matches!(
            plan.events()[1].action,
            FaultAction::ClearSpineFailure { spine: SpineId(2) }
        ));
        assert_eq!(plan.end_time(), Time::from_ms(300));
    }

    #[test]
    fn ramp_is_monotone_and_hits_peak() {
        let plan = FaultPlan::new().drop_rate_ramp(
            SpineId(0),
            0.08,
            Time::from_ms(10),
            Time::from_ms(50),
            4,
        );
        assert_eq!(plan.len(), 5); // 4 steps + clear
        let mut last_rate = 0.0;
        let mut last_at = Time::ZERO;
        for e in &plan.events()[..4] {
            let FaultAction::SetSpineFailure { failure, .. } = e.action else {
                panic!("ramp step must set a failure");
            };
            assert!(failure.random_drop > last_rate, "ramp must climb");
            assert!(e.at >= last_at, "ramp must move forward in time");
            last_rate = failure.random_drop;
            last_at = e.at;
        }
        assert!((last_rate - 0.08).abs() < 1e-12, "final step is the peak");
        assert!(matches!(
            plan.events()[4].action,
            FaultAction::ClearSpineFailure { .. }
        ));
    }

    #[test]
    fn flap_expands_into_paired_events_within_bounds() {
        let plan = FaultPlan::new().link_flap(
            LeafId(1),
            SpineId(3),
            Time::from_ms(10),
            Time::from_ms(2),
            Time::from_ms(10),
            Time::from_ms(40),
        );
        // Flaps start at 10, 20, 30 ms (40 is not < until).
        assert_eq!(plan.len(), 6);
        for pair in plan.events().chunks(2) {
            assert!(matches!(pair[0].action, FaultAction::LinkDown { .. }));
            assert!(matches!(pair[1].action, FaultAction::LinkUp { .. }));
            assert_eq!(pair[1].at - pair[0].at, Time::from_ms(2));
        }
        assert_eq!(plan.end_time(), Time::from_ms(32));
    }

    #[test]
    #[should_panic]
    fn inverted_window_is_rejected() {
        let _ = FaultPlan::new().random_drop_window(
            SpineId(0),
            0.02,
            Time::from_ms(5),
            Time::from_ms(5),
        );
    }

    #[test]
    fn compound_plans_keep_insertion_order_within_an_instant() {
        let t = Time::from_ms(7);
        let plan = FaultPlan::new()
            .at(t, FaultAction::SpineDown { spine: SpineId(1) })
            .at(t, FaultAction::SpineUp { spine: SpineId(1) });
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::SpineDown { .. }
        ));
        assert!(matches!(
            plan.events()[1].action,
            FaultAction::SpineUp { .. }
        ));
    }
}
