//! Time-triggered fault schedules — the "chaos schedule".
//!
//! The static failure API ([`crate::Fabric::set_spine_failure`]) can
//! only break the fabric before a run starts, which cannot reproduce the
//! paper's transient story: a switch starts misbehaving mid-run, Hermes
//! detects and evacuates, the operator fixes it, and traffic returns
//! (§2.1's "in the wild" failures, §5.3.3's evaluation). A [`FaultPlan`]
//! is a declarative list of *(simulation time, fault action)* pairs that
//! the runtime replays through the one shared event queue, so fault
//! injection obeys the determinism contract like every other event:
//!
//! * spine failure **onset and clearance** (blackholes, silent random
//!   drops, and stepwise drop-rate ramps),
//! * leaf↔spine link **degrade/restore** and periodic link **flapping**,
//! * whole-spine **down/up** (maintenance or crash-and-reboot).
//!
//! The plan itself never touches the fabric — it is pure data. The
//! runtime schedules one `Global` event per entry and applies it via
//! [`crate::Fabric::apply_fault`] when the event fires; mutating the
//! fabric from anywhere else bypasses the event trace and is flagged by
//! the workspace lint (`fault-mutation`).

use std::collections::BTreeMap;

use hermes_sim::Time;

use crate::failure::SpineFailure;
use crate::types::{LeafId, SpineId};

/// One atomic change to the fabric's health.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Install (or replace) a spine's failure mode.
    SetSpineFailure {
        spine: SpineId,
        failure: SpineFailure,
    },
    /// Restore a spine to [`SpineFailure::healthy`].
    ClearSpineFailure { spine: SpineId },
    /// Merge a per-victim-flow partial blackhole into a spine's failure
    /// state, leaving its other failure modes (random drops, pair
    /// blackhole, ECN mute) untouched — unlike `SetSpineFailure`, which
    /// replaces the whole state. This is what lets sampled chaos plans
    /// overlay independent gray failures on one switch.
    FlowBlackhole {
        spine: SpineId,
        victim_fraction: f64,
    },
    /// Merge ECN mute into a spine's failure state: the switch keeps
    /// forwarding but stops CE-marking (sensing deprivation).
    EcnMute { spine: SpineId },
    /// Clear only the ECN mute, leaving other failure modes in place.
    EcnUnmute { spine: SpineId },
    /// Sever one leaf↔spine link (both directions); packets forwarded
    /// onto it are destroyed until the matching [`FaultAction::LinkUp`].
    LinkDown { leaf: LeafId, spine: SpineId },
    /// Bring a downed leaf↔spine link back.
    LinkUp { leaf: LeafId, spine: SpineId },
    /// Change a leaf↔spine link's rate mid-run (degrade or upgrade);
    /// marking threshold and buffer are rescaled with the rate.
    SetLinkRate {
        leaf: LeafId,
        spine: SpineId,
        rate_bps: u64,
    },
    /// Restore a leaf↔spine link to its topology-configured rate.
    RestoreLinkRate { leaf: LeafId, spine: SpineId },
    /// Take a whole spine out of service: every live link to it drops.
    SpineDown { spine: SpineId },
    /// Return a whole spine to service.
    SpineUp { spine: SpineId },
}

/// A fault action bound to a simulation instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    pub at: Time,
    pub action: FaultAction,
}

/// A deterministic schedule of fault events.
///
/// Events fire in time order; events sharing an instant apply in
/// insertion order (the event queue is FIFO among equal timestamps).
/// Builders are chainable and expand compound scenarios (windows,
/// ramps, flapping) into plain event lists at build time, so the
/// resulting plan is a static, auditable value — printable, cloneable,
/// and identical on every run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Why a [`FaultPlan`] is not applicable to any fabric — returned by
/// [`FaultPlan::validate`]. Each variant names the first offending
/// event's time so a generated plan can be triaged by reading it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanError {
    /// A `LinkUp` with no preceding `LinkDown` on that link.
    LinkUpWithoutDown {
        leaf: LeafId,
        spine: SpineId,
        at: Time,
    },
    /// A `LinkDown` on a link that is already down — two contradictory
    /// overlapping windows on the same link (the matching `LinkUp` of
    /// the first window would half-revert the second).
    LinkAlreadyDown {
        leaf: LeafId,
        spine: SpineId,
        at: Time,
    },
    /// A `SpineUp` with no preceding `SpineDown` on that spine.
    SpineUpWithoutDown { spine: SpineId, at: Time },
    /// A `SpineDown` on a spine that is already out of service.
    SpineAlreadyDown { spine: SpineId, at: Time },
    /// A probability/fraction outside `[0, 1]` (`what` names the field).
    FractionOutOfRange {
        what: &'static str,
        value: f64,
        at: Time,
    },
    /// A `SetLinkRate` to 0 bps — a dead link must use `LinkDown`.
    ZeroLinkRate {
        leaf: LeafId,
        spine: SpineId,
        at: Time,
    },
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            PlanError::LinkUpWithoutDown { leaf, spine, at } => write!(
                f,
                "LinkUp at {at} for leaf {} / spine {} without a prior LinkDown",
                leaf.0, spine.0
            ),
            PlanError::LinkAlreadyDown { leaf, spine, at } => write!(
                f,
                "LinkDown at {at} for leaf {} / spine {} overlaps an earlier down window",
                leaf.0, spine.0
            ),
            PlanError::SpineUpWithoutDown { spine, at } => write!(
                f,
                "SpineUp at {at} for spine {} without a prior SpineDown",
                spine.0
            ),
            PlanError::SpineAlreadyDown { spine, at } => write!(
                f,
                "SpineDown at {at} for spine {} overlaps an earlier outage",
                spine.0
            ),
            PlanError::FractionOutOfRange { what, value, at } => {
                write!(f, "{what} = {value} at {at} is outside [0, 1]")
            }
            PlanError::ZeroLinkRate { leaf, spine, at } => write!(
                f,
                "SetLinkRate to 0 bps at {at} for leaf {} / spine {}; use LinkDown for a dead link",
                leaf.0, spine.0
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled event (`Time::ZERO` if empty).
    pub fn end_time(&self) -> Time {
        self.events.iter().map(|e| e.at).max().unwrap_or(Time::ZERO)
    }

    /// Schedule one raw action.
    pub fn at(mut self, at: Time, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// A blackhole on `spine` for `src_leaf → dst_leaf` pairs, active
    /// over `[onset, clear)`.
    pub fn blackhole_window(
        self,
        spine: SpineId,
        src_leaf: LeafId,
        dst_leaf: LeafId,
        pair_fraction: f64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        self.at(
            onset,
            FaultAction::SetSpineFailure {
                spine,
                failure: SpineFailure::blackhole(src_leaf, dst_leaf, pair_fraction),
            },
        )
        .at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// Silent random drops at `rate` on `spine` over `[onset, clear)`.
    pub fn random_drop_window(
        self,
        spine: SpineId,
        rate: f64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        self.at(
            onset,
            FaultAction::SetSpineFailure {
                spine,
                failure: SpineFailure::random_drops(rate),
            },
        )
        .at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// A drop-rate ramp: the spine's silent-drop probability climbs from
    /// `peak/steps` to `peak` in `steps` equal increments spread across
    /// `[onset, clear)`, then clears at `clear` — the "slowly dying
    /// linecard" pattern where loss starts marginal and worsens.
    pub fn drop_rate_ramp(
        mut self,
        spine: SpineId,
        peak: f64,
        onset: Time,
        clear: Time,
        steps: u32,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        assert!(steps >= 1, "a ramp needs at least one step");
        assert!((0.0..=1.0).contains(&peak), "peak drop rate out of range");
        let span = clear - onset;
        for k in 0..steps {
            let at = onset + span.mul_f64(f64::from(k) / f64::from(steps));
            let rate = peak * f64::from(k + 1) / f64::from(steps);
            self = self.at(
                at,
                FaultAction::SetSpineFailure {
                    spine,
                    failure: SpineFailure::random_drops(rate),
                },
            );
        }
        self.at(clear, FaultAction::ClearSpineFailure { spine })
    }

    /// Degrade one leaf↔spine link to `rate_bps` over `[onset, clear)`,
    /// then restore its topology-configured rate.
    pub fn link_degrade_window(
        self,
        leaf: LeafId,
        spine: SpineId,
        rate_bps: u64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        assert!(rate_bps > 0, "a degraded link still needs a rate");
        self.at(
            onset,
            FaultAction::SetLinkRate {
                leaf,
                spine,
                rate_bps,
            },
        )
        .at(clear, FaultAction::RestoreLinkRate { leaf, spine })
    }

    /// Periodic link flapping: starting at `first_down`, the link goes
    /// down for `downtime` once every `period`, with the last flap
    /// starting strictly before `until`. Expanded into explicit
    /// down/up event pairs so the plan stays a flat, inspectable list.
    pub fn link_flap(
        mut self,
        leaf: LeafId,
        spine: SpineId,
        first_down: Time,
        downtime: Time,
        period: Time,
        until: Time,
    ) -> FaultPlan {
        assert!(
            downtime > Time::ZERO && downtime < period,
            "flap must spend time up and down"
        );
        let mut down_at = first_down;
        while down_at < until {
            self = self
                .at(down_at, FaultAction::LinkDown { leaf, spine })
                .at(down_at + downtime, FaultAction::LinkUp { leaf, spine });
            down_at += period;
        }
        self
    }

    /// A whole-spine outage over `[down_at, up_at)`.
    pub fn spine_outage(self, spine: SpineId, down_at: Time, up_at: Time) -> FaultPlan {
        assert!(down_at < up_at, "outage must have positive length");
        self.at(down_at, FaultAction::SpineDown { spine })
            .at(up_at, FaultAction::SpineUp { spine })
    }

    /// A per-victim-flow partial blackhole on `spine` over
    /// `[onset, clear)`. The clear merges `victim_fraction = 0` back in
    /// rather than wiping the spine's whole failure state, so an
    /// overlapping window of a different failure mode survives.
    pub fn flow_blackhole_window(
        self,
        spine: SpineId,
        victim_fraction: f64,
        onset: Time,
        clear: Time,
    ) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        assert!(
            (0.0..=1.0).contains(&victim_fraction),
            "victim_fraction out of range"
        );
        self.at(
            onset,
            FaultAction::FlowBlackhole {
                spine,
                victim_fraction,
            },
        )
        .at(
            clear,
            FaultAction::FlowBlackhole {
                spine,
                victim_fraction: 0.0,
            },
        )
    }

    /// An ECN mute on `spine` over `[onset, clear)`: the switch keeps
    /// forwarding but stops CE-marking until the window closes.
    pub fn ecn_mute_window(self, spine: SpineId, onset: Time, clear: Time) -> FaultPlan {
        assert!(onset < clear, "fault window must have positive length");
        self.at(onset, FaultAction::EcnMute { spine })
            .at(clear, FaultAction::EcnUnmute { spine })
    }

    /// Check the plan is applicable to *some* fabric: link and spine
    /// up/down events pair correctly (no `LinkUp` without a prior
    /// `LinkDown`, no contradictory overlapping down windows on the
    /// same link or spine) and every probability/fraction/rate is in
    /// range. Events are checked in the order the runtime will apply
    /// them: by time, insertion order within an instant.
    ///
    /// The chainable builders already enforce these shapes, but a plan
    /// assembled from raw [`FaultPlan::at`] calls — or sampled and
    /// mutated by the chaos shrinker — can violate them; until now such
    /// plans were silently accepted and produced nonsense runs. The
    /// runtime calls this when a plan is installed and refuses invalid
    /// plans.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut order: Vec<&FaultEvent> = self.events.iter().collect();
        order.sort_by_key(|e| e.at); // stable: insertion order within an instant
        let mut link_down: BTreeMap<(u16, u16), bool> = BTreeMap::new();
        let mut spine_down: BTreeMap<u16, bool> = BTreeMap::new();
        let frac_ok = |v: f64| (0.0..=1.0).contains(&v);
        for ev in order {
            let at = ev.at;
            match ev.action {
                FaultAction::SetSpineFailure { failure, .. } => {
                    if !frac_ok(failure.random_drop) {
                        return Err(PlanError::FractionOutOfRange {
                            what: "random_drop",
                            value: failure.random_drop,
                            at,
                        });
                    }
                    if let Some(bh) = failure.blackhole {
                        if !frac_ok(bh.pair_fraction) {
                            return Err(PlanError::FractionOutOfRange {
                                what: "pair_fraction",
                                value: bh.pair_fraction,
                                at,
                            });
                        }
                    }
                    if let Some(fb) = failure.flow_blackhole {
                        if !frac_ok(fb.victim_fraction) {
                            return Err(PlanError::FractionOutOfRange {
                                what: "victim_fraction",
                                value: fb.victim_fraction,
                                at,
                            });
                        }
                    }
                }
                FaultAction::FlowBlackhole {
                    victim_fraction, ..
                } => {
                    if !frac_ok(victim_fraction) {
                        return Err(PlanError::FractionOutOfRange {
                            what: "victim_fraction",
                            value: victim_fraction,
                            at,
                        });
                    }
                }
                FaultAction::LinkDown { leaf, spine } => {
                    let down = link_down.entry((leaf.0, spine.0)).or_insert(false);
                    if *down {
                        return Err(PlanError::LinkAlreadyDown { leaf, spine, at });
                    }
                    *down = true;
                }
                FaultAction::LinkUp { leaf, spine } => {
                    let down = link_down.entry((leaf.0, spine.0)).or_insert(false);
                    if !*down {
                        return Err(PlanError::LinkUpWithoutDown { leaf, spine, at });
                    }
                    *down = false;
                }
                FaultAction::SetLinkRate {
                    leaf,
                    spine,
                    rate_bps,
                } => {
                    if rate_bps == 0 {
                        return Err(PlanError::ZeroLinkRate { leaf, spine, at });
                    }
                }
                FaultAction::SpineDown { spine } => {
                    let down = spine_down.entry(spine.0).or_insert(false);
                    if *down {
                        return Err(PlanError::SpineAlreadyDown { spine, at });
                    }
                    *down = true;
                }
                FaultAction::SpineUp { spine } => {
                    let down = spine_down.entry(spine.0).or_insert(false);
                    if !*down {
                        return Err(PlanError::SpineUpWithoutDown { spine, at });
                    }
                    *down = false;
                }
                FaultAction::ClearSpineFailure { .. }
                | FaultAction::EcnMute { .. }
                | FaultAction::EcnUnmute { .. }
                | FaultAction::RestoreLinkRate { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_expand_to_onset_and_clear() {
        let plan = FaultPlan::new().blackhole_window(
            SpineId(2),
            LeafId(0),
            LeafId(7),
            0.5,
            Time::from_ms(100),
            Time::from_ms(300),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, Time::from_ms(100));
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::SetSpineFailure {
                spine: SpineId(2),
                ..
            }
        ));
        assert!(matches!(
            plan.events()[1].action,
            FaultAction::ClearSpineFailure { spine: SpineId(2) }
        ));
        assert_eq!(plan.end_time(), Time::from_ms(300));
    }

    #[test]
    fn ramp_is_monotone_and_hits_peak() {
        let plan = FaultPlan::new().drop_rate_ramp(
            SpineId(0),
            0.08,
            Time::from_ms(10),
            Time::from_ms(50),
            4,
        );
        assert_eq!(plan.len(), 5); // 4 steps + clear
        let mut last_rate = 0.0;
        let mut last_at = Time::ZERO;
        for e in &plan.events()[..4] {
            let FaultAction::SetSpineFailure { failure, .. } = e.action else {
                panic!("ramp step must set a failure");
            };
            assert!(failure.random_drop > last_rate, "ramp must climb");
            assert!(e.at >= last_at, "ramp must move forward in time");
            last_rate = failure.random_drop;
            last_at = e.at;
        }
        assert!((last_rate - 0.08).abs() < 1e-12, "final step is the peak");
        assert!(matches!(
            plan.events()[4].action,
            FaultAction::ClearSpineFailure { .. }
        ));
    }

    #[test]
    fn flap_expands_into_paired_events_within_bounds() {
        let plan = FaultPlan::new().link_flap(
            LeafId(1),
            SpineId(3),
            Time::from_ms(10),
            Time::from_ms(2),
            Time::from_ms(10),
            Time::from_ms(40),
        );
        // Flaps start at 10, 20, 30 ms (40 is not < until).
        assert_eq!(plan.len(), 6);
        for pair in plan.events().chunks(2) {
            assert!(matches!(pair[0].action, FaultAction::LinkDown { .. }));
            assert!(matches!(pair[1].action, FaultAction::LinkUp { .. }));
            assert_eq!(pair[1].at - pair[0].at, Time::from_ms(2));
        }
        assert_eq!(plan.end_time(), Time::from_ms(32));
    }

    #[test]
    #[should_panic]
    fn inverted_window_is_rejected() {
        let _ = FaultPlan::new().random_drop_window(
            SpineId(0),
            0.02,
            Time::from_ms(5),
            Time::from_ms(5),
        );
    }

    #[test]
    fn gray_failure_windows_expand_and_validate() {
        let plan = FaultPlan::new()
            .flow_blackhole_window(SpineId(1), 0.4, Time::from_ms(5), Time::from_ms(20))
            .ecn_mute_window(SpineId(2), Time::from_ms(8), Time::from_ms(30));
        assert_eq!(plan.len(), 4);
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::FlowBlackhole {
                spine: SpineId(1),
                ..
            }
        ));
        let FaultAction::FlowBlackhole {
            victim_fraction, ..
        } = plan.events()[1].action
        else {
            panic!("window must clear by merging fraction 0");
        };
        assert_eq!(victim_fraction, 0.0);
        assert!(matches!(
            plan.events()[2].action,
            FaultAction::EcnMute { spine: SpineId(2) }
        ));
        assert!(matches!(
            plan.events()[3].action,
            FaultAction::EcnUnmute { spine: SpineId(2) }
        ));
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_every_builder_shape() {
        let plan = FaultPlan::new()
            .blackhole_window(
                SpineId(0),
                LeafId(0),
                LeafId(1),
                1.0,
                Time::from_ms(1),
                Time::from_ms(9),
            )
            .drop_rate_ramp(SpineId(1), 0.08, Time::from_ms(2), Time::from_ms(12), 4)
            .link_flap(
                LeafId(0),
                SpineId(2),
                Time::from_ms(3),
                Time::from_ms(1),
                Time::from_ms(4),
                Time::from_ms(15),
            )
            .link_degrade_window(
                LeafId(1),
                SpineId(3),
                1_000_000_000,
                Time::from_ms(2),
                Time::from_ms(10),
            )
            .spine_outage(SpineId(3), Time::from_ms(20), Time::from_ms(25))
            .flow_blackhole_window(SpineId(2), 0.5, Time::from_ms(6), Time::from_ms(18))
            .ecn_mute_window(SpineId(0), Time::from_ms(10), Time::from_ms(20));
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_link_up_without_down() {
        let plan = FaultPlan::new().at(
            Time::from_ms(5),
            FaultAction::LinkUp {
                leaf: LeafId(0),
                spine: SpineId(1),
            },
        );
        assert_eq!(
            plan.validate(),
            Err(PlanError::LinkUpWithoutDown {
                leaf: LeafId(0),
                spine: SpineId(1),
                at: Time::from_ms(5),
            })
        );
    }

    #[test]
    fn validate_rejects_overlapping_down_windows_on_one_link() {
        // Two flap windows on the same link that interleave: the second
        // LinkDown lands while the first window is still open.
        let plan = FaultPlan::new()
            .at(
                Time::from_ms(1),
                FaultAction::LinkDown {
                    leaf: LeafId(0),
                    spine: SpineId(0),
                },
            )
            .at(
                Time::from_ms(2),
                FaultAction::LinkDown {
                    leaf: LeafId(0),
                    spine: SpineId(0),
                },
            )
            .at(
                Time::from_ms(3),
                FaultAction::LinkUp {
                    leaf: LeafId(0),
                    spine: SpineId(0),
                },
            );
        assert_eq!(
            plan.validate(),
            Err(PlanError::LinkAlreadyDown {
                leaf: LeafId(0),
                spine: SpineId(0),
                at: Time::from_ms(2),
            })
        );
        // Distinct links may overlap freely.
        let ok = FaultPlan::new()
            .link_flap(
                LeafId(0),
                SpineId(0),
                Time::from_ms(1),
                Time::from_ms(2),
                Time::from_ms(5),
                Time::from_ms(20),
            )
            .link_flap(
                LeafId(1),
                SpineId(0),
                Time::from_ms(2),
                Time::from_ms(2),
                Time::from_ms(5),
                Time::from_ms(20),
            );
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_orders_by_time_not_insertion() {
        // Inserted up-before-down, but the *times* pair correctly.
        let plan = FaultPlan::new()
            .at(
                Time::from_ms(9),
                FaultAction::LinkUp {
                    leaf: LeafId(2),
                    spine: SpineId(1),
                },
            )
            .at(
                Time::from_ms(4),
                FaultAction::LinkDown {
                    leaf: LeafId(2),
                    spine: SpineId(1),
                },
            );
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_spine_outage_mismatches() {
        let up_first =
            FaultPlan::new().at(Time::from_ms(2), FaultAction::SpineUp { spine: SpineId(0) });
        assert_eq!(
            up_first.validate(),
            Err(PlanError::SpineUpWithoutDown {
                spine: SpineId(0),
                at: Time::from_ms(2),
            })
        );
        let double_down = FaultPlan::new()
            .at(
                Time::from_ms(1),
                FaultAction::SpineDown { spine: SpineId(3) },
            )
            .at(
                Time::from_ms(2),
                FaultAction::SpineDown { spine: SpineId(3) },
            );
        assert_eq!(
            double_down.validate(),
            Err(PlanError::SpineAlreadyDown {
                spine: SpineId(3),
                at: Time::from_ms(2),
            })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        let bad_drop = FaultPlan::new().at(
            Time::from_ms(1),
            FaultAction::SetSpineFailure {
                spine: SpineId(0),
                failure: SpineFailure {
                    random_drop: 1.5,
                    ..SpineFailure::default()
                },
            },
        );
        assert_eq!(
            bad_drop.validate(),
            Err(PlanError::FractionOutOfRange {
                what: "random_drop",
                value: 1.5,
                at: Time::from_ms(1),
            })
        );
        let bad_victim = FaultPlan::new().at(
            Time::from_ms(2),
            FaultAction::FlowBlackhole {
                spine: SpineId(1),
                victim_fraction: -0.25,
            },
        );
        assert_eq!(
            bad_victim.validate(),
            Err(PlanError::FractionOutOfRange {
                what: "victim_fraction",
                value: -0.25,
                at: Time::from_ms(2),
            })
        );
        let zero_rate = FaultPlan::new().at(
            Time::from_ms(3),
            FaultAction::SetLinkRate {
                leaf: LeafId(1),
                spine: SpineId(2),
                rate_bps: 0,
            },
        );
        assert_eq!(
            zero_rate.validate(),
            Err(PlanError::ZeroLinkRate {
                leaf: LeafId(1),
                spine: SpineId(2),
                at: Time::from_ms(3),
            })
        );
    }

    #[test]
    fn compound_plans_keep_insertion_order_within_an_instant() {
        let t = Time::from_ms(7);
        let plan = FaultPlan::new()
            .at(t, FaultAction::SpineDown { spine: SpineId(1) })
            .at(t, FaultAction::SpineUp { spine: SpineId(1) });
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::SpineDown { .. }
        ));
        assert!(matches!(
            plan.events()[1].action,
            FaultAction::SpineUp { .. }
        ));
    }
}
