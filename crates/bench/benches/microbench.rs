//! Criterion microbenchmarks for the hot paths of the simulator: event
//! queue churn, DRE updates, CDF sampling, Hermes path selection, CONGA
//! ingress selection, and a small end-to-end simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hermes_core::{Hermes, HermesParams, RackSensing};
use hermes_lb::{Conga, CongaCfg};
use hermes_net::{
    Dre, EdgeLb, FabricLb, FlowCtx, FlowId, HostId, LeafId, Packet, PathId, Topology, Uplinks,
};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{EventQueue, SimRng, Time};
use hermes_workload::{FlowGen, FlowSizeDist};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Time::from_ns(rng.u64() % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        });
    });
}

fn bench_dre(c: &mut Criterion) {
    c.bench_function("dre_add_and_rate_1k", |b| {
        b.iter(|| {
            let mut d = Dre::default_horizon();
            let mut t = Time::ZERO;
            for _ in 0..1000 {
                t += Time::from_ns(1200);
                d.add(1500, t);
            }
            black_box(d.rate_bps(t))
        });
    });
}

fn bench_cdf_sampling(c: &mut Criterion) {
    let dist = FlowSizeDist::web_search();
    c.bench_function("web_search_sample_1k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(dist.sample(&mut rng));
            }
            black_box(acc)
        });
    });
}

fn bench_hermes_select(c: &mut Criterion) {
    let topo = Topology::sim_baseline();
    let params = HermesParams::from_topology(&topo);
    let shared = RackSensing::shared(&topo, LeafId(0), params);
    let mut h = Hermes::new(shared, true);
    let cands: Vec<PathId> = (0..8u16).map(PathId).collect();
    let ctx = FlowCtx {
        flow: FlowId(1),
        src: HostId(0),
        dst: HostId(20),
        src_leaf: LeafId(0),
        dst_leaf: LeafId(1),
        bytes_sent: 1_000_000,
        rate_bps: 1e9,
        current_path: PathId(2),
        is_new: false,
        timed_out: false,
        since_change: Time::MAX,
    };
    c.bench_function("hermes_select_path", |b| {
        let mut rng = SimRng::new(3);
        let mut t = Time::from_ms(1);
        b.iter(|| {
            t += Time::from_ns(100);
            black_box(h.select_path(&ctx, &cands, t, &mut rng))
        });
    });
}

fn bench_conga_ingress(c: &mut Criterion) {
    let topo = Topology::sim_baseline();
    let mut conga = Conga::new(&topo, CongaCfg::default());
    let cands: Vec<PathId> = (0..8u16).map(PathId).collect();
    let q = [0u64; 8];
    c.bench_function("conga_ingress_select", |b| {
        let mut rng = SimRng::new(4);
        let mut t = Time::from_ms(1);
        let mut fid = 0u64;
        b.iter(|| {
            fid += 1;
            t += Time::from_ns(100);
            let pkt = Packet::data(FlowId(fid), HostId(0), HostId(20), 0, 1460, false);
            let uplinks = Uplinks {
                paths: &cands,
                qbytes: &q,
            };
            black_box(conga.ingress_select(LeafId(0), LeafId(1), &pkt, uplinks, t, &mut rng))
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("testbed_50_flows_ecmp", |b| {
        let topo = Topology::testbed();
        b.iter(|| {
            let mut gen =
                FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
            let mut sim = Simulation::new(SimConfig::new(topo.clone(), Scheme::Ecmp).with_seed(1));
            sim.add_flows(gen.schedule(50));
            sim.run_to_completion(Time::from_secs(20));
            black_box(sim.stats.events)
        });
    });
    group.bench_function("testbed_50_flows_hermes", |b| {
        let topo = Topology::testbed();
        let params = HermesParams::paper_testbed(&topo);
        b.iter(|| {
            let mut gen =
                FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
            let mut sim =
                Simulation::new(SimConfig::new(topo.clone(), Scheme::Hermes(params)).with_seed(1));
            sim.add_flows(gen.schedule(50));
            sim.run_to_completion(Time::from_secs(20));
            black_box(sim.stats.events)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_dre,
    bench_cdf_sampling,
    bench_hermes_select,
    bench_conga_ingress,
    bench_end_to_end
);
criterion_main!(benches);
