//! Criterion microbenchmarks for the hot paths of the simulator: event
//! queue churn (timing wheel vs. binary heap, at shallow and deep
//! pending depths), port enqueue/dequeue, the DCTCP sender ACK step,
//! DRE updates, CDF sampling, Hermes path selection, CONGA ingress
//! selection, and a small end-to-end simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hermes_core::{Hermes, HermesParams, RackSensing};
use hermes_lb::{Conga, CongaCfg};
use hermes_net::{
    Dre, EdgeLb, FabricLb, FlowCtx, FlowId, HostId, LeafId, LinkCfg, Packet, PathId, Port,
    Topology, Uplinks,
};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{HeapQueue, SimRng, Time, WheelQueue};
use hermes_transport::{Sender, TransportCfg};
use hermes_workload::{FlowGen, FlowSizeDist};

/// Both schedulers share an API but no trait; a macro instantiates the
/// same two benchmark bodies for each concrete type:
/// * `*_push_pop_1k` — build a fresh queue, push 1k, drain it;
/// * `*_steady_{n}_pending` — pop-one/push-one at a sustained depth of
///   1k / 100k pending events (the regime a big fig12 run operates in).
macro_rules! bench_queue_type {
    ($c:expr, $name:literal, $ty:ident) => {{
        $c.bench_function(concat!($name, "_push_pop_1k"), |b| {
            let mut rng = SimRng::new(1);
            b.iter(|| {
                let mut q: $ty<u64> = $ty::new();
                for i in 0..1000u64 {
                    q.schedule(Time::from_ns(rng.u64() % 1_000_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
        for pending in [1_000u64, 100_000] {
            let id = format!("{}_steady_{}k_pending", $name, pending / 1000);
            $c.bench_function(&id, |b| {
                let mut rng = SimRng::new(2);
                let mut q: $ty<u64> = $ty::new();
                for i in 0..pending {
                    q.schedule(Time::from_ns(rng.u64() % 1_000_000), i);
                }
                b.iter(|| {
                    let (t, v) = q.pop().expect("queue is kept at a fixed depth");
                    q.schedule(t + Time::from_ns(rng.u64() % 1_000_000), v);
                    black_box(v)
                });
            });
        }
    }};
}

fn bench_event_queue(c: &mut Criterion) {
    bench_queue_type!(c, "wheel", WheelQueue);
    bench_queue_type!(c, "heap", HeapQueue);
}

fn bench_port(c: &mut Criterion) {
    c.bench_function("port_enqueue_dequeue", |b| {
        // 10G port, DCTCP marking threshold 65KB, 300KB buffer — the
        // sim_baseline configuration. One packet in, one serialized
        // out per iteration, so the queue never grows or drains dry.
        let mut port = Port::new(
            LinkCfg::new(10_000_000_000, Time::from_us(1)),
            65_000,
            300_000,
        );
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1460;
            let pkt = Box::new(Packet::data(
                FlowId(1),
                HostId(0),
                HostId(20),
                seq,
                1460,
                true,
            ));
            black_box(port.enqueue(pkt).is_queued());
            if port.begin_tx().is_some() {
                black_box(port.complete_tx());
            }
        });
    });
}

fn bench_sender_step(c: &mut Criterion) {
    c.bench_function("dctcp_sender_ack_step", |b| {
        // One cumulative-ACK step of the DCTCP state machine: window
        // arithmetic, α update, and the re-emitted segment actions. The
        // flow is sized so it never finishes within the measurement.
        let mut s = Sender::new(TransportCfg::dctcp(), u64::MAX / 4);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let mut ack = 0u64;
        let mut t = Time::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            ack += 1460;
            t += Time::from_ns(500);
            i += 1;
            out.clear();
            s.on_ack(
                ack,
                i.is_multiple_of(4),
                Some(Time::from_us(60)),
                t,
                &mut out,
            );
            black_box(out.len())
        });
    });
}

fn bench_dre(c: &mut Criterion) {
    c.bench_function("dre_add_and_rate_1k", |b| {
        b.iter(|| {
            let mut d = Dre::default_horizon();
            let mut t = Time::ZERO;
            for _ in 0..1000 {
                t += Time::from_ns(1200);
                d.add(1500, t);
            }
            black_box(d.rate_bps(t))
        });
    });
}

fn bench_cdf_sampling(c: &mut Criterion) {
    let dist = FlowSizeDist::web_search();
    c.bench_function("web_search_sample_1k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(dist.sample(&mut rng));
            }
            black_box(acc)
        });
    });
}

fn bench_hermes_select(c: &mut Criterion) {
    let topo = Topology::sim_baseline();
    let params = HermesParams::from_topology(&topo);
    let shared = RackSensing::shared(&topo, LeafId(0), params);
    let mut h = Hermes::new(shared, true);
    let cands: Vec<PathId> = (0..8u16).map(PathId).collect();
    let ctx = FlowCtx {
        flow: FlowId(1),
        src: HostId(0),
        dst: HostId(20),
        src_leaf: LeafId(0),
        dst_leaf: LeafId(1),
        bytes_sent: 1_000_000,
        rate_bps: 1e9,
        current_path: PathId(2),
        is_new: false,
        timed_out: false,
        since_change: Time::MAX,
    };
    c.bench_function("hermes_select_path", |b| {
        let mut rng = SimRng::new(3);
        let mut t = Time::from_ms(1);
        b.iter(|| {
            t += Time::from_ns(100);
            black_box(h.select_path(&ctx, &cands, t, &mut rng))
        });
    });
}

fn bench_conga_ingress(c: &mut Criterion) {
    let topo = Topology::sim_baseline();
    let mut conga = Conga::new(&topo, CongaCfg::default());
    let cands: Vec<PathId> = (0..8u16).map(PathId).collect();
    let q = [0u64; 8];
    c.bench_function("conga_ingress_select", |b| {
        let mut rng = SimRng::new(4);
        let mut t = Time::from_ms(1);
        let mut fid = 0u64;
        b.iter(|| {
            fid += 1;
            t += Time::from_ns(100);
            let pkt = Packet::data(FlowId(fid), HostId(0), HostId(20), 0, 1460, false);
            let uplinks = Uplinks {
                paths: &cands,
                qbytes: &q,
            };
            black_box(conga.ingress_select(LeafId(0), LeafId(1), &pkt, uplinks, t, &mut rng))
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("testbed_50_flows_ecmp", |b| {
        let topo = Topology::testbed();
        b.iter(|| {
            let mut gen =
                FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
            let mut sim = Simulation::new(SimConfig::new(topo.clone(), Scheme::Ecmp).with_seed(1));
            sim.add_flows(gen.schedule(50));
            sim.run_to_completion(Time::from_secs(20));
            black_box(sim.stats.events)
        });
    });
    group.bench_function("testbed_50_flows_hermes", |b| {
        let topo = Topology::testbed();
        let params = HermesParams::paper_testbed(&topo);
        b.iter(|| {
            let mut gen =
                FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
            let mut sim =
                Simulation::new(SimConfig::new(topo.clone(), Scheme::Hermes(params)).with_seed(1));
            sim.add_flows(gen.schedule(50));
            sim.run_to_completion(Time::from_secs(20));
            black_box(sim.stats.events)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_port,
    bench_sender_step,
    bench_dre,
    bench_cdf_sampling,
    bench_hermes_select,
    bench_conga_ingress,
    bench_end_to_end
);
criterion_main!(benches);
