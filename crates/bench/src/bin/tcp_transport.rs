//! **§5.4 "Different transport protocols"** — Hermes over plain TCP
//! NewReno (no ECN): sensing falls back to RTT only, with 1.5× larger
//! RTT thresholds.
//!
//! Paper's findings: under web-search Hermes stays within 10–25% of
//! CONGA (with a 500 µs flowlet timeout — TCP is bursty enough to form
//! flowlets); under data-mining they are nearly identical.

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::Topology;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_transport::TransportCfg;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = Topology::sim_baseline();
    // TCP is burstier: the paper uses CONGA's original 500 µs timeout.
    let conga = CongaCfg {
        flowlet_timeout: Time::from_us(500),
        ..CongaCfg::default()
    };
    for (dist, base) in [
        (FlowSizeDist::web_search(), 1200),
        (FlowSizeDist::data_mining(), 300),
    ] {
        GridSpec::new(
            "§5.4: plain TCP transport (8x8 baseline)",
            topo.clone(),
            dist,
        )
        .scheme("ecmp", Scheme::Ecmp)
        .scheme("conga-500us", Scheme::Conga(conga))
        .scheme(
            "hermes-rtt-only",
            Scheme::Hermes(HermesParams::for_tcp(&topo)),
        )
        .loads(&[0.4, 0.6])
        .flows(base)
        .transport(TransportCfg::tcp())
        .drain(Time::from_secs(6))
        .run();
    }
    println!("(paper: with TCP, Hermes within 10-25% of CONGA on web-search and");
    println!(" nearly identical on data-mining)");
}
