//! **Figure 15** — CONGA with different flowlet timeout values
//! (web-search, asymmetric topology, 80% load, packet reordering masked
//! by a receive-side buffer).
//!
//! Paper's findings: shrinking the timeout 500 µs → 150 µs *improves*
//! FCT ~6% (more reroute opportunities), but 50 µs *degrades* it ~30%:
//! even a congestion-aware scheme suffers congestion mismatch once it
//! flips paths vigorously — reordering alone does not explain the loss,
//! because reordering is masked here.

use hermes_bench::{asym_topology, baseline_capacity, GridSpec};
use hermes_lb::CongaCfg;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = asym_topology();
    let mut spec = GridSpec::new(
        "Figure 15: CONGA flowlet-timeout sweep (web-search, 80% load, reordering masked)",
        topo,
        FlowSizeDist::web_search(),
    )
    .loads(&[0.8])
    .flows(2000)
    .capacity(baseline_capacity())
    // Mask reordering for every variant so only congestion mismatch
    // differentiates them (the paper's methodology).
    .reorder_mask(Some(Time::from_us(300)));
    for timeout_us in [500u64, 150, 50] {
        let cfg = CongaCfg {
            flowlet_timeout: Time::from_us(timeout_us),
            ..CongaCfg::default()
        };
        spec = spec.scheme(&format!("conga-{timeout_us}us"), Scheme::Conga(cfg));
    }
    spec.run();
    println!("(paper: 150us beats 500us by ~6%, but 50us is ~30% WORSE than 150us —");
    println!(" vigorous path flipping causes congestion mismatch even when");
    println!(" reordering is masked)");
}
