//! **Figure 18** — Hermes deep dive (data-mining workload, asymmetric
//! topology): (a) the incremental value of active probing and of timely
//! rerouting; (b) sensitivity to the probe interval.
//!
//! Paper's findings: probing contributes ~20% and rerouting ~10% to the
//! overall average FCT; a 500 µs probe interval captures most of the
//! probing benefit (~11–15%) and 100 µs adds only another 1–3%.

use hermes_bench::{asym_topology, baseline_capacity, GridSpec};
use hermes_core::HermesParams;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = asym_topology();
    let base = HermesParams::from_topology(&topo);

    // (a) component ablation.
    let mut no_probe = base;
    no_probe.enable_probing = false;
    let mut no_reroute = base;
    no_reroute.enable_reroute = false;
    let mut neither = base;
    neither.enable_probing = false;
    neither.enable_reroute = false;
    GridSpec::new(
        "Figure 18a: Hermes ablation (data-mining, asymmetric)",
        topo.clone(),
        FlowSizeDist::data_mining(),
    )
    .scheme("hermes", Scheme::Hermes(base))
    .scheme("no-probing", Scheme::Hermes(no_probe))
    .scheme("no-rerouting", Scheme::Hermes(no_reroute))
    .scheme("neither", Scheme::Hermes(neither))
    .loads(&[0.6, 0.8])
    .flows(400)
    .capacity(baseline_capacity())
    .normalize_to("hermes")
    .drain(Time::from_secs(8))
    .run();

    // (b) probe interval sweep.
    let mut p100 = base;
    p100.probe_interval = Time::from_us(100);
    let mut p500 = base;
    p500.probe_interval = Time::from_us(500);
    GridSpec::new(
        "Figure 18b: probe-interval sweep (data-mining, asymmetric)",
        topo,
        FlowSizeDist::data_mining(),
    )
    .scheme("probe-100us", Scheme::Hermes(p100))
    .scheme("probe-500us", Scheme::Hermes(p500))
    .scheme("probe-off", Scheme::Hermes(no_probe))
    .loads(&[0.8])
    .flows(400)
    .capacity(baseline_capacity())
    .normalize_to("probe-500us")
    .drain(Time::from_secs(8))
    .run();

    println!("(paper: probing ≈20% and rerouting ≈10% of overall avg FCT; 500us");
    println!(" probing captures 11-15% over no probing, 100us adds only 1-3%)");
}
