//! **Figure 14** — asymmetric 8×8 (20% of leaf-spine links at 2 Gbps),
//! data-mining workload; FCT statistics normalized to Hermes.
//!
//! Paper's findings: Hermes beats CONGA by 5–10% (timely rerouting
//! resolves large-flow collisions on the 2 Gbps links) and beats
//! CLOVE-ECN / LetFlow by 13–20% — the data-mining workload is too
//! smooth to produce the flowlet gaps those schemes depend on.

use hermes_bench::{asym_topology, baseline_capacity, GridSpec};
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = asym_topology();
    GridSpec::new(
        "Figure 14: 8x8 asymmetric — data-mining (normalized to Hermes)",
        topo.clone(),
        FlowSizeDist::data_mining(),
    )
    .scheme("hermes", Scheme::Hermes(HermesParams::from_topology(&topo)))
    .scheme("conga", Scheme::Conga(CongaCfg::default()))
    .scheme(
        "letflow",
        Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
    )
    .scheme("clove-ecn", Scheme::Clove(CloveCfg::default()))
    .scheme("presto*-weighted", Scheme::presto_weighted())
    .loads(&[0.5, 0.8])
    .flows(400)
    .capacity(baseline_capacity())
    .normalize_to("hermes")
    .drain(hermes_sim::Time::from_secs(8))
    .run();
    println!("(paper: Hermes 5-10% ahead of CONGA and 13-20% ahead of CLOVE-ECN and");
    println!(" LetFlow — stable traffic starves flowlet schemes of reroute chances)");
}
