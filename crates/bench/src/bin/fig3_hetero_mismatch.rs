//! **Figure 3 / Example 3** — congestion mismatch persists even with
//! capacity-proportional weights on heterogeneous paths.
//!
//! Two parallel paths of 1 Gbps and 10 Gbps; Presto* sprays a DCTCP flow
//! 1:10 to match capacities. The shared congestion window cannot serve
//! two paths whose bandwidth-delay products differ 10×: marks from the
//! 1 Gbps path halt growth needed for the 10 Gbps path, and bursts sized
//! by the 10 Gbps path overrun the 1 Gbps queue. The paper measures only
//! ≈5 Gbps of the 11 Gbps aggregate. Hermes simply keeps the flow on the
//! big path.

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_net::{FlowId, HostId, LeafId, LinkCfg, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::FlowSpec;

fn topo() -> Topology {
    let mut t = Topology::leaf_spine(
        2,
        2,
        2,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    // Path 0 degraded to 1 Gbps on both legs (a 1G spine).
    t.degrade_link(LeafId(0), SpineId(0), 1_000_000_000);
    t.degrade_link(LeafId(1), SpineId(0), 1_000_000_000);
    t
}

fn run(scheme: Scheme) -> (f64, f64) {
    let t = topo();
    let mut sim = Simulation::new(SimConfig::new(t, scheme).with_seed(5));
    const SIZE: u64 = 80_000_000;
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(2),
        size: SIZE,
        start: Time::ZERO,
    });
    let qs = sim.add_sampler(
        Time::from_us(100),
        Probe::LeafUpQueue(LeafId(0), SpineId(0)),
    );
    let prog = sim.add_sampler(Time::from_ms(1), Probe::FlowDelivered(FlowId(0)));
    sim.run_until(Time::from_ms(40));
    let delivered = sim.sampler_series(prog).last().map_or(0, |&(_, v)| v);
    let goodput = delivered as f64 * 8.0 / 0.040 / 1e9;
    let qmax = sim
        .sampler_series(qs)
        .iter()
        .map(|&(_, v)| v)
        .max()
        .unwrap() as f64
        / 1e3;
    (goodput, qmax)
}

fn main() {
    println!("== Figure 3: weighted spray over 1G/10G heterogeneous paths ==");
    let (p_gbps, p_qmax) = run(Scheme::presto_weighted());
    let (h_gbps, h_qmax) = run(Scheme::Hermes(HermesParams::from_topology(&topo())));
    let mut tab = TextTable::new(&["scheme", "flow A goodput (Gbps)", "1G-path queue max (KB)"]);
    tab.row(vec![
        "Presto* (1:10 weights)".into(),
        format!("{p_gbps:.2}"),
        format!("{p_qmax:.1}"),
    ]);
    tab.row(vec![
        "Hermes".into(),
        format!("{h_gbps:.2}"),
        format!("{h_qmax:.1}"),
    ]);
    tab.print();
    println!(
        "\n(paper: Presto achieves only ~5 of the 11 Gbps aggregate due to\n\
         congestion mismatch; Hermes pins the flow to the 10 Gbps path)"
    );
}
