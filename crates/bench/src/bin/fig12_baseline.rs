//! **Figure 12** — large-simulation baseline: 8×8 leaf-spine, 128 hosts,
//! 10 Gbps, symmetric; overall average FCT vs. load for both workloads.
//!
//! Paper's findings: web-search — Hermes up to 55% better than ECMP and
//! within 17% of CONGA at every load; data-mining — Hermes 29% better
//! than ECMP at high load and up to 4% *better* than CONGA (its timely
//! rerouting resolves large-flow collisions that never form flowlets).

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg};
use hermes_net::Topology;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = Topology::sim_baseline();
    for (dist, base, drain_s) in [
        (FlowSizeDist::web_search(), 2000, 3),
        (FlowSizeDist::data_mining(), 400, 8),
    ] {
        GridSpec::new(
            "Figure 12: 8x8 baseline (symmetric) — overall avg FCT",
            topo.clone(),
            dist,
        )
        .scheme("ecmp", Scheme::Ecmp)
        .scheme(
            "letflow",
            Scheme::LetFlow {
                flowlet_timeout: Time::from_us(150),
            },
        )
        .scheme("clove-ecn", Scheme::Clove(CloveCfg::default()))
        .scheme("presto*", Scheme::presto())
        .scheme("conga", Scheme::Conga(CongaCfg::default()))
        .scheme("hermes", Scheme::Hermes(HermesParams::from_topology(&topo)))
        .loads(&[0.5, 0.8])
        .flows(base)
        .drain(Time::from_secs(drain_s))
        .run();
    }
    println!("(paper: web-search — Hermes ≤55% over ECMP, within 17% of CONGA;");
    println!(" data-mining — Hermes ~29% over ECMP, slightly ahead of CONGA)");
}
