//! **Figure 13** — asymmetric 8×8 (20% of leaf-spine links at 2 Gbps),
//! web-search workload; FCT statistics normalized to Hermes.
//!
//! Paper's findings: CONGA leads by ~10% overall (bursty small flows
//! create plenty of flowlets, and CONGA's switch tables see more);
//! Hermes ≈ CLOVE-ECN ≈ LetFlow overall — but the flowlet schemes'
//! *small-flow* average and 99th percentile blow up at high load
//! (1.5–3.3× vs Hermes at 90%) because small flows get fragmented onto
//! several paths and eat the reordering + congestion mismatch.

use hermes_bench::{asym_topology, baseline_capacity, GridSpec};
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = asym_topology();
    GridSpec::new(
        "Figure 13: 8x8 asymmetric — web-search (normalized to Hermes)",
        topo.clone(),
        FlowSizeDist::web_search(),
    )
    .scheme("hermes", Scheme::Hermes(HermesParams::from_topology(&topo)))
    .scheme("conga", Scheme::Conga(CongaCfg::default()))
    .scheme(
        "letflow",
        Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
    )
    .scheme("clove-ecn", Scheme::Clove(CloveCfg::default()))
    .scheme("presto*-weighted", Scheme::presto_weighted())
    .loads(&[0.5, 0.8])
    .flows(2000)
    .capacity(baseline_capacity())
    .normalize_to("hermes")
    .run();
    println!("(paper: CONGA ~10% ahead overall; flowlet schemes' small-flow avg and");
    println!(" p99 degrade 1.5-3.3x vs Hermes at 90% load; weighted Presto* trails)");
}
