//! **Figure 2 / Example 2** — congestion mismatch under asymmetry with
//! congestion-oblivious spraying (Presto).
//!
//! Topology: 3×2 leaf-spine, 10 Gbps links, with the L0–S1 link cut.
//! Flow B is a 9 Gbps UDP stream L0→L2 (forced through S0); flow A is a
//! DCTCP flow L1→L2 sprayed equally over S0 and S1 by Presto*. The ECN
//! marks collected on the congested S0 path throttle A's single
//! congestion window, starving its S1 share too: A achieves ~1 Gbps
//! while the S0→L2 queue oscillates. Hermes keeps A on S1 and delivers
//! nearly line rate.

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_net::{FlowId, HostId, LeafId, LinkCfg, PathId, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::FlowSpec;

fn topo() -> Topology {
    let mut t = Topology::leaf_spine(
        3,
        2,
        2,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    t.cut_link(LeafId(0), SpineId(1)); // the broken link of Fig. 2a
    t
}

struct Outcome {
    goodput_gbps: f64,
    q_mean_kb: f64,
    q_max_kb: f64,
    q_series: Vec<(f64, f64)>, // (ms, KB) on S0→L2
}

fn run(scheme: Scheme) -> Outcome {
    let t = topo();
    let mut sim = Simulation::new(SimConfig::new(t, scheme).with_seed(3));
    // Flow B: UDP 9 Gbps from L0 (host 0) to L2 (host 4); its only live
    // path is S0.
    sim.add_udp(
        HostId(0),
        HostId(4),
        9_000_000_000,
        1460,
        Some(PathId(0)),
        Time::ZERO,
    );
    // Flow A: long DCTCP flow from L1 (host 2) to L2 (host 5).
    const SIZE: u64 = 60_000_000;
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: HostId(2),
        dst: HostId(5),
        size: SIZE,
        start: Time::from_ms(1),
    });
    let qs = sim.add_sampler(
        Time::from_us(100),
        Probe::SpineDownQueue(SpineId(0), LeafId(2)),
    );
    let prog = sim.add_sampler(Time::from_ms(1), Probe::FlowDelivered(FlowId(0)));
    sim.run_until(Time::from_ms(61));
    let delivered = sim.sampler_series(prog).last().map_or(0, |&(_, v)| v);
    let goodput = delivered as f64 * 8.0 / 0.060;
    let q: Vec<u64> = sim.sampler_series(qs).iter().map(|&(_, v)| v).collect();
    let q_mean = q.iter().sum::<u64>() as f64 / q.len() as f64 / 1e3;
    let q_max = *q.iter().max().unwrap() as f64 / 1e3;
    let q_series = sim
        .sampler_series(qs)
        .iter()
        .step_by(20)
        .map(|&(t, v)| (t.as_millis_f64(), v as f64 / 1e3))
        .collect();
    Outcome {
        goodput_gbps: goodput / 1e9,
        q_mean_kb: q_mean,
        q_max_kb: q_max,
        q_series,
    }
}

fn main() {
    println!("== Figure 2: congestion mismatch under asymmetry (Presto vs Hermes) ==");
    let presto = run(Scheme::presto());
    let hermes = run(Scheme::Hermes(HermesParams::from_topology(&topo())));
    let mut tab = TextTable::new(&[
        "scheme",
        "flow A goodput (Gbps)",
        "S0->L2 queue mean (KB)",
        "queue max (KB)",
    ]);
    for (name, o) in [("Presto* (equal spray)", &presto), ("Hermes", &hermes)] {
        tab.row(vec![
            name.into(),
            format!("{:.2}", o.goodput_gbps),
            format!("{:.1}", o.q_mean_kb),
            format!("{:.1}", o.q_max_kb),
        ]);
    }
    tab.print();
    println!("\nS0->L2 queue under Presto* (Fig. 2b time series, KB every 2 ms):");
    let line: Vec<String> = presto
        .q_series
        .iter()
        .map(|(_, kb)| format!("{kb:.0}"))
        .collect();
    println!("  {}", line.join(" "));
    println!(
        "\n(paper: flow A stuck near 1 Gbps with large queue oscillations under\n\
         Presto; Hermes should sustain close to line rate on the clean S1 path)"
    );
}
