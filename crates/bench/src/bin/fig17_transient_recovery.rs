//! **Figure 17 (transient)** — blackhole onset *and clearance*: one
//! spine silently drops every rack-0→rack-3 pair from t₁ = 150 ms until
//! the fault clears at t₂ = 450 ms, on a 4×4×8 10G leaf–spine fabric
//! with a steady open-loop stream of 100 KB flows.
//!
//! What to look for:
//! * every scheme's goodput dips at onset (25% of paths blackholed);
//! * Hermes detects the hole (3 timeouts), reroutes around it, and is
//!   back at baseline *before* t₂ — then cautiously re-admits the
//!   healed paths after the quiet period via probing;
//! * ECMP's hashed-in flows stay stranded for the whole fault window
//!   and only drain after t₂ (RTO backoff), so its recovery trails the
//!   clearance, not the detection;
//! * CONGA steers *extra* flows into the hole (it looks idle).
//!
//! The Hermes point also runs twice with the same seed to demonstrate
//! that the fault schedule is replayed deterministically through the
//! event queue (identical trace digests, balanced conservation).

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{FaultPlan, FlowId, HostId, LeafId, LinkCfg, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::{degradation_report, DegradationCfg, FlowSpec};

const FLOW_BYTES: u64 = 100_000;
const N_FLOWS: u64 = 2_400; // one arrival per 250 µs → 3.2 Gb/s offered
const ONSET: Time = Time::from_ms(150);
const CLEAR: Time = Time::from_ms(450);
const HORIZON: Time = Time::from_ms(1_500);
const SAMPLE: Time = Time::from_ms(10);
const SEED: u64 = 7;

fn topo() -> Topology {
    Topology::leaf_spine(
        4,
        4,
        8,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    )
}

fn plan() -> FaultPlan {
    FaultPlan::new().blackhole_window(SpineId(0), LeafId(0), LeafId(3), 1.0, ONSET, CLEAR)
}

fn flows() -> Vec<FlowSpec> {
    (0..N_FLOWS)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId((i % 8) as u32),
            dst: HostId((24 + (i * 5 + 3) % 8) as u32),
            size: FLOW_BYTES,
            start: Time::from_us(i * 250),
        })
        .collect()
}

struct RunOut {
    series: Vec<(Time, u64)>,
    digest: u64,
    stranded_at_clear: usize,
    unfinished: usize,
    conservation_balanced: bool,
    /// Hermes only: onset → first path declared Failed.
    detect: Option<Time>,
    /// Hermes only: clearance → first path re-admitted via probation.
    readmit: Option<Time>,
    recoveries: u64,
}

fn run(scheme: Scheme) -> RunOut {
    let cfg = SimConfig::new(topo(), scheme)
        .with_seed(SEED)
        .with_fault_plan(plan());
    let mut sim = Simulation::new(cfg);
    let sampler = sim.add_sampler(SAMPLE, Probe::TotalGoodput);
    sim.add_flows(flows());
    sim.run_to_completion(HORIZON);
    let stranded_at_clear = sim
        .records()
        .iter()
        .filter(|r| r.start < CLEAR && r.finish.is_none_or(|f| f > CLEAR))
        .count();
    let unfinished = sim.records().iter().filter(|r| r.finish.is_none()).count();
    let (detect, readmit, recoveries) = sim.hermes_racks().first().map_or((None, None, 0), |r| {
        let s = r.borrow();
        (
            s.first_failure_at.map(|t| t.saturating_sub(ONSET)),
            s.first_recovery_at.map(|t| t.saturating_sub(CLEAR)),
            s.stat_recoveries,
        )
    });
    RunOut {
        series: sim.sampler_series(sampler).to_vec(),
        digest: sim.trace_digest(),
        stranded_at_clear,
        unfinished,
        conservation_balanced: sim.conservation().balanced(),
        detect,
        readmit,
        recoveries,
    }
}

fn gbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e9)
}

fn ms(t: Option<Time>) -> String {
    t.map_or("-".into(), |t| format!("{:.1}", t.as_secs_f64() * 1e3))
}

fn main() {
    println!(
        "== Figure 17 (transient): rack0→rack3 blackhole on spine 0, \
         onset 150 ms, clear 450 ms =="
    );
    let t = topo();
    let schemes: Vec<(&str, Scheme)> = vec![
        ("ecmp", Scheme::Ecmp),
        (
            "letflow",
            Scheme::LetFlow {
                flowlet_timeout: Time::from_us(150),
            },
        ),
        ("conga", Scheme::Conga(CongaCfg::default())),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(&t))),
    ];
    let cfg = DegradationCfg::default();
    let mut tab = TextTable::new(&[
        "scheme",
        "baseline Gb/s",
        "dip Gb/s",
        "impact (ms after onset)",
        "recover (ms after onset)",
        "stranded@clear",
        "unfinished",
    ]);
    let mut hermes_out = None;
    for (name, scheme) in schemes {
        let out = run(scheme);
        let rep = degradation_report(&out.series, ONSET, &cfg, out.stranded_at_clear);
        tab.row(vec![
            name.into(),
            gbps(rep.baseline_bps),
            gbps(rep.dip_min_bps),
            ms(rep.time_to_impact),
            ms(rep.time_to_recover),
            format!("{}", rep.stranded),
            format!("{}", out.unfinished),
        ]);
        if name == "hermes" {
            hermes_out = Some(out);
        }
    }
    tab.print();
    let h = hermes_out.expect("hermes scheme ran");
    println!(
        "\nhermes sensing: detected {} ms after onset; re-admitted the healed \
         paths {} ms after clearance ({} probation recoveries)",
        ms(h.detect),
        ms(h.readmit),
        h.recoveries
    );
    // Same-seed replay: the fault schedule flows through the event
    // queue, so the whole transient run must fingerprint identically.
    let again = run(Scheme::Hermes(HermesParams::from_topology(&t)));
    assert_eq!(
        h.digest, again.digest,
        "same-seed transient runs must have identical trace digests"
    );
    assert!(
        h.conservation_balanced && again.conservation_balanced,
        "every injected packet must be delivered, counted dropped, or in flight"
    );
    println!(
        "determinism: same-seed replay digest {:#018x} matches; conservation balanced",
        h.digest
    );
    println!(
        "\n(expected: Hermes dips at onset, reroutes back to baseline well before\n\
         the 450 ms clearance, and re-admits the healed paths ~quiet-period after\n\
         it; ECMP's affected flows stay stranded for the full window and only\n\
         drain after clearance via RTO backoff; CONGA mistakes the blackholed\n\
         paths for idle ones and strands even more.)"
    );
}
