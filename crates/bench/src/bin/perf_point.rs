//! Run one named perf point and print a machine-parseable report.
//!
//! ```text
//! perf_point [--point NAME] [--quick] [--threads N] [--list]
//! ```
//!
//! `--threads N` (default 1) runs the point through the sharded engine
//! with `N` workers; the report's digest must match the `--threads 1`
//! run byte for byte. The special point `fig12_shard_drain` measures
//! the fabric-only conservative-window drain instead of a full flow
//! simulation — it is the point the `xtask perf` speedup gate times.
//!
//! The scheduler is whatever this binary was *compiled* with: the
//! timing wheel by default, the binary heap when built with
//! `--features hermes-sim/heap-queue`. `xtask perf` builds and runs
//! both variants and diffs the reports; humans can too:
//!
//! ```text
//! cargo run --release -p hermes-bench --bin perf_point -- --quick
//! cargo run --release -p hermes-bench --features hermes-sim/heap-queue \
//!     --bin perf_point -- --quick
//! ```

use hermes_bench::{measure_point_threaded, PERF_DRAIN_POINT, PERF_POINTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for p in PERF_POINTS {
            println!("{p}");
        }
        println!("{PERF_DRAIN_POINT}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize);
    let point = args
        .iter()
        .position(|a| a == "--point")
        .and_then(|i| args.get(i + 1))
        .map_or("fig12_baseline", String::as_str);
    let Some(sample) = measure_point_threaded(point, quick, threads) else {
        eprintln!("unknown point {point:?}; --list prints the known ones");
        std::process::exit(2);
    };
    print!("{}", sample.to_report());
}
