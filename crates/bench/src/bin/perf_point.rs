//! Run one named perf point and print a machine-parseable report.
//!
//! ```text
//! perf_point [--point NAME] [--quick] [--list]
//! ```
//!
//! The scheduler is whatever this binary was *compiled* with: the
//! timing wheel by default, the binary heap when built with
//! `--features hermes-sim/heap-queue`. `xtask perf` builds and runs
//! both variants and diffs the reports; humans can too:
//!
//! ```text
//! cargo run --release -p hermes-bench --bin perf_point -- --quick
//! cargo run --release -p hermes-bench --features hermes-sim/heap-queue \
//!     --bin perf_point -- --quick
//! ```

use hermes_bench::{measure_point, PERF_POINTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for p in PERF_POINTS {
            println!("{p}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let point = args
        .iter()
        .position(|a| a == "--point")
        .and_then(|i| args.get(i + 1))
        .map_or("fig12_baseline", String::as_str);
    let Some(sample) = measure_point(point, quick) else {
        eprintln!("unknown point {point:?}; --list prints the known ones");
        std::process::exit(2);
    };
    print!("{}", sample.to_report());
}
