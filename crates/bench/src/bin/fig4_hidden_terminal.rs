//! **Figure 4 / Example 4** — the hidden-terminal scenario: CONGA's
//! aged congestion metrics make a bursty flow flip between spines and
//! slam into a flow it cannot see.
//!
//! Flow B sends continuously L1→L2. Flow A sends 10 ms bursts from
//! L0→L2 with 3 ms pauses (every pause exceeds the flowlet timeout, so
//! each burst is free to reroute). A has no feedback about the path it
//! is *not* using; after CONGA's 10 ms aging period the alternative
//! looks empty, so A keeps jumping onto B's spine with a full-size
//! window, spiking the S1→L2 queue (Fig. 4b). Hermes' probing sees B's
//! path as non-good before each burst starts.

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_net::{FlowId, HostId, LeafId, LinkCfg, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::FlowSpec;

fn topo() -> Topology {
    Topology::leaf_spine(
        3,
        2,
        2,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    )
}

struct Outcome {
    /// Queue spikes at S1→L2 (samples above the ECN threshold).
    spikes_s1: usize,
    q_max_kb: [f64; 2],
    b_fct_ms: f64,
}

fn run(scheme: Scheme) -> Outcome {
    let t = topo();
    let mut sim = Simulation::new(SimConfig::new(t, scheme).with_seed(8));
    // Flow B: long continuous flow L1 (host 2) → L2 (host 4).
    const B_SIZE: u64 = 120_000_000; // ~96 ms at 10G
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: HostId(2),
        dst: HostId(4),
        size: B_SIZE,
        start: Time::ZERO,
    });
    // Flow A: 10 ms bursts every 13 ms from L0 (host 0) → L2 (host 5).
    // Each burst is a fresh "flowlet" (and a fresh flow id here, which
    // gives flowlet-based schemes their reroute opportunity exactly as
    // the pause does in the paper).
    let burst_bytes = (10e9 * 0.010 / 8.0) as u64; // 10 ms at line rate
    for i in 0..8u64 {
        sim.add_flow(FlowSpec {
            id: FlowId(1 + i),
            src: HostId(0),
            dst: HostId(5),
            size: burst_bytes,
            start: Time::from_ms(2 + 13 * i),
        });
    }
    let q0 = sim.add_sampler(
        Time::from_us(100),
        Probe::SpineDownQueue(SpineId(0), LeafId(2)),
    );
    let q1 = sim.add_sampler(
        Time::from_us(100),
        Probe::SpineDownQueue(SpineId(1), LeafId(2)),
    );
    sim.run_until(Time::from_ms(250));
    let ecn_k = 100_000u64; // 10G marking threshold
    let spikes_s1 = sim
        .sampler_series(q1)
        .iter()
        .filter(|&&(_, v)| v > ecn_k)
        .count();
    let qmax = |s: usize| {
        sim.sampler_series(s)
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0) as f64
            / 1e3
    };
    let b_fct = sim.records()[0]
        .finish
        .map_or(f64::NAN, |f| (f - sim.records()[0].start).as_millis_f64());
    Outcome {
        spikes_s1,
        q_max_kb: [qmax(q0), qmax(q1)],
        b_fct_ms: b_fct,
    }
}

fn main() {
    println!("== Figure 4: hidden terminal — queue spikes from stale-metric rerouting ==");
    let conga = run(Scheme::Conga(hermes_lb::CongaCfg::default()));
    let hermes = run(Scheme::Hermes(HermesParams::from_topology(&topo())));
    let mut tab = TextTable::new(&[
        "scheme",
        "S1->L2 samples > ECN K",
        "S0->L2 qmax (KB)",
        "S1->L2 qmax (KB)",
        "flow B FCT (ms)",
    ]);
    for (name, o) in [("CONGA", &conga), ("Hermes", &hermes)] {
        tab.row(vec![
            name.into(),
            format!("{}", o.spikes_s1),
            format!("{:.0}", o.q_max_kb[0]),
            format!("{:.0}", o.q_max_kb[1]),
            format!("{:.1}", o.b_fct_ms),
        ]);
    }
    tab.print();
    println!(
        "\n(paper: every time flow A reroutes onto B's spine with stale information,\n\
         the queue spikes — CONGA flips A on every flowlet because the unused path's\n\
         metric ages to zero within 10 ms. Hermes never reroutes mid-burst (its\n\
         cautious gate keeps the established window off foreign paths), though with\n\
         bursts modelled as fresh flows its *initial* placements are blind whenever\n\
         the busy spine shows no queue — the end-host visibility limit the paper\n\
         itself concedes in §6.)"
    );
}
