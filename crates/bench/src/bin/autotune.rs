//! **§6 future work** — "A full exploration of the optimal parameter
//! settings together with an automatic parameter tuning procedure would
//! greatly simplify the deployment of Hermes. We consider it as an
//! important future work."
//!
//! This binary implements that procedure: coordinate descent over the
//! Table 4 parameters, evaluating each candidate by simulated average
//! FCT on a chosen (topology, workload, load) operating point. Each
//! dimension is swept over a small grid around the rules-of-thumb
//! value; passes repeat until no dimension improves. Deterministic
//! seeds make the search reproducible.
//!
//! Usage: `cargo run --release -p hermes-bench --bin autotune [web|dm] [load]`

use hermes_bench::{asym_topology, baseline_capacity, flows, run_point, PointCfg, TextTable};
use hermes_core::HermesParams;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

/// One tunable dimension: a label, candidate values, and a setter.
struct Dim {
    name: &'static str,
    candidates: Vec<f64>,
    set: fn(&mut HermesParams, f64),
    get: fn(&HermesParams) -> f64,
}

fn dims() -> Vec<Dim> {
    vec![
        Dim {
            name: "T_ECN",
            candidates: vec![0.2, 0.3, 0.4, 0.5, 0.6],
            set: |p, v| p.t_ecn = v,
            get: |p| p.t_ecn,
        },
        Dim {
            name: "T_RTT_high (us)",
            candidates: vec![140.0, 180.0, 220.0, 280.0],
            set: |p, v| p.t_rtt_high = Time::from_us(v as u64),
            get: |p| p.t_rtt_high.as_micros_f64(),
        },
        Dim {
            name: "delta_RTT (us)",
            candidates: vec![40.0, 80.0, 120.0, 160.0],
            set: |p, v| p.delta_rtt = Time::from_us(v as u64),
            get: |p| p.delta_rtt.as_micros_f64(),
        },
        Dim {
            name: "S (KB)",
            candidates: vec![100.0, 300.0, 600.0, 800.0],
            set: |p, v| p.size_threshold = (v * 1000.0) as u64,
            get: |p| p.size_threshold as f64 / 1000.0,
        },
        Dim {
            name: "R (% of link)",
            candidates: vec![20.0, 30.0, 40.0],
            set: |p, v| p.rate_threshold_bps = v / 100.0 * 10e9,
            get: |p| p.rate_threshold_bps / 10e9 * 100.0,
        },
        Dim {
            name: "probe interval (us)",
            candidates: vec![100.0, 250.0, 500.0, 1000.0],
            set: |p, v| p.probe_interval = Time::from_us(v as u64),
            get: |p| p.probe_interval.as_micros_f64(),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map_or("dm", String::as_str);
    let load: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let (dist, base_flows) = match workload {
        "web" => (FlowSizeDist::web_search(), 800),
        _ => (FlowSizeDist::data_mining(), 200),
    };
    let topo = asym_topology();
    println!(
        "== Autotuning Hermes on {} at {:.0}% load (asymmetric 8x8) ==",
        dist.name(),
        load * 100.0
    );

    let evaluate = |p: &HermesParams| -> f64 {
        let cfg = PointCfg::new(topo.clone(), Scheme::Hermes(*p), dist.clone(), load)
            .flows(flows(base_flows))
            .capacity(baseline_capacity())
            .drain(Time::from_secs(8))
            .seed(77);
        run_point(&cfg).fct.avg
    };

    let mut best = HermesParams::from_topology(&topo);
    let mut best_fct = evaluate(&best);
    println!(
        "rules-of-thumb starting point: avg FCT {:.3} ms",
        best_fct * 1e3
    );

    let dims = dims();
    let mut evals = 1;
    for pass in 1..=3 {
        let mut improved = false;
        for d in &dims {
            let current = (d.get)(&best);
            for &v in &d.candidates {
                if (v - current).abs() < 1e-9 {
                    continue;
                }
                let mut cand = best;
                (d.set)(&mut cand, v);
                let fct = evaluate(&cand);
                evals += 1;
                eprintln!(
                    "   pass {pass}: {} = {v:>7.1} → {:.3} ms {}",
                    d.name,
                    fct * 1e3,
                    if fct < best_fct { "(improved)" } else { "" }
                );
                if fct < best_fct {
                    best_fct = fct;
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            println!("pass {pass}: converged");
            break;
        }
    }

    let defaults = HermesParams::from_topology(&topo);
    let mut t = TextTable::new(&["parameter", "rules-of-thumb", "tuned"]);
    for d in &dims {
        t.row(vec![
            d.name.to_string(),
            format!("{:.1}", (d.get)(&defaults)),
            format!("{:.1}", (d.get)(&best)),
        ]);
    }
    t.print();
    println!(
        "\ntuned avg FCT {:.3} ms vs rules-of-thumb {:.3} ms ({:+.1}%), {evals} evaluations",
        best_fct * 1e3,
        evaluate(&defaults) * 1e3,
        (best_fct / evaluate(&defaults) - 1.0) * 100.0
    );
    println!("(paper §6: performance should be stable near the recommended settings —");
    println!(" large tuned gains would indicate the rules of thumb are mis-calibrated)");
}
