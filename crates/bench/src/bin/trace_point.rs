//! Emit one named trace point as JSONL (events) + CSV (metrics).
//!
//! Usually invoked through `cargo run -p xtask -- trace <point> --out
//! <dir>`, which rebuilds this bin with the `telemetry` feature on.

use std::io::Write as _;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: trace_point --point <name> --out <dir>");
    eprintln!("points:");
    for p in hermes_bench::TRACE_POINTS {
        eprintln!("  {:<28} {}", p.name, p.about);
    }
    std::process::exit(2);
}

fn main() {
    let mut point: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--point" => point = args.next(),
            "--out" => out = args.next().map(PathBuf::from),
            _ => usage(),
        }
    }
    let (Some(point), Some(out)) = (point, out) else {
        usage()
    };
    let Some(p) = hermes_bench::trace_point(&point) else {
        eprintln!("unknown trace point `{point}`");
        usage()
    };
    if !hermes_telemetry::compiled() {
        eprintln!(
            "hermes-telemetry is compiled out; rebuild with \
             `--features hermes-bench/telemetry` (xtask trace does this)"
        );
        std::process::exit(2);
    }
    let res = hermes_bench::run_trace_point(p);
    std::fs::create_dir_all(&out).expect("create output dir");
    let jsonl = out.join(format!("{point}.trace.jsonl"));
    let csv = out.join(format!("{point}.metrics.csv"));
    std::fs::File::create(&jsonl)
        .and_then(|mut f| f.write_all(res.jsonl.as_bytes()))
        .expect("write trace jsonl");
    std::fs::File::create(&csv)
        .and_then(|mut f| f.write_all(res.csv.as_bytes()))
        .expect("write metrics csv");
    println!(
        "{point}: {} events ({} shed), {} unfinished flows, digest {:#018x}",
        res.events.len(),
        res.shed,
        res.unfinished,
        res.digest
    );
    println!("  {}", jsonl.display());
    println!("  {}", csv.display());
}
