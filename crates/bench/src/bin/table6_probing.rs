//! **Table 6** — comparison of probing schemes: visibility vs. probing
//! overhead on a 100×100 leaf-spine fabric with 10 Gbps links, 64 B
//! probes, 500 µs probe interval.
//!
//! Paper's rows: piggyback (<0.01 visibility, no probes), brute force
//! (full visibility, ~100× a link's capacity in probes), power of two
//! choices (>3 visibility, ~3×), Hermes (>3 visibility, ~3% thanks to
//! per-rack probe agents and rack-wide sharing).

use hermes_bench::{ProbingCostModel, TextTable};

fn main() {
    let model = ProbingCostModel::default();
    println!(
        "== Table 6: probing schemes ({}x{} leaf-spine, {} hosts/rack, {} Gbps links, {} B probes every {} us) ==",
        model.n_leaves,
        model.n_spines,
        model.hosts_per_leaf,
        model.link_bps / 1e9,
        model.probe_bytes,
        model.interval_s * 1e6,
    );
    let mut t = TextTable::new(&["scheme", "visibility (paths/dst)", "overhead (× edge link)"]);
    for row in model.rows() {
        let overhead = if row.overhead_frac == 0.0 {
            "none (no probes)".to_string()
        } else if row.overhead_frac >= 1.0 {
            format!("{:.1}x", row.overhead_frac)
        } else {
            format!("{:.1}%", row.overhead_frac * 100.0)
        };
        let vis = if row.visibility < 0.01 {
            "<0.01".to_string()
        } else {
            format!("{:.0}", row.visibility)
        };
        t.row(vec![row.scheme.to_string(), vis, overhead]);
    }
    t.print();
    let rows = model.rows();
    println!();
    println!(
        "hermes vs brute-force overhead: {:.0}x lower;  hermes vs piggyback visibility: {:.0}x higher",
        rows[1].overhead_frac / rows[3].overhead_frac,
        rows[3].visibility / rows[0].visibility,
    );
}
