//! **Figure 9** — testbed-scale, symmetric topology: overall average FCT
//! vs. load for the web-search and data-mining workloads.
//!
//! Paper's findings: Hermes beats ECMP by 10–38% (more at higher load),
//! beats CLOVE-ECN by 9–15% at 30–70% load, and tracks Presto* (which is
//! near-optimal on symmetric fabrics).

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::CloveCfg;
use hermes_net::Topology;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = Topology::testbed();
    // §5.1: the testbed CLOVE flowlet timeout is 800 µs (best found).
    let clove = CloveCfg {
        flowlet_timeout: Time::from_us(800),
        ..CloveCfg::default()
    };
    for (dist, base, drain_s) in [
        (FlowSizeDist::web_search(), 350, 5),
        (FlowSizeDist::data_mining(), 140, 20),
    ] {
        GridSpec::new(
            "Figure 9: testbed symmetric — overall avg FCT",
            topo.clone(),
            dist,
        )
        .scheme("ecmp", Scheme::Ecmp)
        .scheme("clove-ecn", Scheme::Clove(clove))
        .scheme("presto*", Scheme::presto())
        .scheme("hermes", Scheme::Hermes(HermesParams::paper_testbed(&topo)))
        .loads(&[0.3, 0.5, 0.7, 0.9])
        .flows(base)
        .drain(Time::from_secs(drain_s))
        .run();
    }
    println!("(paper: Hermes 10-38% over ECMP, 9-15% over CLOVE-ECN at 30-70% load,");
    println!(" comparable to Presto* which is near-optimal under symmetry)");
}
