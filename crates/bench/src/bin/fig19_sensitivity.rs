//! **Figure 19** — Hermes parameter sensitivity: sweeps of `T_RTT_high`
//! and `Δ_RTT` (web-search and data-mining, asymmetric topology, 80%
//! load).
//!
//! Paper's findings: performance is stable around the recommended
//! values (simulation defaults: T_RTT_high = 180 µs, Δ_RTT = 80 µs);
//! the bursty web-search workload prefers *conservative* settings
//! (higher thresholds prune excessive reroutings) while the smooth
//! data-mining workload prefers *aggressive* ones.

use hermes_bench::{asym_topology, baseline_capacity, GridSpec};
use hermes_core::HermesParams;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = asym_topology();
    let base = HermesParams::from_topology(&topo);

    for (dist, nflows) in [
        (FlowSizeDist::web_search(), 1500),
        (FlowSizeDist::data_mining(), 300),
    ] {
        // (a) T_RTT_high sweep (absolute values, paper: 140–280 µs).
        let mut spec = GridSpec::new(
            "Figure 19a: sensitivity to T_RTT_high (80% load)",
            topo.clone(),
            dist.clone(),
        )
        .loads(&[0.8])
        .flows(nflows)
        .capacity(baseline_capacity())
        .drain(Time::from_secs(6));
        for high_us in [140u64, 180, 220, 280] {
            let mut p = base;
            p.t_rtt_high = Time::from_us(high_us);
            spec = spec.scheme(&format!("Thigh-{high_us}us"), Scheme::Hermes(p));
        }
        spec.run();

        // (b) Δ_RTT sweep (paper default: one-hop delay = 80 µs).
        let mut spec = GridSpec::new(
            "Figure 19b: sensitivity to Δ_RTT (80% load)",
            topo.clone(),
            dist,
        )
        .loads(&[0.8])
        .flows(nflows)
        .capacity(baseline_capacity())
        .drain(Time::from_secs(6));
        for delta_us in [40u64, 80, 120, 160] {
            let mut p = base;
            p.delta_rtt = Time::from_us(delta_us);
            spec = spec.scheme(&format!("dRTT-{delta_us}us"), Scheme::Hermes(p));
        }
        spec.run();
    }
    println!("(paper: FCT stable near the recommended settings; web-search favors");
    println!(" conservative thresholds, data-mining favors aggressive ones)");
}
