//! **Figure 1 / Example 1** — flowlet switching cannot timely react to
//! congestion under a stable traffic pattern.
//!
//! The paper's scenario: small flows A, B end up on path P1, large flows
//! C, D on path P2 (all DCTCP, rack L0 → rack L1 over two parallel
//! paths). When A and B complete, P1 goes idle — but DCTCP's smooth
//! window produces no inactivity gaps, so CONGA never sees a flowlet it
//! could reroute and C, D keep sharing P2. Ideal rebalancing (move one
//! large flow to the idle path) almost halves their completion time.
//!
//! We reproduce the adversarial initial placement by staging arrivals:
//! A and B start together (CONGA's DREs are empty, so they pick paths
//! independently at random — we select seeds where they collide, which
//! is the interesting half); C and D arrive once A/B are at line rate,
//! so CONGA's utilization metric steers both onto the other path.
//! The "ideal" row is computed analytically for the same byte schedule.

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{FlowId, HostId, LinkCfg, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::FlowSpec;

const SMALL: u64 = 12_500_000; // A, B: 12.5 MB ≈ 20 ms at a shared 10G path
const LARGE: u64 = 62_500_000; // C, D: 62.5 MB

fn topo() -> Topology {
    Topology::leaf_spine(
        2,
        2,
        4,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    )
}

/// Returns (mean large FCT, runs used) over seeds where the adversarial
/// placement (C and D sharing one path) actually formed — detected by
/// the large flows finishing within 5% of each other *and* notably
/// slower than the single-path ideal.
fn run(scheme: &dyn Fn(&Topology) -> Scheme, seeds: u64) -> (f64, usize) {
    let t = topo();
    let mut fcts = Vec::new();
    for seed in 0..seeds {
        let mut sim = Simulation::new(SimConfig::new(t.clone(), scheme(&t)).with_seed(100 + seed));
        let mk = |id: u64, src: u32, dst: u32, size: u64, at_us: u64| FlowSpec {
            id: FlowId(id),
            src: HostId(src),
            dst: HostId(dst),
            size,
            start: Time::from_us(at_us),
        };
        sim.add_flows([
            mk(0, 0, 4, SMALL, 0),
            mk(1, 1, 5, SMALL, 50),
            // C, D arrive once A/B have ramped up (~5 ms).
            mk(2, 2, 6, LARGE, 5_000),
            mk(3, 3, 7, LARGE, 5_050),
        ]);
        sim.run_to_completion(Time::from_secs(10));
        let large: Vec<f64> = sim
            .records()
            .iter()
            .filter(|r| r.size == LARGE)
            .map(|r| (r.finish.expect("must finish") - r.start).as_secs_f64())
            .collect();
        let line_rate_fct = LARGE as f64 * 8.0 / 10e9;
        // Keep runs where C and D actually collided on one path.
        let collided = large.iter().all(|&f| f > 1.5 * line_rate_fct);
        if collided {
            fcts.extend(large);
        }
    }
    let n = fcts.len();
    (fcts.iter().sum::<f64>() / n.max(1) as f64, n / 2)
}

fn main() {
    println!("== Figure 1: flowlet switching cannot split flows under stable traffic ==");
    let seeds = 24;
    // Ideal for the collided schedule: C and D share one 10G path while
    // A, B drain the other (A, B finish ≈ (5000 µs gap accounted) —
    // then one large flow moves to the idle path: both finish at an
    // effective rate close to dedicated 10G for the remainder.
    // Shared until A/B done at ~t_ab; delivered ≈ 5G × t_ab each; rest
    // at 10G. t_ab ≈ 2·SMALL/10G (two smalls share one path).
    let t_ab = 2.0 * SMALL as f64 * 8.0 / 10e9;
    let shared_window = t_ab - 0.005; // C,D start 5 ms in
    let delivered_shared = 5e9 * shared_window / 8.0;
    let ideal = shared_window + (LARGE as f64 - delivered_shared) * 8.0 / 10e9;
    let (conga, conga_runs) = run(&|_t| Scheme::Conga(CongaCfg::default()), seeds);
    let (letflow, lf_runs) = run(
        &|_t| Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
        seeds,
    );
    let (hermes, hermes_runs) = run(&|t| Scheme::Hermes(HermesParams::from_topology(t)), seeds);
    let mut tab = TextTable::new(&[
        "scheme",
        "mean large-flow FCT (ms)",
        "vs ideal",
        "collided runs",
    ]);
    tab.row(vec![
        "ideal rebalancing".into(),
        format!("{:.1}", ideal * 1e3),
        "1.00x".into(),
        "-".into(),
    ]);
    for (name, fct, n) in [
        ("CONGA (flowlet 150us)", conga, conga_runs),
        ("LetFlow (flowlet 150us)", letflow, lf_runs),
        ("Hermes", hermes, hermes_runs),
    ] {
        tab.row(vec![
            name.into(),
            format!("{:.1}", fct * 1e3),
            format!("{:.2}x", fct / ideal),
            format!("{n}"),
        ]);
    }
    tab.print();
    println!(
        "\n(paper: with DCTCP there are no flowlet gaps, so CONGA cannot split the\n\
         colliding large flows; ideal rerouting almost halves their FCT. Hermes'\n\
         R-gate also declines to move ~5 Gbps flows — its wins come from multi-flow\n\
         collisions in the macro workloads, §5.3.1 — so the motivation figure is\n\
         about the *gap to ideal* that passive flowlets leave on the table.)"
    );
}
