//! **Figures 10 & 11** — testbed-scale, asymmetric topology (one uplink
//! cut, Fig. 8b): overall average FCT vs. load, plus the Fig. 11
//! web-search breakdown (small-flow average / 99th, large-flow average,
//! normalized to Hermes).
//!
//! Paper's findings: ECMP collapses past 40–50% load; Hermes beats
//! CLOVE-ECN by 12–30% at 30–65%; Presto* — even with static
//! topology-dependent weights — falls off a cliff past 60% load from
//! congestion mismatch.

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::CloveCfg;
use hermes_net::{LeafId, SpineId, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let mut topo = Topology::testbed();
    let healthy = topo.total_uplink_bps();
    topo.cut_link(LeafId(1), SpineId(3)); // Fig. 8b: one leaf-spine link cut
    let clove = CloveCfg {
        flowlet_timeout: Time::from_us(800),
        ..CloveCfg::default()
    };
    // "loads up to 70% relative to the symmetric case, because the
    // bisection bandwidth is only 75% of the symmetric case".
    let loads = [0.3, 0.45, 0.6, 0.7];
    for (dist, base, normalize, drain_s) in [
        (FlowSizeDist::web_search(), 350, true, 5),
        (FlowSizeDist::data_mining(), 140, false, 20),
    ] {
        let mut g = GridSpec::new(
            "Figure 10/11: testbed asymmetric (one uplink cut)",
            topo.clone(),
            dist,
        )
        .scheme("ecmp", Scheme::Ecmp)
        .scheme("clove-ecn", Scheme::Clove(clove))
        .scheme("presto*-weighted", Scheme::presto_weighted())
        .scheme("hermes", Scheme::Hermes(HermesParams::paper_testbed(&topo)))
        .loads(&loads)
        .flows(base)
        .capacity(healthy)
        .drain(Time::from_secs(drain_s));
        if normalize {
            // Fig. 11 normalizes the web-search breakdown to Hermes.
            g = g.normalize_to("hermes");
        }
        g.run();
    }
    println!("(paper: ECMP deteriorates past 40-50%; Hermes 12-30% better than");
    println!(" CLOVE-ECN at 30-65%; weighted Presto* collapses past 60% load)");
}
