//! **Figure 16** — silent random packet drops: one spine switch drops
//! 2% of traversing packets; web-search workload on the 8×8 baseline,
//! loads up to 70% (one of eight cores is effectively lost).
//!
//! Paper's findings: Hermes detects the failure (high retransmission
//! fraction on an *uncongested* path) and routes around it, beating
//! everything else by >32%. ECMP pins 1/8 of flows onto the failed
//! switch (1.7–2.3× worse). CONGA is as bad as ECMP — worse, it
//! *prefers* the failed paths because throttled flows make them look
//! underutilized. Presto* sprays every flow across the failed switch.
//! LetFlow partially escapes (drops create flowlet gaps) but still
//! trails Hermes ~1.5×.

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg};
use hermes_net::{SpineFailure, SpineId, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = Topology::sim_baseline();
    GridSpec::new(
        "Figure 16: silent random drops (2% at one spine) — web-search",
        topo.clone(),
        FlowSizeDist::web_search(),
    )
    .scheme("ecmp", Scheme::Ecmp)
    .scheme("presto*", Scheme::presto())
    .scheme(
        "letflow",
        Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
    )
    .scheme("clove-ecn", Scheme::Clove(CloveCfg::default()))
    .scheme("conga", Scheme::Conga(CongaCfg::default()))
    .scheme("hermes", Scheme::Hermes(HermesParams::from_topology(&topo)))
    .loads(&[0.3, 0.5, 0.7])
    .flows(1200)
    .failure(SpineId(3), SpineFailure::random_drops(0.02))
    .normalize_to("hermes")
    .run();
    println!("(paper: Hermes >32% ahead of every other scheme; ECMP 1.7-2.3x worse;");
    println!(" CONGA paradoxically shifts MORE traffic onto the lossy switch;");
    println!(" LetFlow ~1.5x worse than Hermes)");
}
