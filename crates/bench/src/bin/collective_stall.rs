//! **Collective stall** — ring-allreduce time-to-completion under a
//! mid-run link degrade: an 8-rank ring (round-robin across both racks
//! of the 1G testbed) runs 6 chunked steps of 256 KB while the
//! leaf-0↔spine-0 link silently drops to 5 Mb/s just after the
//! collective starts.
//!
//! The barrier structure makes this the worst case for an oblivious
//! scheme: the ring advances at the pace of its slowest rank, so *one*
//! flow hashed onto the degraded link stalls all eight ranks for the
//! whole chunk — and ECMP rehashes a fresh victim every step. A
//! congestion-aware scheme senses the crawling path (queue build-up,
//! ECN, RTT inflation) and steers the ring around it, so the collective
//! finishes near the healthy-fabric time.
//!
//! What to look for:
//! * a 5 Mb/s crawl is slow enough to fire retransmission timeouts, so
//!   Hermes *senses* the sick path (paper §4.2) and reroutes the
//!   victim within a few RTOs — every step closes near the healthy
//!   pace and the collective finishes an order of magnitude ahead;
//! * CONGA's utilization feedback mistakes the starved link for an
//!   idle one often enough that some steps still crawl;
//! * ECMP rehashes a fresh victim onto the degraded link step after
//!   step; each one drags the whole barrier through a ~410 ms
//!   chunk-crawl, so the ring only closes after the fault clears;
//! * the hermes point replays with the same seed to an identical trace
//!   digest: the driver's completion-released flows are part of the
//!   deterministic event order, not wall-clock scheduling.

use hermes_bench::TextTable;
use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{FaultPlan, LeafId, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::{RingAllreduce, RingCfg};

const RING: RingCfg = RingCfg {
    ranks: 8,
    steps: 6,
    chunk_bytes: 256_000,
};
const DEGRADED_BPS: u64 = 5_000_000;
const ONSET: Time = Time::from_ms(2);
const CLEAR: Time = Time::from_ms(2_500);
const HORIZON: Time = Time::from_ms(3_000);
const SEEDS: [u64; 3] = [1, 2, 3];

struct RunOut {
    /// First chunk start → last chunk finish (the collective's span).
    completion: Option<Time>,
    /// Slowest single step (step release → ring-wide close).
    worst_step: Option<Time>,
    unfinished: usize,
    digest: u64,
    conservation_balanced: bool,
}

fn run(scheme: Scheme, seed: u64) -> RunOut {
    let topo = Topology::testbed();
    let plan =
        FaultPlan::new().link_degrade_window(LeafId(0), SpineId(0), DEGRADED_BPS, ONSET, CLEAR);
    let cfg = SimConfig::new(Topology::testbed(), scheme)
        .with_seed(seed)
        .with_fault_plan(plan);
    let mut sim = Simulation::new(cfg);
    sim.set_driver(Box::new(RingAllreduce::new(&topo, RING)));
    sim.run_to_completion(HORIZON);

    let records = sim.records();
    let unfinished = records.iter().filter(|r| r.finish.is_none()).count();
    // Reconstruct per-step spans from the decodable flow ids, exactly
    // as the ring_step conformance checker does.
    let mut completion = None;
    let mut worst_step = None;
    if unfinished == 0 && records.len() == RING.ranks * RING.steps {
        let first = records.iter().map(|r| r.start).min().expect("ring ran");
        let mut closes = [Time::ZERO; RING.steps];
        let mut opens = [Time::MAX; RING.steps];
        for rec in records {
            let (step, _) = RING.decode(rec.id);
            let f = rec.finish.expect("no unfinished records");
            closes[step] = closes[step].max(f);
            opens[step] = opens[step].min(rec.start);
        }
        completion = Some(closes[RING.steps - 1] - first);
        worst_step = closes.iter().zip(&opens).map(|(&c, &o)| c - o).max();
    }
    RunOut {
        completion,
        worst_step,
        unfinished,
        digest: sim.trace_digest(),
        conservation_balanced: sim.conservation().balanced(),
    }
}

fn ms(t: Option<Time>) -> String {
    t.map_or("stalled".into(), |t| {
        format!("{:.2}", t.as_secs_f64() * 1e3)
    })
}

fn main() {
    println!(
        "== Collective stall: 8-rank x 6-step ring-allreduce (256 KB chunks), \
         leaf0-spine0 degraded to 5 Mb/s at 2 ms =="
    );
    let schemes: Vec<(&str, Scheme)> = vec![
        (
            "hermes",
            Scheme::Hermes(HermesParams::from_topology(&Topology::testbed())),
        ),
        ("conga", Scheme::Conga(CongaCfg::default())),
        ("ecmp", Scheme::Ecmp),
    ];
    let mut tab = TextTable::new(&[
        "scheme",
        "seed",
        "ring completion ms",
        "worst step ms",
        "unfinished",
    ]);
    let mut hermes_first = None;
    let mut means: Vec<(&str, f64, usize)> = Vec::new();
    for (name, scheme) in &schemes {
        let mut total = 0.0;
        let mut n_done = 0;
        for &seed in &SEEDS {
            let out = run(scheme.clone(), seed);
            assert!(
                out.conservation_balanced,
                "{name}/{seed}: packet conservation must balance"
            );
            tab.row(vec![
                (*name).into(),
                format!("{seed}"),
                ms(out.completion),
                ms(out.worst_step),
                format!("{}", out.unfinished),
            ]);
            if let Some(c) = out.completion {
                total += c.as_secs_f64() * 1e3;
                n_done += 1;
            }
            if *name == "hermes" && seed == SEEDS[0] {
                hermes_first = Some(out);
            }
        }
        means.push((name, total / n_done.max(1) as f64, n_done));
    }
    tab.print();

    println!();
    for (name, mean, n_done) in &means {
        println!(
            "{name}: mean ring completion {mean:.2} ms over {n_done}/{} finished seed(s)",
            SEEDS.len()
        );
    }

    // Same-seed replay: completion-released flows ride the event queue,
    // so the whole collective must fingerprint identically.
    let h = hermes_first.expect("hermes scheme ran");
    let again = run(
        Scheme::Hermes(HermesParams::from_topology(&Topology::testbed())),
        SEEDS[0],
    );
    assert_eq!(
        h.digest, again.digest,
        "same-seed ring-allreduce runs must have identical trace digests"
    );
    println!(
        "determinism: same-seed replay digest {:#018x} matches; conservation balanced",
        h.digest
    );
    println!(
        "\n(expected: hermes senses the crawling path through its timeouts and\n\
         reroutes within a few RTOs, closing every step near the healthy pace;\n\
         CONGA dodges some stalls but keeps steering flows into the \"idle\"\n\
         starved link; ECMP rehashes a victim onto it step after step, and the\n\
         barrier drags all eight ranks through each ~410 ms chunk crawl.)"
    );
}
