//! **Figure 7** — the two evaluation workloads' flow-size CDFs
//! (web-search from DCTCP, data-mining from VL2), printed as
//! `(size_bytes, cumulative_probability)` series plus the summary
//! moments the paper quotes in §5.1.

use hermes_bench::TextTable;
use hermes_workload::FlowSizeDist;

fn main() {
    println!("== Figure 7: traffic distributions used for evaluation ==");
    for dist in [FlowSizeDist::web_search(), FlowSizeDist::data_mining()] {
        println!("\n-- {} --", dist.name());
        let mut t = TextTable::new(&["percentile", "flow size (bytes)"]);
        for p in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0] {
            t.row(vec![
                format!("{:.0}%", p * 100.0),
                format!("{:.0}", dist.quantile(p)),
            ]);
        }
        t.print();
        println!("mean flow size: {:.2} MB", dist.mean_bytes() / 1e6);
        let frac_small = dist.cdf(100_000.0);
        let frac_large = 1.0 - dist.cdf(10_000_000.0);
        println!(
            "flows < 100KB: {:.1}%   flows > 10MB: {:.1}%",
            frac_small * 100.0,
            frac_large * 100.0
        );
    }
    // §5.1: "the data-mining workload is more skewed with 95% of all
    // data bytes belonging to about 3.6% of flows that are larger than
    // 35MB".
    let dm = FlowSizeDist::data_mining();
    println!(
        "\ndata-mining flows > 35MB: {:.1}% of flows",
        (1.0 - dm.cdf(35e6)) * 100.0
    );
}
