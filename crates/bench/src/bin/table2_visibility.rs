//! **Table 2** — the average number of concurrent flows observed on the
//! parallel paths between a ToR-to-ToR pair vs. a host-to-host pair, for
//! the data-mining and web-search workloads at 60% and 80% load on the
//! 8×8 leaf-spine fabric.
//!
//! The paper's point: a source ToR concurrently sees several flows per
//! parallel path toward each destination rack, while a host pair sees
//! two orders of magnitude fewer — piggybacking alone cannot provide
//! enough visibility (§2.2.1).

use hermes_bench::{flows, run_point, PointCfg, TextTable};
use hermes_net::Topology;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    println!("== Table 2: visibility (avg concurrent flows per parallel path) ==");
    let topo = Topology::sim_baseline();
    let mut t = TextTable::new(&[
        "entity pair",
        "data-mining 60%",
        "data-mining 80%",
        "web-search 60%",
        "web-search 80%",
    ]);
    let mut sw_row = vec!["switch pair".to_string()];
    let mut host_row = vec!["host pair".to_string()];
    for (dist, base) in [
        (FlowSizeDist::data_mining(), 250),
        (FlowSizeDist::web_search(), 1500),
    ] {
        for load in [0.6, 0.8] {
            let t0 = std::time::Instant::now();
            // A ToR observes a flow for as long as its flow-table entry
            // lives; model a 50 ms aging window (see EXPERIMENTS.md).
            let cfg = PointCfg::new(topo.clone(), Scheme::Ecmp, dist.clone(), load)
                .flows(flows(base))
                .visibility_linger(Time::from_ms(50))
                .seed(42);
            let r = run_point(&cfg);
            eprintln!(
                "   {} @ {:.0}%: switch {:.3} host {:.4} ({:.1}s)",
                dist.name(),
                load * 100.0,
                r.vis_switch,
                r.vis_host,
                t0.elapsed().as_secs_f64()
            );
            sw_row.push(format!("{:.3}", r.vis_switch));
            host_row.push(format!("{:.4}", r.vis_host));
        }
    }
    t.row(sw_row);
    t.row(host_row);
    t.print();
    println!("\n(paper: switch pair 1.7–5.9, host pair 0.007–0.022 — the ~2 orders-of-");
    println!(" magnitude gap between switch- and host-pair visibility is the claim)");
}
