//! **Figure 17** — packet blackhole: one spine deterministically drops
//! packets for half of the source–destination host pairs from rack 1 to
//! rack 8; web-search workload, 8×8 baseline.
//!
//! Paper's findings: Hermes detects the hole after 3 timeouts and all
//! flows finish (≥1.6× better FCT than everyone). ECMP leaves ~1.5% of
//! flows unfinished, inflating its average FCT 9–22× over Hermes.
//! CONGA is *worse* than ECMP: the blackholed paths look idle, so it
//! steers extra flows into them. Presto* finishes everything (every
//! flow has path diversity per packet) but all affected flows crawl.
//! LetFlow is second best yet still >1.6× behind.

use hermes_bench::GridSpec;
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg};
use hermes_net::{LeafId, SpineFailure, SpineId, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

fn main() {
    let topo = Topology::sim_baseline();
    // "drop packets for half of the source-destination IP pairs from
    // Rack 1 to Rack 8 deterministically on one randomly selected
    // switch".
    let hole = SpineFailure::blackhole(LeafId(0), LeafId(7), 0.5);
    GridSpec::new(
        "Figure 17: packet blackhole (half of rack1→rack8 pairs) — web-search",
        topo.clone(),
        FlowSizeDist::web_search(),
    )
    .scheme("ecmp", Scheme::Ecmp)
    .scheme("presto*", Scheme::presto())
    .scheme(
        "letflow",
        Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
    )
    .scheme("clove-ecn", Scheme::Clove(CloveCfg::default()))
    .scheme("conga", Scheme::Conga(CongaCfg::default()))
    .scheme("hermes", Scheme::Hermes(HermesParams::from_topology(&topo)))
    .loads(&[0.3, 0.5, 0.7])
    .flows(1200)
    .failure(SpineId(5), hole)
    .drain(Time::from_secs(2))
    .normalize_to("hermes")
    .run();
    println!("(paper: Hermes detects the hole after 3 timeouts → zero unfinished");
    println!(" flows and ≥1.6x better FCT; ECMP strands ~1.5% of flows (9-22x avg");
    println!(" FCT); CONGA strands even more; LetFlow second-best but >1.6x behind)");
}
