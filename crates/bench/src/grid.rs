//! The standard experiment shape: a (scheme × load) grid over one
//! workload and topology, reported exactly the way the paper's FCT
//! figures are (overall avg, small avg, small 99th, large avg,
//! unfinished fraction; optionally normalized to one scheme).

use hermes_net::{SpineFailure, SpineId, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_transport::TransportCfg;
use hermes_workload::{FctSummary, FlowSizeDist};

use crate::{avg_summaries, flows, fmt_ms, fmt_ratio, run_point, runs, PointCfg, TextTable};

/// A full figure's worth of runs.
pub struct GridSpec {
    pub title: String,
    pub topo: Topology,
    /// Define load against this capacity (healthy-fabric convention).
    pub capacity: Option<u64>,
    pub schemes: Vec<(String, Scheme)>,
    pub loads: Vec<f64>,
    pub dist: FlowSizeDist,
    /// Flows per point before `HERMES_SCALE`.
    pub base_flows: usize,
    pub failures: Vec<(SpineId, SpineFailure)>,
    pub transport: TransportCfg,
    /// Explicit reorder-mask override applied to every scheme.
    pub reorder_mask: Option<Option<Time>>,
    /// Normalize output ratios to this scheme's values.
    pub normalize_to: Option<String>,
    pub drain: Time,
}

impl GridSpec {
    pub fn new(title: &str, topo: Topology, dist: FlowSizeDist) -> GridSpec {
        GridSpec {
            title: title.to_string(),
            topo,
            capacity: None,
            schemes: Vec::new(),
            loads: Vec::new(),
            dist,
            base_flows: 400,
            failures: Vec::new(),
            transport: TransportCfg::dctcp(),
            reorder_mask: None,
            normalize_to: None,
            drain: Time::from_secs(3),
        }
    }

    pub fn scheme(mut self, name: &str, s: Scheme) -> GridSpec {
        self.schemes.push((name.to_string(), s));
        self
    }

    pub fn loads(mut self, l: &[f64]) -> GridSpec {
        self.loads = l.to_vec();
        self
    }

    pub fn flows(mut self, n: usize) -> GridSpec {
        self.base_flows = n;
        self
    }

    pub fn capacity(mut self, c: u64) -> GridSpec {
        self.capacity = Some(c);
        self
    }

    pub fn failure(mut self, s: SpineId, f: SpineFailure) -> GridSpec {
        self.failures.push((s, f));
        self
    }

    pub fn transport(mut self, t: TransportCfg) -> GridSpec {
        self.transport = t;
        self
    }

    pub fn reorder_mask(mut self, m: Option<Time>) -> GridSpec {
        self.reorder_mask = Some(m);
        self
    }

    pub fn normalize_to(mut self, name: &str) -> GridSpec {
        self.normalize_to = Some(name.to_string());
        self
    }

    pub fn drain(mut self, d: Time) -> GridSpec {
        self.drain = d;
        self
    }

    /// Run every point and print the figure's table(s). Returns the raw
    /// summaries as `(scheme, load) → FctSummary` in row-major order.
    pub fn run(&self) -> Vec<(String, f64, FctSummary)> {
        println!("== {} ==", self.title);
        println!(
            "   workload={}  flows/point={}  seeds/point={}",
            self.dist.name(),
            flows(self.base_flows),
            runs()
        );
        let mut results = Vec::new();
        for (name, scheme) in &self.schemes {
            for &load in &self.loads {
                let t0 = std::time::Instant::now();
                let mut sums = Vec::new();
                for seed in 0..runs() {
                    let mut cfg =
                        PointCfg::new(self.topo.clone(), scheme.clone(), self.dist.clone(), load)
                            .flows(flows(self.base_flows))
                            .seed(1_000 + seed)
                            .transport(self.transport)
                            .drain(self.drain);
                    if let Some(c) = self.capacity {
                        cfg = cfg.capacity(c);
                    }
                    if let Some(m) = self.reorder_mask {
                        cfg = cfg.reorder_mask(m);
                    }
                    for (s, f) in &self.failures {
                        cfg = cfg.failure(*s, *f);
                    }
                    sums.push(run_point(&cfg).fct);
                }
                let avg = avg_summaries(&sums);
                eprintln!(
                    "   [{}] {name} load {load:.2}: avg {:.3} ms ({} unfinished) in {:.1}s",
                    self.dist.name(),
                    avg.avg * 1e3,
                    avg.unfinished,
                    t0.elapsed().as_secs_f64()
                );
                results.push((name.clone(), load, avg));
            }
        }
        self.print_tables(&results);
        results
    }

    fn baseline(&self, results: &[(String, f64, FctSummary)], load: f64) -> Option<FctSummary> {
        let norm = self.normalize_to.as_ref()?;
        results
            .iter()
            .find(|(n, l, _)| n == norm && *l == load)
            .map(|(_, _, s)| *s)
    }

    fn print_tables(&self, results: &[(String, f64, FctSummary)]) {
        let normalized = self.normalize_to.is_some();
        let unit = if normalized { "(×)" } else { "(ms)" };
        let mut t = TextTable::new(&[
            "scheme",
            "load",
            &format!("avg {unit}"),
            &format!("small avg {unit}"),
            &format!("small p99 {unit}"),
            &format!("large avg {unit}"),
            "unfinished",
        ]);
        for (name, load, s) in results {
            let base = self.baseline(results, *load);
            let cell = |v: f64, b: fn(&FctSummary) -> f64| -> String {
                match base {
                    Some(bs) if b(&bs) > 0.0 => fmt_ratio(v / b(&bs)),
                    _ => fmt_ms(v),
                }
            };
            t.row(vec![
                name.clone(),
                format!("{load:.2}"),
                cell(s.avg, |b| b.avg),
                cell(s.avg_small, |b| b.avg_small),
                cell(s.p99_small, |b| b.p99_small),
                cell(s.avg_large, |b| b.avg_large),
                format!("{:.2}%", 100.0 * s.unfinished_frac()),
            ]);
        }
        t.print();
        println!();
    }
}
