//! The Table 6 probing-cost model: visibility vs. overhead for four
//! probing strategies on a large leaf-spine fabric.
//!
//! *Visibility* is the number of parallel paths whose condition a sender
//! can see per destination; *overhead* is probe traffic as a fraction of
//! an edge (host–leaf) link's capacity.
//!
//! Model (per §3.1.3 and the numbers in Table 6):
//!
//! * **Piggybacking** (CLOVE/FlowBender): no probes; visibility is only
//!   what the host's own flows touch — the Table 2 host-pair
//!   measurement (< 0.01 flows per path).
//! * **Brute force**: each host probes *every parallel path to every
//!   other host* each interval (host granularity is what failure
//!   patterns like per-pair blackholes would require).
//! * **Power of two choices**: each host probes 2 random paths + the
//!   previous best (3) per destination *host*.
//! * **Hermes**: one probe agent per rack probes 3 paths per destination
//!   *rack* and shares results rack-wide, cutting both the number of
//!   probing hosts and the destination granularity.
//!
//! With the paper's setup (100×100 leaf-spine, 10 Gbps edge links, 64 B
//! probes every 500 µs) this reproduces Table 6's ladder:
//! brute ≈ 100× link capacity, po2c ≈ 3×, Hermes ≈ 3%.

/// Fabric and probing parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProbingCostModel {
    pub n_leaves: usize,
    pub n_spines: usize,
    pub hosts_per_leaf: usize,
    /// Edge link capacity (bits/s).
    pub link_bps: f64,
    /// Probe packet size (bytes).
    pub probe_bytes: f64,
    /// Probe interval (seconds).
    pub interval_s: f64,
    /// Measured host-pair visibility (Table 2) for the piggyback row.
    pub piggyback_visibility: f64,
}

impl Default for ProbingCostModel {
    /// The paper's §3.1.3 setting: "a 100×100 leaf-spine topology with
    /// 10 Gbps link; a probe packet is typically 64 bytes and the probe
    /// interval is set to 500 µs". (The overhead arithmetic of Table 6
    /// is consistent with 100 hosts per rack.)
    fn default() -> ProbingCostModel {
        ProbingCostModel {
            n_leaves: 100,
            n_spines: 100,
            hosts_per_leaf: 100,
            link_bps: 10e9,
            probe_bytes: 64.0,
            interval_s: 500e-6,
            piggyback_visibility: 0.009,
        }
    }
}

/// One row of Table 6.
#[derive(Clone, Debug)]
pub struct ProbingRow {
    pub scheme: &'static str,
    /// Paths visible per destination.
    pub visibility: f64,
    /// Probe traffic / edge link capacity (0 = none).
    pub overhead_frac: f64,
}

impl ProbingCostModel {
    fn probe_bps(&self) -> f64 {
        self.probe_bytes * 8.0 / self.interval_s
    }

    fn n_hosts(&self) -> usize {
        self.n_leaves * self.hosts_per_leaf
    }

    /// Brute force: all paths × all other hosts, from every host.
    pub fn brute_force(&self) -> ProbingRow {
        let streams = (self.n_hosts() - self.hosts_per_leaf) as f64 * self.n_spines as f64;
        ProbingRow {
            scheme: "brute-force",
            visibility: self.n_spines as f64,
            overhead_frac: streams * self.probe_bps() / self.link_bps,
        }
    }

    /// Power of two choices (+1 memory): 3 paths × all other hosts.
    pub fn power_of_two(&self) -> ProbingRow {
        let streams = (self.n_hosts() - self.hosts_per_leaf) as f64 * 3.0;
        ProbingRow {
            scheme: "power-of-two-choices",
            visibility: 3.0,
            overhead_frac: streams * self.probe_bps() / self.link_bps,
        }
    }

    /// Hermes: rack agents, 3 paths × destination racks, shared.
    pub fn hermes(&self) -> ProbingRow {
        let streams = (self.n_leaves - 1) as f64 * 3.0;
        ProbingRow {
            scheme: "hermes",
            visibility: 3.0,
            overhead_frac: streams * self.probe_bps() / self.link_bps,
        }
    }

    /// Piggybacking (no probes at all).
    pub fn piggyback(&self) -> ProbingRow {
        ProbingRow {
            scheme: "piggyback",
            visibility: self.piggyback_visibility,
            overhead_frac: 0.0,
        }
    }

    /// All four rows in Table 6 order.
    pub fn rows(&self) -> Vec<ProbingRow> {
        vec![
            self.piggyback(),
            self.brute_force(),
            self.power_of_two(),
            self.hermes(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table6_ladder() {
        let m = ProbingCostModel::default();
        let brute = m.brute_force();
        let po2c = m.power_of_two();
        let hermes = m.hermes();
        // Brute force ≈ 100× the link capacity.
        assert!(
            (80.0..130.0).contains(&brute.overhead_frac),
            "brute {:.1}x",
            brute.overhead_frac
        );
        // po2c ≈ 3×.
        assert!(
            (2.5..3.5).contains(&po2c.overhead_frac),
            "po2c {:.2}x",
            po2c.overhead_frac
        );
        // Hermes ≈ 3%.
        assert!(
            (0.02..0.04).contains(&hermes.overhead_frac),
            "hermes {:.4}",
            hermes.overhead_frac
        );
        // "reduces the overhead by over 30× compared to brute force"
        assert!(brute.overhead_frac / po2c.overhead_frac > 30.0);
        // "This further reduces the overhead by 100×"
        let agent_gain = po2c.overhead_frac / hermes.overhead_frac;
        assert!(
            (50.0..200.0).contains(&agent_gain),
            "agent gain {agent_gain}"
        );
        // "over 3000× better than the brute-force approach"
        assert!(brute.overhead_frac / hermes.overhead_frac > 3000.0);
    }

    #[test]
    fn visibility_ladder() {
        let m = ProbingCostModel::default();
        let rows = m.rows();
        assert!(rows[0].visibility < 0.01); // piggyback
        assert_eq!(rows[1].visibility, 100.0); // brute
        assert_eq!(rows[2].visibility, 3.0); // po2c
        assert_eq!(rows[3].visibility, 3.0); // hermes
                                             // "over 300× better visibility than piggybacking"
        assert!(rows[3].visibility / rows[0].visibility > 300.0);
    }
}
