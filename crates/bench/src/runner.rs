//! Single experiment-point runner: one (topology, scheme, workload,
//! load, seed) tuple → FCT summary.

use hermes_net::{ConservationReport, FaultPlan, SpineFailure, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::{MergeDefect, ShardStats, SimRng, Time};
use hermes_transport::TransportCfg;
use hermes_workload::{
    summarize, ElephantMiceGen, FctSummary, FlowGen, FlowRecord, FlowSizeDist, IncastDriver,
    RingAllreduce, WorkloadKind,
};

/// One experiment point.
#[derive(Clone)]
pub struct PointCfg {
    pub topo: Topology,
    pub scheme: Scheme,
    /// Which traffic shape drives the point. `Poisson` (the default)
    /// pre-schedules `n_flows` open-loop arrivals from `dist`; the
    /// staged-dependency kinds install a [`hermes_workload::FlowDriver`]
    /// and ignore `dist`/`n_flows`.
    pub workload: WorkloadKind,
    pub dist: FlowSizeDist,
    /// Offered load relative to `capacity_override` (or the topology's
    /// live uplink capacity).
    pub load: f64,
    pub n_flows: usize,
    pub seed: u64,
    /// Load is usually defined against the *healthy* fabric even when
    /// the topology under test is degraded (the paper's convention).
    pub capacity_override: Option<u64>,
    pub transport: TransportCfg,
    /// Explicit reorder-mask override (None = scheme default).
    pub reorder_mask: Option<Option<Time>>,
    pub failures: Vec<(SpineId, SpineFailure)>,
    /// Time-triggered fault schedule (onset *and* clearance) replayed
    /// through the event queue — the transient-failure experiments.
    pub fault_plan: Option<FaultPlan>,
    /// Extra simulated time after the last arrival before declaring
    /// remaining flows unfinished.
    pub drain: Time,
    /// Visibility observation window (Table 2).
    pub visibility_linger: Time,
}

impl PointCfg {
    pub fn new(topo: Topology, scheme: Scheme, dist: FlowSizeDist, load: f64) -> PointCfg {
        PointCfg {
            topo,
            scheme,
            workload: WorkloadKind::Poisson,
            dist,
            load,
            n_flows: 500,
            seed: 1,
            capacity_override: None,
            transport: TransportCfg::dctcp(),
            reorder_mask: None,
            failures: Vec::new(),
            fault_plan: None,
            drain: Time::from_secs(3),
            visibility_linger: Time::ZERO,
        }
    }

    pub fn visibility_linger(mut self, l: Time) -> PointCfg {
        self.visibility_linger = l;
        self
    }

    pub fn flows(mut self, n: usize) -> PointCfg {
        self.n_flows = n;
        self
    }

    pub fn seed(mut self, s: u64) -> PointCfg {
        self.seed = s;
        self
    }

    pub fn capacity(mut self, c: u64) -> PointCfg {
        self.capacity_override = Some(c);
        self
    }

    pub fn failure(mut self, s: SpineId, f: SpineFailure) -> PointCfg {
        self.failures.push((s, f));
        self
    }

    pub fn fault(mut self, plan: FaultPlan) -> PointCfg {
        self.fault_plan = Some(plan);
        self
    }

    pub fn transport(mut self, t: TransportCfg) -> PointCfg {
        self.transport = t;
        self
    }

    pub fn reorder_mask(mut self, m: Option<Time>) -> PointCfg {
        self.reorder_mask = Some(m);
        self
    }

    pub fn drain(mut self, d: Time) -> PointCfg {
        self.drain = d;
        self
    }

    pub fn workload(mut self, w: WorkloadKind) -> PointCfg {
        self.workload = w;
        self
    }
}

/// The outcome of a point: FCT stats plus run diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct PointResult {
    pub fct: FctSummary,
    pub events: u64,
    pub sim_time: Time,
    /// Table 2 visibility measurements.
    pub vis_switch: f64,
    pub vis_host: f64,
}

/// Run one point. Deterministic in `(cfg, seed)`.
pub fn run_point(cfg: &PointCfg) -> PointResult {
    let (sim, horizon) = run_sim(cfg, None);
    finish_point(sim, horizon)
}

/// Everything [`run_point`] reports plus the raw evidence the
/// conformance checkers need: per-flow records, the event-trace
/// digest, the packet-conservation snapshot, and a goodput timeline.
///
/// Note on digests: the goodput sampler injects `Global` events that
/// are part of the digested trace, so a detailed run's digest differs
/// from a plain [`run_point`] run's. Golden digests must therefore be
/// produced and checked through this same entry point (they are — see
/// `hermes-testkit`). Sampler events never touch RNG streams or flow
/// state, so FCTs and records are identical either way.
#[derive(Clone, Debug)]
pub struct DetailedResult {
    pub fct: FctSummary,
    pub records: Vec<FlowRecord>,
    pub events: u64,
    pub sim_time: Time,
    /// The measurement horizon `summarize` charged unfinished flows at.
    pub horizon: Time,
    pub digest: u64,
    pub conservation: ConservationReport,
    /// `(sample time, cumulative in-order TCP payload bytes)`.
    pub goodput: Vec<(Time, u64)>,
    /// `TxDone` boundaries handled inline within packet trains (already
    /// counted in `events`); the perf harness reports the batching rate.
    pub trains_inlined: u64,
    /// Past-time schedules the event queue clamped (0 in a causal run;
    /// nonzero is how a lookahead violation in the sharded merge
    /// surfaces — the conformance invariant checker rejects it).
    pub queue_clamps: u64,
    /// Worker threads the run recorded (0 = the plain single-queue
    /// entry point).
    pub sim_threads: u64,
    /// Per-shard merge counters (empty unless the run was sharded).
    pub shards: Vec<ShardStats>,
}

fn detail(sim: &Simulation, horizon: Time) -> DetailedResult {
    DetailedResult {
        fct: summarize(sim.records(), horizon),
        records: sim.records().to_vec(),
        events: sim.stats.events,
        sim_time: sim.now(),
        horizon,
        digest: sim.trace_digest(),
        conservation: sim.conservation(),
        goodput: sim.sampler_series(0).to_vec(),
        trains_inlined: sim.trains_inlined(),
        queue_clamps: sim.queue_clamps(),
        sim_threads: sim.stats.sim_threads,
        shards: sim.shard_counters(),
    }
}

/// Run one point, keeping the evidence. Deterministic in `(cfg, seed)`.
pub fn run_point_detailed(cfg: &PointCfg, goodput_interval: Time) -> DetailedResult {
    let (sim, horizon) = run_sim(cfg, Some(goodput_interval));
    detail(&sim, horizon)
}

/// [`run_point_detailed`] through [`Simulation::run_parallel`]: the
/// sharded engine at `threads`. Every field of the result except
/// `sim_threads`/`shards` must be byte-identical to the single-queue
/// run — that equality is what `tests/parallel.rs` and
/// `xtask parallel` hold the engine to.
pub fn run_point_detailed_parallel(
    cfg: &PointCfg,
    goodput_interval: Time,
    threads: usize,
) -> DetailedResult {
    run_point_detailed_parallel_with(cfg, goodput_interval, threads, MergeDefect::None)
}

/// [`run_point_detailed_parallel`] with a planted merge defect — the
/// conformance self-test's entry for proving the checkers catch merge
/// bugs. Not part of the public benchmarking surface.
#[doc(hidden)]
pub fn run_point_detailed_parallel_with(
    cfg: &PointCfg,
    goodput_interval: Time,
    threads: usize,
    defect: MergeDefect,
) -> DetailedResult {
    let (mut sim, horizon) = build_sim(cfg, Some(goodput_interval));
    sim.run_parallel_with(threads, horizon, defect);
    detail(&sim, horizon)
}

/// Shared materialization: build the sim, wire failures/faults,
/// schedule the workload, run to the drain horizon.
///
/// Open-loop kinds (`Poisson`, `ElephantMice`) pre-schedule their
/// arrivals and drain for `cfg.drain` past the last one. The
/// staged-dependency kinds (`RingAllreduce`, `Incast`) have no arrival
/// schedule — flows are released by completions — so `cfg.drain` is the
/// whole run's time budget.
fn run_sim(cfg: &PointCfg, goodput_interval: Option<Time>) -> (Simulation, Time) {
    let (mut sim, horizon) = build_sim(cfg, goodput_interval);
    sim.run_to_completion(horizon);
    (sim, horizon)
}

/// Materialize the sim and its workload without running it (shared by
/// the single-queue and sharded entry points; public so the
/// thread-matrix tests can hand a fresh sim to
/// `hermes_runtime::fingerprint_parallel`). Returns the sim and its
/// drain horizon.
pub fn build_sim(cfg: &PointCfg, goodput_interval: Option<Time>) -> (Simulation, Time) {
    // The workload RNG stream, disjoint from the sim's internal streams.
    let wl_rng = SimRng::new(cfg.seed).split(0x6E4);
    let mut sim_cfg = SimConfig::new(cfg.topo.clone(), cfg.scheme.clone())
        .with_seed(cfg.seed)
        .with_transport(cfg.transport)
        .with_visibility_linger(cfg.visibility_linger);
    if let Some(mask) = cfg.reorder_mask {
        sim_cfg = sim_cfg.with_reorder_mask(mask);
    }
    let mut sim = Simulation::new(sim_cfg);
    if let Some(interval) = goodput_interval {
        let idx = sim.add_sampler(interval, Probe::TotalGoodput);
        debug_assert_eq!(idx, 0, "goodput sampler must be sampler 0");
    }
    for (s, f) in &cfg.failures {
        sim.set_spine_failure(*s, *f);
    }
    if let Some(plan) = &cfg.fault_plan {
        sim.set_fault_plan(plan);
    }
    let horizon = match cfg.workload {
        WorkloadKind::Poisson => {
            let mut gen = FlowGen::new(
                &cfg.topo,
                cfg.dist.clone(),
                cfg.load,
                cfg.capacity_override,
                wl_rng,
            );
            let specs = gen.schedule(cfg.n_flows);
            let last_arrival = specs.last().map_or(Time::ZERO, |s| s.start);
            sim.add_flows(specs);
            last_arrival + cfg.drain
        }
        WorkloadKind::ElephantMice(mix) => {
            let mut gen =
                ElephantMiceGen::new(&cfg.topo, mix, cfg.load, cfg.capacity_override, wl_rng);
            let specs = gen.schedule(cfg.n_flows);
            let last_arrival = specs.last().map_or(Time::ZERO, |s| s.start);
            sim.add_flows(specs);
            last_arrival + cfg.drain
        }
        WorkloadKind::RingAllreduce(ring) => {
            sim.set_driver(Box::new(RingAllreduce::new(&cfg.topo, ring)));
            cfg.drain
        }
        WorkloadKind::Incast(incast) => {
            sim.set_driver(Box::new(IncastDriver::new(&cfg.topo, incast, wl_rng)));
            cfg.drain
        }
    };
    (sim, horizon)
}

fn finish_point(mut sim: Simulation, horizon: Time) -> PointResult {
    let (vis_switch, vis_host) = sim.visibility();
    PointResult {
        fct: summarize(sim.records(), horizon),
        events: sim.stats.events,
        sim_time: sim.now(),
        vis_switch,
        vis_host,
    }
}

/// Average FCT summaries over multiple seeds (component-wise).
pub fn avg_summaries(v: &[FctSummary]) -> FctSummary {
    assert!(!v.is_empty());
    let n = v.len() as f64;
    let mut out = v[0];
    let mean = |f: fn(&FctSummary) -> f64| v.iter().map(f).sum::<f64>() / n;
    out.avg = mean(|s| s.avg);
    out.p50 = mean(|s| s.p50);
    out.p95 = mean(|s| s.p95);
    out.p99 = mean(|s| s.p99);
    out.avg_small = mean(|s| s.avg_small);
    out.p99_small = mean(|s| s.p99_small);
    out.avg_large = mean(|s| s.avg_large);
    out.unfinished = v.iter().map(|s| s.unfinished).sum::<usize>() / v.len();
    out.n = v.iter().map(|s| s.n).sum::<usize>() / v.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::LeafId;

    #[test]
    fn point_runs_and_is_deterministic() {
        let topo = Topology::testbed();
        let cfg = PointCfg::new(topo, Scheme::Ecmp, FlowSizeDist::web_search(), 0.3).flows(50);
        let a = run_point(&cfg);
        let b = run_point(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fct.avg, b.fct.avg);
        assert_eq!(a.fct.unfinished, 0);
        assert!(a.fct.avg > 0.0);
    }

    #[test]
    fn failure_points_report_unfinished() {
        let topo = Topology::testbed();
        let cfg = PointCfg::new(topo, Scheme::Ecmp, FlowSizeDist::web_search(), 0.3)
            .flows(60)
            .failure(
                SpineId(0),
                SpineFailure::blackhole(LeafId(0), LeafId(1), 1.0),
            )
            .drain(Time::from_ms(500));
        let r = run_point(&cfg);
        assert!(r.fct.unfinished > 0, "blackholed ECMP flows cannot finish");
    }

    #[test]
    fn detailed_run_matches_plain_fct() {
        let topo = Topology::testbed();
        let cfg = PointCfg::new(topo, Scheme::Ecmp, FlowSizeDist::web_search(), 0.3).flows(50);
        let plain = run_point(&cfg);
        let det = run_point_detailed(&cfg, Time::from_ms(1));
        // Sampler events are observation-only: FCTs must be identical.
        assert_eq!(plain.fct.avg, det.fct.avg);
        assert_eq!(plain.fct.p99, det.fct.p99);
        assert_eq!(det.records.len(), 50);
        assert!(det.conservation.balanced(), "{:?}", det.conservation);
        assert!(!det.goodput.is_empty());
        // ...but the digested trace now includes the sampler ticks.
        assert!(det.events > plain.events);
        // Detailed runs are themselves deterministic.
        let det2 = run_point_detailed(&cfg, Time::from_ms(1));
        assert_eq!(det.digest, det2.digest);
        assert_eq!(det.goodput, det2.goodput);
    }

    #[test]
    fn ring_workload_runs_every_step_to_completion() {
        use hermes_workload::RingCfg;
        let cfg = PointCfg::new(
            Topology::testbed(),
            Scheme::Ecmp,
            FlowSizeDist::web_search(),
            0.3,
        )
        .workload(WorkloadKind::RingAllreduce(RingCfg {
            ranks: 4,
            steps: 3,
            chunk_bytes: 32_000,
        }))
        .drain(Time::from_secs(2));
        let det = run_point_detailed(&cfg, Time::from_ms(1));
        assert_eq!(det.records.len(), 12, "ranks × steps flows must run");
        assert_eq!(det.fct.unfinished, 0);
        let bytes: u64 = det.records.iter().map(|r| r.size).sum();
        assert_eq!(bytes, 4 * 3 * 32_000);
        let det2 = run_point_detailed(&cfg, Time::from_ms(1));
        assert_eq!(det.digest, det2.digest, "driver runs must be deterministic");
    }

    #[test]
    fn incast_workload_releases_bursts_sequentially() {
        use hermes_workload::IncastCfg;
        let cfg = PointCfg::new(
            Topology::testbed(),
            Scheme::Ecmp,
            FlowSizeDist::web_search(),
            0.3,
        )
        .workload(WorkloadKind::Incast(IncastCfg {
            fanout: 4,
            reply_bytes: 16_000,
            bursts: 3,
        }))
        .drain(Time::from_secs(2));
        let det = run_point_detailed(&cfg, Time::from_ms(1));
        assert_eq!(det.records.len(), 12);
        assert_eq!(det.fct.unfinished, 0);
        // Burst b+1 must start strictly after burst b's last finish.
        for b in 0..2 {
            let close = det.records[b * 4..(b + 1) * 4]
                .iter()
                .map(|r| r.finish.unwrap())
                .max()
                .unwrap();
            for r in &det.records[(b + 1) * 4..(b + 2) * 4] {
                assert!(
                    r.start >= close,
                    "burst released before predecessor drained"
                );
            }
        }
    }

    #[test]
    fn parallel_detailed_run_matches_single_queue() {
        let topo = Topology::testbed();
        let cfg = PointCfg::new(topo, Scheme::Ecmp, FlowSizeDist::web_search(), 0.3).flows(50);
        let single = run_point_detailed(&cfg, Time::from_ms(1));
        for threads in [1_usize, 2, 4] {
            let par = run_point_detailed_parallel(&cfg, Time::from_ms(1), threads);
            assert_eq!(
                par.digest, single.digest,
                "threads={threads} changed the digest"
            );
            assert_eq!(par.events, single.events);
            assert_eq!(par.fct.avg, single.fct.avg);
            assert_eq!(par.goodput, single.goodput);
            assert_eq!(par.queue_clamps, 0);
            assert_eq!(par.sim_threads, threads as u64);
            if threads >= 2 {
                let shard_events: u64 = par.shards.iter().map(|s| s.events).sum();
                assert!(!par.shards.is_empty(), "sharded run reports shard counters");
                assert!(shard_events > 0, "shards dispatched the trace");
            }
        }
    }

    #[test]
    fn planted_merge_defects_are_observable() {
        use hermes_workload::IncastCfg;
        // Incast releases whole bursts at one instant across racks, so
        // cross-shard same-time ties are guaranteed — exactly what the
        // tiebreak seam corrupts and the lookahead seam reorders.
        let cfg = PointCfg::new(
            Topology::testbed(),
            Scheme::Ecmp,
            FlowSizeDist::web_search(),
            0.3,
        )
        .workload(WorkloadKind::Incast(IncastCfg {
            fanout: 4,
            reply_bytes: 16_000,
            bursts: 3,
        }))
        .drain(Time::from_secs(2));
        let good = run_point_detailed(&cfg, Time::from_ms(1));
        let drop_tie = run_point_detailed_parallel_with(
            &cfg,
            Time::from_ms(1),
            2,
            MergeDefect::DropSeqTiebreak,
        );
        assert_ne!(
            drop_tie.digest, good.digest,
            "dropping the seq tiebreaker must corrupt the trace digest"
        );
        let over = run_point_detailed_parallel_with(
            &cfg,
            Time::from_ms(1),
            2,
            MergeDefect::OverAdvanceLookahead,
        );
        assert!(
            over.queue_clamps > 0,
            "over-advancing lookahead must trip the causality clamp counter"
        );
    }

    #[test]
    fn averaging_is_componentwise() {
        let a = FctSummary {
            avg: 1.0,
            p99: 2.0,
            ..Default::default()
        };
        let b = FctSummary {
            avg: 3.0,
            p99: 6.0,
            ..Default::default()
        };
        let m = avg_summaries(&[a, b]);
        assert_eq!(m.avg, 2.0);
        assert_eq!(m.p99, 4.0);
    }
}
