//! Perf-trajectory measurement: wall-clock, event and packet
//! throughput, and peak RSS for named bench points.
//!
//! This is the *measurement* half of the `xtask perf` harness. The
//! `perf_point` binary runs one named point in-process and prints a
//! machine-parseable `key=value` report; `xtask perf` runs that binary
//! once per scheduler build (timing wheel vs. the `heap-queue` feature
//! fallback), checks the event-trace digests match, and writes the
//! comparison to `BENCH_perf.json`. Methodology notes live in
//! DESIGN.md §11.
//!
//! Wall-clock code is deliberately quarantined here: `hermes-bench` is
//! the only crate the determinism lint allows to time real execution.

use std::time::Instant;

use hermes_core::HermesParams;
use hermes_net::Topology;
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

use crate::runner::{run_point_detailed, run_point_detailed_parallel, PointCfg};

/// One timed run of a named point under the scheduler compiled in.
#[derive(Clone, Debug)]
pub struct PerfSample {
    /// Point name (`fig12_baseline`, …).
    pub point: String,
    /// `hermes_sim::SCHEDULER`: `"wheel"` or `"heap"`.
    pub scheduler: &'static str,
    /// End-to-end wall time of the simulation run, milliseconds.
    pub wall_ms: f64,
    /// Events dispatched.
    pub events: u64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Packets injected into the fabric.
    pub packets: u64,
    /// Injected packets per wall-clock second.
    pub packets_per_sec: f64,
    /// `VmHWM` of this process after the run, KiB (0 if unreadable).
    pub peak_rss_kb: u64,
    /// `TxDone` boundaries handled inline within packet trains (already
    /// counted in `events`; measures how often batching fired).
    pub trains_inlined: u64,
    /// Event-trace digest — must be identical across schedulers for
    /// the same (point, seed).
    pub digest: u64,
    /// Simulated time reached.
    pub sim_time: Time,
    /// Worker threads the engine ran with (1 = single-queue path).
    pub threads: u64,
}

impl PerfSample {
    /// The `key=value` lines `xtask perf` parses back out of the child
    /// process. One field per line, stable names.
    pub fn to_report(&self) -> String {
        format!(
            "point={}\nscheduler={}\nwall_ms={:.3}\nevents={}\nevents_per_sec={:.0}\n\
             packets={}\npackets_per_sec={:.0}\npeak_rss_kb={}\ntrains_inlined={}\n\
             digest={:#018x}\nsim_time_ns={}\nthreads={}\n",
            self.point,
            self.scheduler,
            self.wall_ms,
            self.events,
            self.events_per_sec,
            self.packets,
            self.packets_per_sec,
            self.peak_rss_kb,
            self.trains_inlined,
            self.digest,
            self.sim_time.as_ns(),
            self.threads,
        )
    }
}

/// Names accepted by [`perf_point_cfg`], in display order.
pub const PERF_POINTS: &[&str] = &["fig12_baseline", "fig12_ecmp", "testbed_hermes"];

/// The fabric-only drain point for the genuinely parallel engine: the
/// Figure-12 topology packed with pre-scheduled packet trains and
/// drained through `hermes_net::DrainCfg` (conservative window
/// barriers, DESIGN.md §17). Not a [`PointCfg`] — it bypasses the flow
/// harness so the shard workers dominate the profile, which is what
/// the `xtask perf` speedup gate measures.
pub const PERF_DRAIN_POINT: &str = "fig12_shard_drain";

/// Build the [`PointCfg`] for a named perf point. `quick` shrinks the
/// flow count for CI smoke runs (same topology and scheme, different
/// digest — quick and full runs are only comparable to themselves).
pub fn perf_point_cfg(name: &str, quick: bool) -> Option<PointCfg> {
    let cfg = match name {
        // The headline point: the Figure 12 8×8 web-search baseline at
        // high load under Hermes — the paper's main simulation setting
        // and the heaviest regular consumer of the event queue.
        "fig12_baseline" => {
            let topo = Topology::sim_baseline();
            let params = HermesParams::from_topology(&topo);
            PointCfg::new(
                topo,
                Scheme::Hermes(params),
                FlowSizeDist::web_search(),
                0.8,
            )
            .flows(if quick { 250 } else { 2000 })
        }
        // Scheduler-dominated control: no LB state, pure queue churn.
        "fig12_ecmp" => PointCfg::new(
            Topology::sim_baseline(),
            Scheme::Ecmp,
            FlowSizeDist::web_search(),
            0.8,
        )
        .flows(if quick { 250 } else { 2000 }),
        // Small-topology sanity point (seconds even in debug builds).
        "testbed_hermes" => {
            let topo = Topology::testbed();
            let params = HermesParams::paper_testbed(&topo);
            PointCfg::new(
                topo,
                Scheme::Hermes(params),
                FlowSizeDist::web_search(),
                0.5,
            )
            .flows(if quick { 60 } else { 400 })
        }
        _ => return None,
    };
    Some(cfg)
}

/// Run one named point and time it. Returns `None` for unknown names.
pub fn measure_point(name: &str, quick: bool) -> Option<PerfSample> {
    measure_point_threaded(name, quick, 1)
}

/// Run one named point with `threads` engine workers and time it.
/// `threads <= 1` is the single-queue fast path; the digest must be
/// identical either way. Returns `None` for unknown names.
pub fn measure_point_threaded(name: &str, quick: bool, threads: usize) -> Option<PerfSample> {
    if name == PERF_DRAIN_POINT {
        return Some(measure_drain_point(quick, threads));
    }
    let cfg = perf_point_cfg(name, quick)?;
    let started = Instant::now();
    let det = if threads >= 2 {
        run_point_detailed_parallel(&cfg, Time::from_ms(1), threads)
    } else {
        run_point_detailed(&cfg, Time::from_ms(1))
    };
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let secs = wall.as_secs_f64().max(1e-9);
    Some(PerfSample {
        point: name.to_string(),
        scheduler: hermes_sim::SCHEDULER,
        wall_ms,
        events: det.events,
        events_per_sec: det.events as f64 / secs,
        packets: det.conservation.injected,
        packets_per_sec: det.conservation.injected as f64 / secs,
        peak_rss_kb: peak_rss_kb(),
        trains_inlined: det.trains_inlined,
        digest: det.digest,
        sim_time: det.sim_time,
        threads: threads.max(1) as u64,
    })
}

/// Time the conservative-window drain point. Serial at `threads <= 1`,
/// shard workers otherwise; the drain digest is thread-count-invariant
/// by construction, so `xtask perf` cross-checks it before trusting the
/// speedup ratio.
fn measure_drain_point(quick: bool, threads: usize) -> PerfSample {
    let cfg = hermes_net::DrainCfg::fig12(quick);
    let started = Instant::now();
    let res = if threads >= 2 {
        cfg.run_parallel(threads)
    } else {
        cfg.run_serial()
    };
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let secs = wall.as_secs_f64().max(1e-9);
    PerfSample {
        point: PERF_DRAIN_POINT.to_string(),
        scheduler: hermes_sim::SCHEDULER,
        wall_ms,
        events: res.events,
        events_per_sec: res.events as f64 / secs,
        packets: res.injected,
        packets_per_sec: res.injected as f64 / secs,
        peak_rss_kb: peak_rss_kb(),
        trains_inlined: 0,
        digest: res.digest,
        sim_time: Time::ZERO,
        threads: threads.max(1) as u64,
    }
}

/// `VmHWM` (peak resident set) of the current process in KiB, read
/// from `/proc/self/status`; 0 on non-Linux or if unreadable.
pub fn peak_rss_kb() -> u64 {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => parse_vm_hwm_kb(&status),
        Err(_) => 0,
    }
}

/// Extract the `VmHWM` value (KiB) from a `/proc/<pid>/status` body.
/// Returns 0 when the line is absent or malformed — callers treat 0 as
/// "RSS unavailable" and skip RSS-based gating with a notice.
pub fn parse_vm_hwm_kb(status: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_point_builds() {
        for name in PERF_POINTS {
            assert!(perf_point_cfg(name, true).is_some(), "{name}");
            assert!(perf_point_cfg(name, false).is_some(), "{name}");
        }
        assert!(perf_point_cfg("no_such_point", true).is_none());
    }

    #[test]
    fn quick_points_shrink_the_flow_count() {
        for name in PERF_POINTS {
            let quick = perf_point_cfg(name, true).expect("named point");
            let full = perf_point_cfg(name, false).expect("named point");
            assert!(quick.n_flows < full.n_flows, "{name}");
        }
    }

    #[test]
    fn vm_hwm_parser_handles_fixture_and_edge_cases() {
        // Representative /proc/self/status excerpt (tab-separated, with
        // surrounding fields the parser must skip).
        let fixture = "Name:\tperf_point\nVmPeak:\t  190724 kB\nVmHWM:\t  144100 kB\n\
                       VmRSS:\t  101832 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(fixture), 144_100);
        // Missing line → 0 ("unavailable", gate skips with a notice).
        assert_eq!(parse_vm_hwm_kb("Name:\tx\nVmRSS:\t5 kB\n"), 0);
        // Malformed value → 0, not a panic.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tgarbage kB\n"), 0);
        assert_eq!(parse_vm_hwm_kb(""), 0);
        // No unit suffix still parses (the kernel always writes one,
        // but the parser must not depend on it).
        assert_eq!(parse_vm_hwm_kb("VmHWM: 512\n"), 512);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        // The harness records RSS per scheduler build; on the Linux CI
        // hosts the probe must actually work.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn measure_reports_consistent_rates() {
        let s = measure_point("testbed_hermes", true).expect("known point");
        assert_eq!(s.scheduler, hermes_sim::SCHEDULER);
        assert!(s.events > 0 && s.packets > 0);
        assert!(s.wall_ms > 0.0);
        let implied = s.events as f64 / (s.wall_ms / 1e3);
        assert!(
            (implied - s.events_per_sec).abs() / s.events_per_sec < 1e-6,
            "rate must be derived from the same wall measurement"
        );
        let report = s.to_report();
        for key in [
            "point=",
            "scheduler=",
            "wall_ms=",
            "events=",
            "packets=",
            "peak_rss_kb=",
            "trains_inlined=",
            "digest=",
            "threads=",
        ] {
            assert!(report.contains(key), "missing {key} in {report}");
        }
    }

    #[test]
    fn drain_point_digest_is_thread_count_invariant() {
        let serial = measure_point_threaded(PERF_DRAIN_POINT, true, 1).expect("drain point");
        let sharded = measure_point_threaded(PERF_DRAIN_POINT, true, 2).expect("drain point");
        assert_eq!(serial.digest, sharded.digest, "drain merge order changed");
        assert_eq!(serial.events, sharded.events);
        assert_eq!(serial.packets, sharded.packets);
        assert_eq!(serial.threads, 1);
        assert_eq!(sharded.threads, 2);
        assert!(serial.events > 0 && serial.packets > 0);
    }

    #[test]
    fn threaded_full_sim_point_reproduces_the_serial_digest() {
        let serial = measure_point_threaded("testbed_hermes", true, 1).expect("known point");
        let sharded = measure_point_threaded("testbed_hermes", true, 4).expect("known point");
        assert_eq!(
            serial.digest, sharded.digest,
            "sharded engine must replay the single-queue event order"
        );
        assert_eq!(serial.events, sharded.events);
        assert_eq!(sharded.threads, 4);
    }
}
