//! # hermes-bench — shared harness for the paper's tables and figures
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). This library holds the
//! shared pieces: a single-point FCT runner, the probing-cost
//! calculator behind Table 6, environment-variable scaling, and a plain
//! text table printer.
//!
//! ## Scaling knobs (environment variables)
//!
//! | Var | Meaning | Default |
//! |---|---|---|
//! | `HERMES_SCALE` | multiply per-point flow counts | `1.0` |
//! | `HERMES_RUNS`  | seeds averaged per point | `1` |
//!
//! The paper averages 5 runs of 2 simulated seconds; the defaults here
//! are sized for a single-core laptop run of the whole suite. Raise
//! `HERMES_SCALE`/`HERMES_RUNS` to tighten confidence intervals.

mod grid;
mod perf;
mod probing;
mod runner;
mod table;
mod trace;

pub use grid::GridSpec;
pub use perf::{
    measure_point, measure_point_threaded, peak_rss_kb, perf_point_cfg, PerfSample,
    PERF_DRAIN_POINT, PERF_POINTS,
};
pub use probing::{ProbingCostModel, ProbingRow};
pub use runner::{
    avg_summaries, build_sim, run_point, run_point_detailed, run_point_detailed_parallel,
    run_point_detailed_parallel_with, DetailedResult, PointCfg, PointResult,
};
pub use table::{fmt_ms, fmt_ratio, TextTable};
pub use trace::{run_trace_point, trace_point, TraceOut, TracePoint, CLEAR, ONSET, TRACE_POINTS};

/// Global flow-count scale from `HERMES_SCALE`.
pub fn scale() -> f64 {
    std::env::var("HERMES_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Number of seeds per point from `HERMES_RUNS`.
pub fn runs() -> u64 {
    std::env::var("HERMES_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Scaled flow count (at least 50).
pub fn flows(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(50)
}

/// The paper's §5.3.2 asymmetric topology: the 8×8 baseline with 20% of
/// leaf-spine links degraded from 10 Gbps to 2 Gbps, chosen by a fixed
/// seed so every figure sees the same asymmetry.
pub fn asym_topology() -> hermes_net::Topology {
    let mut topo = hermes_net::Topology::sim_baseline();
    let mut rng = hermes_sim::SimRng::new(0xA5);
    topo.degrade_random_links(0.2, 2_000_000_000, &mut rng);
    topo
}

/// Healthy-fabric capacity of the 8×8 baseline (load reference for
/// asymmetric runs, per the paper's convention).
pub fn baseline_capacity() -> u64 {
    hermes_net::Topology::sim_baseline().total_uplink_bps()
}
