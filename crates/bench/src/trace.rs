//! Structured-trace points: run one scenario with the telemetry sink
//! installed and export the event trace (JSONL) plus sampled metrics
//! (CSV). `cargo run -p xtask -- trace <point> --out <dir>` is the CLI
//! entry; `tests/telemetry.rs` replays the mini point in-process.
//!
//! Only meaningful when hermes-telemetry is compiled in (the
//! `telemetry` feature of this crate); without it the sim still runs
//! but the trace comes back empty.

use hermes_core::HermesParams;
use hermes_net::{FaultPlan, FlowId, HostId, LeafId, LinkCfg, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::Time;
use hermes_workload::FlowSpec;

/// Fault window shared by every fig17-style point: a rack0→rack3
/// blackhole on spine 0 from `ONSET` until `CLEAR`.
pub const ONSET: Time = Time::from_ms(150);
/// See [`ONSET`].
pub const CLEAR: Time = Time::from_ms(450);
const HORIZON: Time = Time::from_ms(1_500);
const SEED: u64 = 7;

/// A named traceable scenario.
pub struct TracePoint {
    pub name: &'static str,
    pub about: &'static str,
    flows: u64,
    flow_bytes: u64,
    gap_us: u64,
}

/// The registry `xtask trace` resolves names against.
pub const TRACE_POINTS: &[TracePoint] = &[
    TracePoint {
        name: "fig17_transient_recovery",
        about: "rack0→rack3 blackhole on spine 0 (150→450 ms), Hermes at full fig17 load",
        flows: 2_400,
        flow_bytes: 100_000,
        gap_us: 250,
    },
    TracePoint {
        name: "fig17_mini",
        about: "scaled-down fig17 transient used by the tier-1 telemetry suite",
        flows: 2_000,
        flow_bytes: 50_000,
        gap_us: 250,
    },
];

/// Look up a registered point by name.
pub fn trace_point(name: &str) -> Option<&'static TracePoint> {
    TRACE_POINTS.iter().find(|p| p.name == name)
}

fn topo() -> Topology {
    Topology::leaf_spine(
        4,
        4,
        8,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    )
}

fn plan() -> FaultPlan {
    FaultPlan::new().blackhole_window(SpineId(0), LeafId(0), LeafId(3), 1.0, ONSET, CLEAR)
}

fn flows(p: &TracePoint) -> Vec<FlowSpec> {
    (0..p.flows)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId((i % 8) as u32),
            dst: HostId((24 + (i * 5 + 3) % 8) as u32),
            size: p.flow_bytes,
            start: Time::from_us(i * p.gap_us),
        })
        .collect()
}

/// Everything a trace run produces.
pub struct TraceOut {
    /// The drained event trace, seq-ordered.
    pub events: Vec<hermes_telemetry::TraceEvent>,
    /// The trace rendered as one JSON object per line.
    pub jsonl: String,
    /// Cadence-sampled metrics as `at_ns,name,value` rows.
    pub csv: String,
    /// The run's determinism digest (identical to a telemetry-off run).
    pub digest: u64,
    /// Events the bounded ring had to shed (0 unless the sink capacity
    /// is undersized for the scenario).
    pub shed: u64,
    /// Flows that missed the horizon.
    pub unfinished: usize,
}

/// Run `p` under Hermes with the sink installed and export the trace.
pub fn run_trace_point(p: &TracePoint) -> TraceOut {
    hermes_telemetry::install(hermes_telemetry::SinkConfig {
        capacity: 1 << 22,
        ..Default::default()
    });
    let t = topo();
    let cfg = SimConfig::new(t.clone(), Scheme::Hermes(HermesParams::from_topology(&t)))
        .with_seed(SEED)
        .with_fault_plan(plan());
    let mut sim = Simulation::new(cfg);
    sim.add_flows(flows(p));
    sim.run_to_completion(HORIZON);
    // Final flush: cadence sampling rides event dispatch, so metrics
    // observed by the very last events need one end-of-run snapshot.
    hermes_telemetry::sample_metrics(sim.now());
    let events = hermes_telemetry::drain();
    let rows = hermes_telemetry::take_metric_rows();
    let shed = hermes_telemetry::dropped();
    hermes_telemetry::uninstall();
    TraceOut {
        jsonl: hermes_telemetry::to_jsonl(&events),
        csv: hermes_telemetry::to_csv(&rows),
        digest: sim.trace_digest(),
        shed,
        unfinished: sim.records().iter().filter(|r| r.finish.is_none()).count(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_names() {
        assert!(trace_point("fig17_transient_recovery").is_some());
        assert!(trace_point("fig17_mini").is_some());
        assert!(trace_point("fig99_nope").is_none());
    }

    #[test]
    fn mini_point_emits_a_parseable_trace() {
        if !hermes_telemetry::compiled() {
            return;
        }
        let out = run_trace_point(trace_point("fig17_mini").unwrap());
        assert_eq!(out.shed, 0, "sink capacity must hold the mini trace");
        assert!(!out.events.is_empty());
        let first = out.jsonl.lines().next().expect("nonempty jsonl");
        assert!(first.starts_with("{\"seq\":0,\"at_ns\":"));
        assert_eq!(out.jsonl.lines().count(), out.events.len());
        assert!(out.csv.starts_with("at_ns,name,value\n"));
    }
}
