//! Plain-text table output shared by every bench binary.

/// A simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|&s| String::from(s)).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render with per-column widths; first column left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], w: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<width$}", c, width = w[i]));
                } else {
                    out.push_str(&format!("  {:>width$}", c, width = w[i]));
                }
            }
            out.push('\n');
        };
        line(&self.header, &w, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &w, &mut out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds as milliseconds with 3 significant decimals.
pub fn fmt_ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Format a ratio (e.g. FCT normalized to Hermes).
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["scheme", "load", "avg FCT (ms)"]);
        t.row(vec!["hermes".into(), "0.5".into(), "1.234".into()]);
        t.row(vec!["ecmp".into(), "0.5".into(), "12.345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].starts_with("hermes"));
        // Right alignment: the numeric column ends at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(0.001234), "1.234");
        assert_eq!(fmt_ratio(1.5), "1.50");
    }
}
