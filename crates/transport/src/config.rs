//! Transport configuration profiles.

use hermes_sim::Time;

/// Parameters of the sender state machine.
///
/// The defaults mirror the paper's methodology (§5.1): DCTCP with an
/// initial window of 10 packets and a 10 ms initial/minimum RTO.
#[derive(Clone, Copy, Debug)]
pub struct TransportCfg {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd: u32,
    /// Minimum (and initial) retransmission timeout.
    pub min_rto: Time,
    /// Cap on the backed-off RTO.
    pub max_rto: Time,
    /// Number of duplicate ACKs that triggers fast retransmit. The
    /// paper's §2.2.2 experiments raise this to 500 to mask reordering.
    pub dupack_thresh: u32,
    /// Whether the sender reacts to ECN echoes (DCTCP). When false the
    /// sender is plain TCP NewReno and its packets are not ECN-capable.
    pub ecn: bool,
    /// DCTCP's α EWMA gain `g`.
    pub dctcp_g: f64,
    /// Upper bound on the congestion window (bytes).
    pub max_cwnd: u64,
}

impl TransportCfg {
    /// DCTCP as evaluated in the paper.
    pub fn dctcp() -> TransportCfg {
        TransportCfg {
            mss: 1460,
            init_cwnd: 10,
            min_rto: Time::from_ms(10),
            max_rto: Time::from_ms(320),
            dupack_thresh: 3,
            ecn: true,
            dctcp_g: 1.0 / 16.0,
            max_cwnd: 1_500_000,
        }
    }

    /// Plain TCP NewReno (§5.4's "different transport protocols").
    pub fn tcp() -> TransportCfg {
        TransportCfg {
            ecn: false,
            ..TransportCfg::dctcp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles() {
        let d = TransportCfg::dctcp();
        assert!(d.ecn);
        assert_eq!(d.init_cwnd, 10);
        assert_eq!(d.min_rto, Time::from_ms(10));
        let t = TransportCfg::tcp();
        assert!(!t.ecn);
        assert_eq!(t.mss, d.mss);
    }
}
