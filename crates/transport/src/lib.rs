//! # hermes-transport — DCTCP / TCP NewReno for the simulated fabric
//!
//! Pure transport state machines (no I/O, no timers of their own):
//!
//! * [`Sender`] — NewReno with the DCTCP extension: slow start,
//!   congestion avoidance, fast retransmit/recovery, RTO with
//!   exponential backoff, per-window ECN-fraction window reduction.
//! * [`Receiver`] — cumulative ACKs with out-of-order reassembly and an
//!   optional JUGGLER-style reordering buffer (used to build Presto*,
//!   the paper's reordering-masked Presto variant).
//! * [`TransportCfg`] — the paper's §5.1 parameters (DCTCP, IW = 10,
//!   RTO_min = 10 ms) plus a plain-TCP profile for §5.4.
//!
//! Both machines communicate with the runtime through action buffers
//! ([`SendAction`] / [`RecvAction`]), which keeps every window-arithmetic
//! rule unit-testable without a network and lets the runtime attach
//! paths, stamp packets, and manage timers however it likes.
//!
//! One deliberate simplification, documented in `DESIGN.md`: the
//! receiver acknowledges every data packet (no delayed ACKs). DCTCP's
//! two-state ECE echo machine exists solely to keep marks accurate
//! *under* delayed ACKs, so immediate per-packet echo preserves the α
//! estimate exactly.

mod config;
mod receiver;
mod sender;

pub use config::TransportCfg;
pub use receiver::{Receiver, RecvAction, SegmentIn};
pub use sender::{SendAction, Sender, SenderStats};
