//! The sender state machine: TCP NewReno with the DCTCP extension.
//!
//! The sender is a pure state machine — it performs no I/O and sets no
//! timers itself. Every input (`start`, `on_ack`, `on_rto`) appends
//! [`SendAction`]s to a caller-provided buffer; the runtime turns those
//! into packets on the fabric and timer events on the queue. This keeps
//! the window arithmetic unit-testable without a network.
//!
//! Implemented behaviour:
//! * slow start / congestion avoidance with byte-counted increase,
//! * fast retransmit + NewReno fast recovery (partial-ACK hole repair,
//!   window inflation/deflation),
//! * RTO with exponential backoff and go-back-N resend,
//! * DCTCP: per-window ECN fraction `F`, `α ← (1−g)α + g·F`, and a
//!   single multiplicative reduction `cwnd ← cwnd(1 − α/2)` per marked
//!   window (§5.1 of the paper; Alizadeh et al. 2010),
//! * Karn-compliant RTT estimation (the runtime only feeds RTT samples
//!   from unretransmitted segments, via the fabric's timestamp echo).

use hermes_sim::Time;

use crate::config::TransportCfg;

/// RFC 6298 clock granularity `G`: the floor on the RTO variance term
/// `max(G, 4·RTTVAR)`. The simulation clock ticks in whole nanoseconds
/// ([`Time`] is integer ns), so G is one tick — the finest granularity
/// the RFC's formula is defined over here, and exactly enough that a
/// perfectly stable RTT (integer truncation drives rttvar to 0) never
/// yields `rto == srtt`.
const RTO_GRANULARITY: Time = Time::from_ns(1);

/// An instruction from the sender to the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit payload bytes `[seq, seq+len)`. `retx` is true when any
    /// part of the range was previously transmitted.
    Tx { seq: u64, len: u32, retx: bool },
    /// (Re)arm the retransmission timer for this absolute deadline,
    /// replacing any previously armed deadline.
    ArmRto { deadline: Time },
    /// Cancel the retransmission timer.
    DisarmRto,
    /// Every payload byte has been cumulatively acknowledged.
    FullyAcked,
}

/// Sender-side counters exposed for load balancers and metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// Segments retransmitted (fast retransmit + RTO + go-back-N).
    pub retx_segments: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_retx: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Fast-recovery episodes detected as spurious (reordering) and
    /// undone.
    pub spurious_retx: u64,
    /// Total data segments handed to the fabric (incl. retransmissions).
    pub segments_sent: u64,
}

/// One flow's sender.
pub struct Sender {
    cfg: TransportCfg,
    /// Total payload bytes to deliver.
    size: u64,
    snd_una: u64,
    snd_nxt: u64,
    /// Highest byte ever transmitted (for marking go-back-N resends).
    max_sent: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// NewReno fast-recovery marker: in recovery until `ack > recover`.
    recover: Option<u64>,
    // --- Reordering resilience (Linux-style) ---
    /// Current duplicate-ACK threshold; starts at the configured value
    /// and grows when fast retransmits turn out to be spurious
    /// (reordering, not loss) — mirroring Linux's `tcp_reordering`
    /// adaptation.
    dyn_dupthresh: u32,
    /// Window state saved at fast-recovery entry, for spurious-recovery
    /// undo (the DSACK/Eifel behaviour of real stacks).
    prior_cwnd: f64,
    prior_ssthresh: f64,
    recovery_start: Time,
    episode_retx: u32,
    // --- DCTCP ---
    alpha: f64,
    win_acked: u64,
    win_marked: u64,
    win_end: u64,
    // --- RTT / RTO ---
    srtt: Option<Time>,
    rttvar: Time,
    rto: Time,
    backoff: u32,
    finished: bool,
    /// Telemetry label (the runtime's flow id); 0 until assigned. Only
    /// read when emitting trace records — never drives transport logic.
    label: u64,
    pub stats: SenderStats,
}

impl Sender {
    /// A sender for a flow of `size` payload bytes.
    pub fn new(cfg: TransportCfg, size: u64) -> Sender {
        assert!(size > 0, "zero-byte flow");
        let cwnd = (cfg.init_cwnd as u64 * cfg.mss as u64) as f64;
        Sender {
            cfg,
            size,
            snd_una: 0,
            snd_nxt: 0,
            max_sent: 0,
            cwnd,
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            recover: None,
            dyn_dupthresh: cfg.dupack_thresh,
            prior_cwnd: 0.0,
            prior_ssthresh: 0.0,
            recovery_start: Time::ZERO,
            episode_retx: 0,
            alpha: 0.0,
            win_acked: 0,
            win_marked: 0,
            win_end: 0,
            srtt: None,
            rttvar: Time::ZERO,
            rto: cfg.min_rto,
            backoff: 0,
            finished: false,
            label: 0,
            stats: SenderStats::default(),
        }
    }

    /// Attach the flow id used to label this sender's trace records.
    pub fn set_label(&mut self, label: u64) {
        self.label = label;
    }

    /// Telemetry: emit a window/α/RTO snapshot.
    #[inline]
    fn trace_cwnd(&self, now: Time) {
        let (flow, cwnd, alpha) = (self.label, self.cwnd, self.alpha);
        let rto_ns = self.current_rto().as_ns();
        hermes_telemetry::emit_with(now, || hermes_telemetry::Record::CwndUpdate {
            flow,
            cwnd,
            alpha,
            rto_ns,
        });
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current DCTCP α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<Time> {
        self.srtt
    }

    /// The current (adaptive) duplicate-ACK threshold.
    pub fn dupack_threshold(&self) -> u32 {
        self.dyn_dupthresh
    }

    /// Payload bytes handed to the fabric so far, retransmissions
    /// included (the paper's `s_sent`).
    pub fn bytes_sent(&self) -> u64 {
        self.stats.segments_sent * self.cfg.mss as u64
    }

    /// Bytes in flight (sent and not cumulatively acknowledged).
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Whether every byte has been cumulatively acknowledged.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Flow size in payload bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Begin transmitting. Emits the initial window and arms the RTO.
    pub fn start(&mut self, now: Time, out: &mut Vec<SendAction>) {
        debug_assert_eq!(self.snd_nxt, 0, "start() called twice");
        self.win_end = 0; // first rollover happens at first ACK
        self.send_window(out);
        out.push(SendAction::ArmRto {
            deadline: now + self.current_rto(),
        });
    }

    /// Process a cumulative ACK.
    ///
    /// * `ack` — next byte expected by the receiver.
    /// * `ecn_echo` — CE echo for the triggering data packet.
    /// * `rtt` — RTT sample, present only for unretransmitted triggers.
    pub fn on_ack(
        &mut self,
        ack: u64,
        ecn_echo: bool,
        rtt: Option<Time>,
        now: Time,
        out: &mut Vec<SendAction>,
    ) {
        if self.finished {
            return;
        }
        if let Some(sample) = rtt {
            self.update_rtt(sample);
        }
        if ack > self.snd_una {
            self.on_new_ack(ack, ecn_echo, now, out);
        } else {
            self.on_dup_ack(ecn_echo, now, out);
        }
    }

    fn on_new_ack(&mut self, ack: u64, ecn_echo: bool, now: Time, out: &mut Vec<SendAction>) {
        let delta = ack - self.snd_una;
        self.snd_una = ack;
        // A spurious RTO rewinds snd_nxt (go-back-N); a late ACK for the
        // original transmission can then overtake it. The ACKed data
        // needs no resend, so resume from the ACK point.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        self.backoff = 0;
        // DCTCP per-window mark accounting (bytes, as in the DCTCP paper).
        self.win_acked += delta;
        if ecn_echo {
            self.win_marked += delta;
        }
        match self.recover {
            // RFC 6582: exit recovery once the ACK covers `recover`;
            // anything short of it is a partial ACK.
            Some(rec) if ack < rec => {
                // Partial ACK: repair the next hole, deflate the window.
                let len = self.segment_len_at(self.snd_una);
                if len > 0 {
                    self.stats.retx_segments += 1;
                    self.stats.segments_sent += 1;
                    self.episode_retx += 1;
                    out.push(SendAction::Tx {
                        seq: self.snd_una,
                        len,
                        retx: true,
                    });
                }
                self.cwnd =
                    (self.cwnd - delta as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
            }
            Some(_) => {
                // Recovery complete. If it completed within a fraction
                // of an RTT after a single retransmission, the "loss"
                // was reordering: the original packet arrived and filled
                // the hole before our retransmission could have. Undo
                // the window reduction (as Linux does on DSACK/Eifel
                // detection) and raise the dupACK threshold.
                let spurious = self.episode_retx <= 1
                    && self.srtt.is_some_and(|rtt| {
                        now.saturating_sub(self.recovery_start) < rtt.mul_f64(0.75)
                    });
                self.recover = None;
                self.dup_acks = 0;
                if spurious {
                    self.cwnd = self.prior_cwnd.max(self.cfg.mss as f64);
                    self.ssthresh = self.prior_ssthresh;
                    self.dyn_dupthresh =
                        (self.dyn_dupthresh + 2).min(16.max(self.cfg.dupack_thresh));
                    self.stats.spurious_retx += 1;
                } else {
                    self.cwnd = self.ssthresh.max(self.cfg.mss as f64);
                }
            }
            None => {
                self.dup_acks = 0;
                let mss = self.cfg.mss as f64;
                if self.cwnd < self.ssthresh {
                    // Slow start: byte-counted exponential growth.
                    self.cwnd += (delta.min(self.cfg.mss as u64)) as f64;
                } else {
                    // Congestion avoidance: +MSS per window.
                    self.cwnd += mss * delta as f64 / self.cwnd;
                }
                self.cwnd = self.cwnd.min(self.cfg.max_cwnd as f64);
            }
        }
        // DCTCP window rollover.
        if self.snd_una >= self.win_end {
            let f = if self.win_acked > 0 {
                self.win_marked as f64 / self.win_acked as f64
            } else {
                0.0
            };
            self.alpha = (1.0 - self.cfg.dctcp_g) * self.alpha + self.cfg.dctcp_g * f;
            if self.cfg.ecn && self.win_marked > 0 && self.recover.is_none() {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(self.cfg.mss as f64);
                self.ssthresh = self.cwnd;
            }
            self.win_acked = 0;
            self.win_marked = 0;
            self.win_end = self.snd_nxt.max(self.snd_una + 1);
            if hermes_telemetry::enabled() {
                // One snapshot per DCTCP observation window: α just
                // rolled, and the window may have been cut.
                self.trace_cwnd(now);
            }
        }
        if self.snd_una >= self.size {
            self.finished = true;
            out.push(SendAction::DisarmRto);
            out.push(SendAction::FullyAcked);
            return;
        }
        self.send_window(out);
        out.push(SendAction::ArmRto {
            deadline: now + self.current_rto(),
        });
    }

    fn on_dup_ack(&mut self, _ecn_echo: bool, now: Time, out: &mut Vec<SendAction>) {
        if self.snd_nxt == self.snd_una {
            return; // nothing outstanding: stale duplicate
        }
        self.dup_acks += 1;
        let mss = self.cfg.mss as f64;
        if self.recover.is_some() {
            // Window inflation per additional duplicate.
            self.cwnd = (self.cwnd + mss).min(self.cfg.max_cwnd as f64 + 3.0 * mss);
            self.send_window(out);
        } else if self.dup_acks == self.dyn_dupthresh {
            // Fast retransmit.
            self.prior_cwnd = self.cwnd;
            self.prior_ssthresh = self.ssthresh;
            self.recovery_start = now;
            self.episode_retx = 1;
            self.ssthresh = (self.cwnd / 2.0).max(2.0 * mss);
            self.recover = Some(self.snd_nxt);
            let len = self.segment_len_at(self.snd_una);
            self.stats.retx_segments += 1;
            self.stats.fast_retx += 1;
            self.stats.segments_sent += 1;
            out.push(SendAction::Tx {
                seq: self.snd_una,
                len,
                retx: true,
            });
            self.cwnd = self.ssthresh + 3.0 * mss;
            out.push(SendAction::ArmRto {
                deadline: now + self.current_rto(),
            });
        } else if self.dup_acks > self.dyn_dupthresh {
            self.cwnd = (self.cwnd + mss).min(self.cfg.max_cwnd as f64 + 3.0 * mss);
            self.send_window(out);
        }
    }

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: Time, out: &mut Vec<SendAction>) {
        if self.finished {
            return;
        }
        debug_assert!(self.snd_nxt > self.snd_una, "RTO with nothing outstanding");
        self.stats.timeouts += 1;
        let mss = self.cfg.mss as f64;
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * mss);
        self.cwnd = mss;
        self.recover = None;
        self.dup_acks = 0;
        // Go-back-N: resume from the first unacknowledged byte. Segments
        // up to max_sent are retransmissions.
        self.snd_nxt = self.snd_una;
        self.win_acked = 0;
        self.win_marked = 0;
        self.win_end = self.snd_una + 1;
        self.backoff = (self.backoff + 1).min(10);
        if hermes_telemetry::enabled() {
            // Window collapsed to one MSS and the RTO backed off.
            self.trace_cwnd(now);
        }
        let len = self.segment_len_at(self.snd_una);
        if len > 0 {
            self.stats.retx_segments += 1;
            self.stats.segments_sent += 1;
            self.snd_nxt = self.snd_una + len as u64;
            out.push(SendAction::Tx {
                seq: self.snd_una,
                len,
                retx: true,
            });
        }
        out.push(SendAction::ArmRto {
            deadline: now + self.current_rto(),
        });
    }

    /// Effective RTO including backoff.
    fn current_rto(&self) -> Time {
        let base = self.rto.max(self.cfg.min_rto);
        let backed = base * (1u64 << self.backoff.min(10));
        backed.min(self.cfg.max_rto)
    }

    fn update_rtt(&mut self, sample: Time) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // Jacobson/Karels, RFC 6298 coefficients.
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = Time::from_ns((self.rttvar.as_ns() * 3 + err.as_ns()) / 4);
                self.srtt = Some(Time::from_ns((srtt.as_ns() * 7 + sample.as_ns()) / 8));
            }
        }
        let srtt = self.srtt.expect("both arms above set srtt");
        // RFC 6298 §2.3: RTO = SRTT + max(G, 4·RTTVAR). Perfectly stable
        // RTTs drive rttvar to zero; without the clock-granularity floor
        // the timer would collapse onto srtt itself and fire on the very
        // next on-time ACK.
        let var_term = (self.rttvar * 4).max(RTO_GRANULARITY);
        self.rto = (srtt + var_term).clamp(self.cfg.min_rto, self.cfg.max_rto);
    }

    /// Length of the segment starting at `seq` (full MSS, flow tail, or
    /// zero when `seq` is at/past the end — a spurious-RTO rewind racing
    /// a late cumulative ACK can ask about such a seq).
    fn segment_len_at(&self, seq: u64) -> u32 {
        (self.size.saturating_sub(seq).min(self.cfg.mss as u64)) as u32
    }

    /// Emit new segments while the window allows.
    fn send_window(&mut self, out: &mut Vec<SendAction>) {
        while self.snd_nxt < self.size {
            let inflight = self.snd_nxt - self.snd_una;
            if inflight >= self.cwnd as u64 {
                break;
            }
            let len = self.segment_len_at(self.snd_nxt);
            if len == 0 {
                break; // nothing left to cut a segment from
            }
            let retx = self.snd_nxt < self.max_sent;
            if retx {
                self.stats.retx_segments += 1;
            }
            self.stats.segments_sent += 1;
            out.push(SendAction::Tx {
                seq: self.snd_nxt,
                len,
                retx,
            });
            self.snd_nxt += len as u64;
            self.max_sent = self.max_sent.max(self.snd_nxt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1460;

    fn sender(size: u64) -> Sender {
        Sender::new(TransportCfg::dctcp(), size)
    }

    fn txs(actions: &[SendAction]) -> Vec<(u64, u32, bool)> {
        actions
            .iter()
            .filter_map(|a| match a {
                SendAction::Tx { seq, len, retx } => Some((*seq, *len, *retx)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_sends_initial_window() {
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let t = txs(&out);
        assert_eq!(t.len(), 10, "IW = 10 segments");
        for (i, (seq, len, retx)) in t.iter().enumerate() {
            assert_eq!(*seq, i as u64 * MSS);
            assert_eq!(*len as u64, MSS);
            assert!(!retx);
        }
        assert!(matches!(out.last(), Some(SendAction::ArmRto { .. })));
    }

    #[test]
    fn small_flow_sends_exact_tail() {
        let mut s = sender(2000);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let t = txs(&out);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (0, 1460, false));
        assert_eq!(t[1], (1460, 540, false));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender(10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let w0 = s.cwnd();
        // ACK the whole initial window, one ACK per segment.
        for i in 1..=10u64 {
            out.clear();
            s.on_ack(
                i * MSS,
                false,
                Some(Time::from_us(60)),
                Time::from_us(60),
                &mut out,
            );
        }
        assert_eq!(s.cwnd(), w0 * 2, "slow start doubles after one window");
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut s = sender(10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        // Force CA by setting ssthresh below cwnd via a fake loss episode.
        s.ssthresh = s.cwnd;
        let w0 = s.cwnd();
        for i in 1..=10u64 {
            out.clear();
            s.on_ack(i * MSS, false, None, Time::from_us(60), &mut out);
        }
        let grown = s.cwnd() - w0;
        // +≈MSS per window (a bit less, since the divisor grows as cwnd
        // grows ~10% over the window).
        assert!(
            (grown as i64 - MSS as i64).unsigned_abs() <= 100,
            "CA grew {grown} bytes in one window, expected ≈{MSS}"
        );
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        // Segment 0 lost; ACKs for later segments are duplicates of 0.
        s.on_ack(0, false, None, Time::from_us(100), &mut out);
        s.on_ack(0, false, None, Time::from_us(101), &mut out);
        assert!(txs(&out).is_empty(), "below threshold: no retransmit");
        s.on_ack(0, false, None, Time::from_us(102), &mut out);
        let t = txs(&out);
        assert_eq!(t, vec![(0, 1460, true)]);
        assert_eq!(s.stats.fast_retx, 1);
        // Recovery exit restores ssthresh.
        out.clear();
        s.on_ack(10 * MSS, false, None, Time::from_us(200), &mut out);
        assert!(s.recover.is_none());
    }

    #[test]
    fn partial_ack_repairs_next_hole() {
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        for _ in 0..3 {
            s.on_ack(0, false, None, Time::from_us(100), &mut out);
        }
        assert_eq!(txs(&out), vec![(0, 1460, true)]);
        out.clear();
        // Partial ACK up to 2*MSS (< recover point 10*MSS): hole at 2*MSS.
        s.on_ack(2 * MSS, false, None, Time::from_us(150), &mut out);
        let t = txs(&out);
        assert_eq!(t, vec![(2 * MSS, 1460, true)]);
        assert!(s.recover.is_some(), "still in recovery");
    }

    #[test]
    fn rto_backs_off_and_goes_back_n() {
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        s.on_rto(Time::from_ms(10), &mut out);
        assert_eq!(txs(&out), vec![(0, 1460, true)]);
        assert_eq!(s.cwnd(), MSS);
        assert_eq!(s.stats.timeouts, 1);
        let d1 = match out.last() {
            Some(SendAction::ArmRto { deadline }) => *deadline,
            _ => panic!("no rearm"),
        };
        // Second RTO doubles the deadline offset.
        out.clear();
        s.on_rto(d1, &mut out);
        let d2 = match out.last() {
            Some(SendAction::ArmRto { deadline }) => *deadline,
            _ => panic!("no rearm"),
        };
        assert_eq!(
            (d2 - d1).as_ns(),
            2 * (d1 - Time::from_ms(10)).as_ns(),
            "exponential backoff"
        );
        // ACK progress after RTO resends the rest as retransmissions.
        out.clear();
        s.on_ack(MSS, false, None, d2, &mut out);
        let t = txs(&out);
        assert!(!t.is_empty());
        assert!(t.iter().all(|(_, _, retx)| *retx), "go-back-N marks retx");
    }

    #[test]
    fn rto_backoff_saturates_at_max_rto() {
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        // Fire timeouts back to back and track the armed offsets: they
        // double up to max_rto and then stay pinned there — never
        // beyond, no overflow after many expirations.
        let max_rto = s.cfg.max_rto;
        let mut at = Time::from_ms(10);
        let mut offsets = Vec::new();
        for _ in 0..12 {
            out.clear();
            s.on_rto(at, &mut out);
            let Some(SendAction::ArmRto { deadline }) = out.last() else {
                panic!("RTO must rearm");
            };
            offsets.push(*deadline - at);
            at = *deadline;
        }
        for w in offsets.windows(2) {
            if w[0] < max_rto {
                assert!(
                    w[1] == max_rto.min(w[0] * 2),
                    "backoff must double toward the cap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        assert_eq!(*offsets.last().expect("nonempty"), max_rto);
        assert!(
            offsets.iter().filter(|&&o| o == max_rto).count() >= 2,
            "the cap must hold across repeated expirations: {offsets:?}"
        );
    }

    #[test]
    fn fast_retransmit_beats_the_rto_clock() {
        // The point of dup-ACK recovery: the hole is repaired well
        // before the armed RTO deadline, without any timeout firing or
        // backoff accruing.
        let mut s = sender(100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let Some(SendAction::ArmRto { deadline }) = out.last().copied() else {
            panic!("start must arm an RTO");
        };
        out.clear();
        // Three duplicate ACKs arrive a few µs in — far inside the
        // min-RTO window.
        let t_dup = Time::from_us(100);
        assert!(t_dup + Time::from_us(2) < deadline);
        for i in 0..3u64 {
            s.on_ack(0, false, None, t_dup + Time::from_us(i), &mut out);
        }
        assert_eq!(txs(&out), vec![(0, 1460, true)]);
        assert_eq!(s.stats.fast_retx, 1);
        assert_eq!(s.stats.timeouts, 0, "no RTO may fire");
        assert_eq!(s.backoff, 0, "dup-ACK recovery must not back off the RTO");
    }

    #[test]
    fn alpha_converges_to_the_marking_fraction() {
        // DCTCP's estimator: with a fixed fraction F of each window
        // marked, α converges geometrically to F (gain g = 1/16).
        // Mark every 4th ACK → F = 0.25 per rolled-over window.
        let mut s = sender(1_000_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        s.ssthresh = s.cwnd; // congestion avoidance
        let mut ack = 0u64;
        for i in 0..4_000u64 {
            ack += MSS;
            out.clear();
            s.on_ack(ack, i % 4 == 0, None, Time::from_us(60), &mut out);
        }
        let f = 0.25;
        assert!(
            (s.alpha() - f).abs() < 0.1,
            "alpha {} must converge near the marking fraction {f}",
            s.alpha()
        );
        // And the same estimator driven at F = 1/2 lands higher.
        let mut s2 = sender(1_000_000 * MSS);
        out.clear();
        s2.start(Time::ZERO, &mut out);
        s2.ssthresh = s2.cwnd;
        let mut ack2 = 0u64;
        for i in 0..4_000u64 {
            ack2 += MSS;
            out.clear();
            s2.on_ack(ack2, i % 2 == 0, None, Time::from_us(60), &mut out);
        }
        assert!(
            s2.alpha() > s.alpha() + 0.1,
            "estimator must order marking fractions: {} vs {}",
            s2.alpha(),
            s.alpha()
        );
    }

    #[test]
    fn dctcp_reduces_under_persistent_marking() {
        let mut s = sender(100_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        s.ssthresh = s.cwnd; // start in CA
        let w0 = s.cwnd();
        // Every ACK marked: F = 1 every window, so α → 1 and the
        // per-window halving dominates the +MSS/window CA growth.
        let mut ack = 0u64;
        for _ in 0..300 {
            ack += MSS;
            out.clear();
            s.on_ack(ack, true, None, Time::from_us(60), &mut out);
        }
        assert!(
            s.alpha() > 0.5,
            "alpha {} must converge toward 1",
            s.alpha()
        );
        assert!(
            s.cwnd() < w0 / 2,
            "persistently marked flow must shrink: {} vs {w0}",
            s.cwnd()
        );
        assert!(s.cwnd() >= MSS);
    }

    #[test]
    fn dctcp_alpha_tracks_single_marked_window() {
        let mut s = sender(10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        // First ACK marked: the first (degenerate) window rolls over with
        // F = 1, so α = g·1 = 1/16 exactly.
        out.clear();
        s.on_ack(MSS, true, None, Time::from_us(60), &mut out);
        assert!((s.alpha() - 1.0 / 16.0).abs() < 1e-9, "alpha {}", s.alpha());
    }

    #[test]
    fn telemetry_snapshots_window_rollover_and_rto() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::Record;
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        let mut s = sender(10_000 * MSS);
        s.set_label(42);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        // Marked first ACK rolls the degenerate first window: α = 1/16.
        s.on_ack(MSS, true, None, Time::from_us(60), &mut out);
        let evs: Vec<_> = hermes_telemetry::drain();
        let cw: Vec<_> = evs
            .iter()
            .filter_map(|e| match e.record {
                Record::CwndUpdate {
                    flow, alpha, cwnd, ..
                } => Some((flow, alpha, cwnd)),
                _ => None,
            })
            .collect();
        assert_eq!(cw.len(), 1, "one snapshot per window rollover: {evs:?}");
        assert_eq!(cw[0].0, 42, "labelled with the flow id");
        assert!((cw[0].1 - 1.0 / 16.0).abs() < 1e-9);
        // RTO: window collapses to one MSS, snapshot carries backoff.
        s.on_rto(Time::from_ms(10), &mut out);
        let rto_snap: Vec<_> = hermes_telemetry::drain()
            .into_iter()
            .filter_map(|e| match e.record {
                Record::CwndUpdate { flow, cwnd, .. } => Some((flow, cwnd)),
                _ => None,
            })
            .collect();
        assert_eq!(rto_snap, vec![(42, MSS as f64)]);
        hermes_telemetry::uninstall();
    }

    #[test]
    fn alpha_decays_when_unmarked() {
        let mut s = sender(10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        s.alpha = 0.5;
        for i in 1..=10u64 {
            out.clear();
            s.on_ack(i * MSS, false, None, Time::from_us(60), &mut out);
        }
        assert!(s.alpha() < 0.5, "alpha must decay toward 0 without marks");
    }

    #[test]
    fn plain_tcp_ignores_ecn_echo() {
        let mut s = Sender::new(TransportCfg::tcp(), 10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        s.ssthresh = s.cwnd;
        let w0 = s.cwnd();
        for i in 1..=10u64 {
            out.clear();
            s.on_ack(i * MSS, true, None, Time::from_us(60), &mut out);
        }
        assert!(s.cwnd() >= w0, "NewReno must not shrink on ECN echo");
    }

    #[test]
    fn finishes_and_disarms() {
        let mut s = sender(3000);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        s.on_ack(
            3000,
            false,
            Some(Time::from_us(50)),
            Time::from_us(50),
            &mut out,
        );
        assert!(s.finished());
        assert!(out.contains(&SendAction::DisarmRto));
        assert!(out.contains(&SendAction::FullyAcked));
        // Further inputs are ignored.
        out.clear();
        s.on_ack(3000, false, None, Time::from_us(60), &mut out);
        s.on_rto(Time::from_ms(20), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rtt_estimator_converges_and_bounds_rto() {
        let mut s = sender(10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        for i in 1..=100u64 {
            out.clear();
            s.on_ack(
                i * MSS,
                false,
                Some(Time::from_us(100)),
                Time::from_us(100),
                &mut out,
            );
        }
        let srtt = s.srtt().unwrap();
        assert!((srtt.as_us() as i64 - 100).abs() <= 2, "srtt {srtt}");
        // RTO floors at min_rto even for tiny RTTs.
        assert!(s.current_rto() >= TransportCfg::dctcp().min_rto);
    }

    #[test]
    fn window_never_exceeds_cap_or_drops_below_mss() {
        let mut cfg = TransportCfg::dctcp();
        cfg.max_cwnd = 20 * 1460;
        let mut s = Sender::new(cfg, 10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        for i in 1..=200u64 {
            out.clear();
            s.on_ack(i * MSS, false, None, Time::from_us(60), &mut out);
            assert!(s.cwnd() <= cfg.max_cwnd);
        }
        out.clear();
        s.on_rto(Time::from_ms(50), &mut out);
        assert!(s.cwnd() >= MSS);
    }

    #[test]
    fn dupacks_with_nothing_outstanding_are_ignored() {
        let mut s = sender(1460);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        s.on_ack(1460, false, None, Time::from_us(60), &mut out);
        assert!(s.finished());
    }

    #[test]
    fn segment_len_clamps_at_and_past_flow_end() {
        // Regression: `size - seq` underflowed (debug panic / wrap in
        // release) when asked about a seq at or beyond the flow end.
        let s = sender(10 * MSS);
        assert_eq!(s.segment_len_at(0) as u64, MSS);
        assert_eq!(s.segment_len_at(10 * MSS - 100), 100);
        assert_eq!(s.segment_len_at(10 * MSS), 0, "at end: zero, not underflow");
        assert_eq!(s.segment_len_at(10 * MSS + 3 * MSS), 0, "past end: zero");
    }

    #[test]
    fn stable_rtt_never_collapses_rto_onto_srtt() {
        // RFC 6298 §2.3: a long run of identical RTT samples decays
        // rttvar to zero; the granularity floor G must keep the timer
        // strictly above srtt or every on-time ACK races the RTO.
        // min_rto = 0 exposes the raw estimator (the default 10ms floor
        // would mask the collapse).
        let mut cfg = TransportCfg::dctcp();
        cfg.min_rto = Time::ZERO;
        let mut s = Sender::new(cfg, 10_000 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let rtt = Time::from_us(100);
        for i in 1..=1_000u64 {
            out.clear();
            s.on_ack(i * MSS, false, Some(rtt), Time::from_us(100) * i, &mut out);
            let srtt = s.srtt().expect("sample fed");
            assert!(s.rto > srtt, "rto {} collapsed onto srtt {srtt}", s.rto);
        }
        // rttvar is fully decayed by now: only the granularity floor
        // separates the timer from the estimate.
        let srtt = s.srtt().expect("sample fed");
        assert_eq!(srtt, rtt);
        assert_eq!(s.rttvar, Time::ZERO, "truncation decays rttvar to zero");
        assert!(s.rto >= srtt + Time::from_ns(1));
    }

    #[test]
    fn high_dupack_threshold_masks_reordering() {
        let mut cfg = TransportCfg::dctcp();
        cfg.dupack_thresh = 500; // the paper's §2.2.2 setting
        let mut s = Sender::new(cfg, 100 * MSS);
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        for _ in 0..50 {
            s.on_ack(0, false, None, Time::from_us(100), &mut out);
        }
        assert!(
            txs(&out).iter().all(|(seq, _, _)| *seq != 0),
            "no spurious fast retransmit below threshold"
        );
        assert_eq!(s.stats.fast_retx, 0);
    }
}
