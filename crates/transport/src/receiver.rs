//! The receiver: cumulative acknowledgment, out-of-order reassembly,
//! and an optional reordering buffer in the style of JUGGLER [15],
//! used by Presto* to mask spray-induced reordering (§5.1).
//!
//! Like the sender, the receiver is a pure state machine emitting
//! [`RecvAction`]s.

use std::collections::BTreeMap;

use hermes_net::PathId;
use hermes_sim::Time;

/// An instruction from the receiver to the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvAction {
    /// Send a (possibly duplicate) cumulative ACK. The `echo_*` fields
    /// reflect the data packet that triggered the ACK and must be copied
    /// into the ACK packet for sender-side RTT/path attribution.
    SendAck {
        ack: u64,
        ecn_echo: bool,
        echo_ts: Time,
        echo_path: PathId,
        echo_retx: bool,
    },
    /// (Re)arm the reorder-buffer flush timer.
    ArmHold { deadline: Time },
    /// Cancel the flush timer.
    DisarmHold,
    /// Every payload byte has arrived — the flow-completion instant.
    Complete,
}

/// A data segment as the receiver sees it, with the per-packet wire
/// metadata ([`Receiver::on_data`] echoes it back through ACKs).
#[derive(Clone, Copy, Debug)]
pub struct SegmentIn {
    /// First payload byte of the segment.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Whether the packet arrived CE-marked.
    pub ecn: bool,
    /// Departure time stamped by the sending host.
    pub sent_at: Time,
    /// Path the segment travelled.
    pub path: PathId,
    /// Whether the segment is a retransmission.
    pub retx: bool,
}

/// One flow's receiver.
pub struct Receiver {
    size: u64,
    rcv_nxt: u64,
    /// Out-of-order ranges `start → end` (non-overlapping, non-adjacent).
    ooo: BTreeMap<u64, u64>,
    /// `Some(hold)`: buffer out-of-order arrivals for `hold` before
    /// signalling loss (Presto*'s reordering mask). `None`: emit
    /// duplicate ACKs immediately (standard TCP).
    reorder_hold: Option<Time>,
    hold_armed: bool,
    /// How many duplicate ACKs a flush emits (the sender's dupack
    /// threshold, so one flush triggers exactly one fast retransmit).
    flush_dupacks: u32,
    completed: bool,
    /// Data packets that arrived out of order (reordering metric).
    stat_ooo: u64,
}

impl Receiver {
    pub fn new(size: u64, reorder_hold: Option<Time>, flush_dupacks: u32) -> Receiver {
        assert!(size > 0);
        Receiver {
            size,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            reorder_hold,
            hold_armed: false,
            flush_dupacks,
            completed: false,
            stat_ooo: 0,
        }
    }

    /// Number of data packets that arrived out of order.
    pub fn ooo_packets(&self) -> u64 {
        self.stat_ooo
    }

    /// Next expected byte.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Whether every byte has arrived.
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Bytes currently buffered out of order.
    pub fn buffered_bytes(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }

    /// A data segment arrived.
    pub fn on_data(&mut self, seg: SegmentIn, now: Time, out: &mut Vec<RecvAction>) {
        let SegmentIn {
            seq,
            len,
            ecn,
            sent_at,
            path,
            retx,
        } = seg;
        let end = seq + u64::from(len);
        let advanced;
        if seq <= self.rcv_nxt {
            // In-order (or overlapping duplicate): advance and drain any
            // newly contiguous buffered ranges.
            self.rcv_nxt = self.rcv_nxt.max(end);
            self.drain_contiguous();
            advanced = true;
        } else {
            self.insert_ooo(seq, end);
            self.stat_ooo += 1;
            advanced = false;
        }

        let became_complete = !self.completed && self.rcv_nxt >= self.size;
        if became_complete {
            self.completed = true;
        }

        if advanced {
            out.push(RecvAction::SendAck {
                ack: self.rcv_nxt,
                ecn_echo: ecn,
                echo_ts: sent_at,
                echo_path: path,
                echo_retx: retx,
            });
            if self.ooo.is_empty() && self.hold_armed {
                self.hold_armed = false;
                out.push(RecvAction::DisarmHold);
            }
            if became_complete {
                out.push(RecvAction::Complete);
            }
            return;
        }

        // Out-of-order arrival.
        match self.reorder_hold {
            None => {
                // Standard TCP: immediate duplicate ACK.
                out.push(RecvAction::SendAck {
                    ack: self.rcv_nxt,
                    ecn_echo: ecn,
                    echo_ts: sent_at,
                    echo_path: path,
                    echo_retx: retx,
                });
            }
            Some(hold) => {
                // Reordering mask: stay silent, give the gap time to fill.
                if !self.hold_armed {
                    self.hold_armed = true;
                    out.push(RecvAction::ArmHold {
                        deadline: now + hold,
                    });
                }
            }
        }
    }

    /// The reorder-buffer flush timer fired: the gap did not fill in
    /// time, treat it as loss by emitting enough duplicate ACKs to
    /// trigger one fast retransmit, then keep holding for the repair.
    pub fn on_hold_timer(&mut self, now: Time, out: &mut Vec<RecvAction>) {
        if !self.hold_armed {
            return; // stale timer
        }
        if self.ooo.is_empty() {
            self.hold_armed = false;
            return;
        }
        for _ in 0..self.flush_dupacks {
            out.push(RecvAction::SendAck {
                ack: self.rcv_nxt,
                ecn_echo: false,
                echo_ts: Time::MAX,
                echo_path: PathId::UNSET,
                echo_retx: true, // no RTT sample from synthetic dupacks
            });
        }
        let hold = self
            .reorder_hold
            .expect("hold timer without reorder buffer");
        out.push(RecvAction::ArmHold {
            deadline: now + hold,
        });
    }

    fn drain_contiguous(&mut self) {
        while let Some((&s, &e)) = self.ooo.iter().next() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
    }

    fn insert_ooo(&mut self, mut start: u64, mut end: u64) {
        // Merge with any overlapping or adjacent ranges.
        // Candidates: the predecessor range and successors starting
        // before `end`.
        if let Some((&s, &e)) = self.ooo.range(..=start).next_back() {
            if e >= start {
                start = s;
                end = end.max(e);
                self.ooo.remove(&s);
            }
        }
        let succs: Vec<u64> = self.ooo.range(start..=end).map(|(&s, _)| s).collect();
        for s in succs {
            let e = self
                .ooo
                .remove(&s)
                .expect("key collected from this map just above");
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1460;

    fn recv(size: u64) -> Receiver {
        Receiver::new(size, None, 3)
    }

    fn on_pkt(r: &mut Receiver, seq: u64, len: u64, out: &mut Vec<RecvAction>) {
        r.on_data(
            SegmentIn {
                seq,
                len: len as u32,
                ecn: false,
                sent_at: Time::from_us(1),
                path: PathId(0),
                retx: false,
            },
            Time::from_us(10),
            out,
        );
    }

    fn acks(out: &[RecvAction]) -> Vec<u64> {
        out.iter()
            .filter_map(|a| match a {
                RecvAction::SendAck { ack, .. } => Some(*ack),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_arrival_acks_cumulatively() {
        let mut r = recv(3 * MSS);
        let mut out = Vec::new();
        for i in 0..3 {
            on_pkt(&mut r, i * MSS, MSS, &mut out);
        }
        assert_eq!(acks(&out), vec![MSS, 2 * MSS, 3 * MSS]);
        assert!(out.contains(&RecvAction::Complete));
        assert!(r.completed());
    }

    #[test]
    fn out_of_order_emits_dupacks_then_jumps() {
        let mut r = recv(3 * MSS);
        let mut out = Vec::new();
        on_pkt(&mut r, 0, MSS, &mut out); // ack MSS
        on_pkt(&mut r, 2 * MSS, MSS, &mut out); // dup ack MSS
        assert_eq!(acks(&out), vec![MSS, MSS]);
        on_pkt(&mut r, MSS, MSS, &mut out); // fills gap: ack jumps to 3*MSS
        assert_eq!(acks(&out), vec![MSS, MSS, 3 * MSS]);
        assert!(r.completed());
    }

    #[test]
    fn duplicate_data_is_idempotent() {
        let mut r = recv(2 * MSS);
        let mut out = Vec::new();
        on_pkt(&mut r, 0, MSS, &mut out);
        on_pkt(&mut r, 0, MSS, &mut out); // exact duplicate
        assert_eq!(acks(&out), vec![MSS, MSS]);
        assert_eq!(r.rcv_nxt(), MSS);
        on_pkt(&mut r, MSS, MSS, &mut out);
        assert!(r.completed());
        // Complete fires exactly once.
        let completes = out
            .iter()
            .filter(|a| matches!(a, RecvAction::Complete))
            .count();
        assert_eq!(completes, 1);
    }

    #[test]
    fn ooo_ranges_merge() {
        let mut r = recv(10 * MSS);
        let mut out = Vec::new();
        // Holes everywhere: 3 disjoint ranges that later merge.
        on_pkt(&mut r, 4 * MSS, MSS, &mut out);
        on_pkt(&mut r, 2 * MSS, MSS, &mut out);
        on_pkt(&mut r, 3 * MSS, MSS, &mut out); // bridges 2..5
        assert_eq!(r.buffered_bytes(), 3 * MSS);
        on_pkt(&mut r, 0, 2 * MSS, &mut out); // fills head: drains to 5*MSS
        assert_eq!(r.rcv_nxt(), 5 * MSS);
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn reorder_buffer_suppresses_dupacks_until_flush() {
        let mut r = Receiver::new(5 * MSS, Some(Time::from_us(200)), 3);
        let mut out = Vec::new();
        on_pkt(&mut r, 0, MSS, &mut out);
        out.clear();
        on_pkt(&mut r, 2 * MSS, MSS, &mut out);
        on_pkt(&mut r, 3 * MSS, MSS, &mut out);
        // No dupacks; one hold arm.
        assert!(acks(&out).is_empty());
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, RecvAction::ArmHold { .. }))
                .count(),
            1
        );
        // Gap fills in time: cumulative jump, hold disarmed.
        out.clear();
        on_pkt(&mut r, MSS, MSS, &mut out);
        assert_eq!(acks(&out), vec![4 * MSS]);
        assert!(out.contains(&RecvAction::DisarmHold));
    }

    #[test]
    fn reorder_buffer_flush_emits_threshold_dupacks() {
        let mut r = Receiver::new(5 * MSS, Some(Time::from_us(200)), 3);
        let mut out = Vec::new();
        on_pkt(&mut r, 0, MSS, &mut out);
        on_pkt(&mut r, 2 * MSS, MSS, &mut out);
        out.clear();
        r.on_hold_timer(Time::from_us(300), &mut out);
        let a = acks(&out);
        assert_eq!(a, vec![MSS, MSS, MSS], "exactly dupack_thresh duplicates");
        // Synthetic dupacks carry no RTT sample.
        for act in &out {
            if let RecvAction::SendAck { echo_retx, .. } = act {
                assert!(*echo_retx);
            }
        }
        // Re-armed for the repair.
        assert!(out.iter().any(|a| matches!(a, RecvAction::ArmHold { .. })));
    }

    #[test]
    fn stale_hold_timer_is_ignored() {
        let mut r = Receiver::new(5 * MSS, Some(Time::from_us(200)), 3);
        let mut out = Vec::new();
        r.on_hold_timer(Time::from_us(300), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tail_segment_completes_flow() {
        let mut r = recv(MSS + 100);
        let mut out = Vec::new();
        on_pkt(&mut r, 0, MSS, &mut out);
        assert!(!r.completed());
        on_pkt(&mut r, MSS, 100, &mut out);
        assert!(r.completed());
        assert_eq!(acks(&out), vec![MSS, MSS + 100]);
    }

    #[test]
    fn echo_fields_propagate() {
        let mut r = recv(2 * MSS);
        let mut out = Vec::new();
        r.on_data(
            SegmentIn {
                seq: 0,
                len: MSS as u32,
                ecn: true,
                sent_at: Time::from_us(42),
                path: PathId(3),
                retx: true,
            },
            Time::from_us(99),
            &mut out,
        );
        match out[0] {
            RecvAction::SendAck {
                ack,
                ecn_echo,
                echo_ts,
                echo_path,
                echo_retx,
            } => {
                assert_eq!(ack, MSS);
                assert!(ecn_echo);
                assert_eq!(echo_ts, Time::from_us(42));
                assert_eq!(echo_path, PathId(3));
                assert!(echo_retx);
            }
            _ => panic!("expected ack"),
        }
    }
}
