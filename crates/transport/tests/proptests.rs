//! Property-based tests of the transport state machines: sequence-space
//! invariants under arbitrary ACK/loss interleavings, and sender ↔
//! receiver convergence over a lossy in-order channel.

use hermes_net::PathId;
use hermes_sim::Time;
use hermes_transport::{Receiver, RecvAction, SegmentIn, SendAction, Sender, TransportCfg};
use proptest::prelude::*;

/// Drive a sender and receiver over a channel that drops data segments
/// per `drop_bits` and delivers everything else in order, with RTOs
/// fired whenever the channel goes idle. Returns (delivered, acked).
fn converge(size: u64, drop_bits: u64) -> (bool, bool) {
    let cfg = TransportCfg::dctcp();
    let mut snd = Sender::new(cfg, size);
    let mut rcv = Receiver::new(size, None, cfg.dupack_thresh);
    let mut now = Time::ZERO;
    let mut actions = Vec::new();
    snd.start(now, &mut actions);
    let mut drop_i = 0u32;
    let mut rto_deadline: Option<Time> = None;
    // Process rounds until both sides are done or we give up.
    for _round in 0..10_000 {
        if snd.finished() && rcv.completed() {
            break;
        }
        let mut tx: Vec<(u64, u32, bool)> = Vec::new();
        for a in actions.drain(..) {
            match a {
                SendAction::Tx { seq, len, retx } => tx.push((seq, len, retx)),
                SendAction::ArmRto { deadline } => rto_deadline = Some(deadline),
                SendAction::DisarmRto => rto_deadline = None,
                SendAction::FullyAcked => {}
            }
        }
        let mut recv_actions = Vec::new();
        let mut progressed = false;
        for (seq, len, retx) in tx {
            now += Time::from_us(10);
            let dropped = (drop_bits >> (drop_i % 64)) & 1 == 1 && !retx;
            drop_i += 1;
            if dropped {
                continue;
            }
            progressed = true;
            rcv.on_data(
                SegmentIn {
                    seq,
                    len,
                    ecn: false,
                    sent_at: now,
                    path: PathId(0),
                    retx,
                },
                now,
                &mut recv_actions,
            );
        }
        for ra in recv_actions.drain(..) {
            if let RecvAction::SendAck { ack, ecn_echo, .. } = ra {
                now += Time::from_us(5);
                snd.on_ack(ack, ecn_echo, Some(Time::from_us(50)), now, &mut actions);
            }
        }
        if !progressed && actions.is_empty() && !snd.finished() {
            // Idle: fire the RTO.
            let Some(dl) = rto_deadline.take() else {
                break; // nothing armed and nothing to do: wedged
            };
            now = now.max(dl);
            snd.on_rto(now, &mut actions);
        }
    }
    (rcv.completed(), snd.finished())
}

proptest! {
    /// Whatever data packets drop, sender and receiver converge: all
    /// bytes delivered, all bytes acknowledged.
    #[test]
    fn lossy_channel_converges(
        size in 1u64..200_000,
        drop_bits in any::<u64>(),
    ) {
        let (delivered, acked) = converge(size, drop_bits);
        prop_assert!(delivered, "receiver incomplete (size {size}, drops {drop_bits:b})");
        prop_assert!(acked, "sender unacked (size {size}, drops {drop_bits:b})");
    }

    /// The sender never emits a segment beyond the flow size and never
    /// lets in-flight bytes go negative or beyond the window+1 MSS.
    #[test]
    fn sender_respects_bounds(
        size in 1u64..5_000_000,
        acks in proptest::collection::vec(0u64..5_000_000, 0..60),
    ) {
        let cfg = TransportCfg::dctcp();
        let mut s = Sender::new(cfg, size);
        let mut out = Vec::new();
        let mut now = Time::ZERO;
        s.start(now, &mut out);
        let check = |s: &Sender, out: &[SendAction], size: u64| {
            for a in out {
                if let SendAction::Tx { seq, len, .. } = a {
                    assert!(seq + *len as u64 <= size, "segment beyond flow end");
                    assert!(*len > 0);
                }
            }
            // cwnd may shrink below in-flight after a reduction; the
            // hard bounds are the flow size and a positive window.
            assert!(s.in_flight() <= size);
            assert!(s.cwnd() >= 1460);
        };
        check(&s, &out, size);
        for a in acks {
            now += Time::from_us(20);
            out.clear();
            // Clamp the fuzzed ack into the valid cumulative range.
            let ack = a.min(size);
            s.on_ack(ack, a % 3 == 0, None, now, &mut out);
            check(&s, &out, size);
        }
        // A final RTO must never panic even after arbitrary ACKs.
        out.clear();
        if !s.finished() && s.in_flight() > 0 {
            s.on_rto(now + Time::from_ms(10), &mut out);
            check(&s, &out, size);
        }
    }

    /// The receiver's cumulative ACK is monotone and never exceeds the
    /// highest byte received, for arbitrary segment arrival orders.
    #[test]
    fn receiver_ack_monotone(
        size in 1460u64..300_000,
        order in proptest::collection::vec(0usize..200, 1..200),
    ) {
        let mut r = Receiver::new(size, None, 3);
        let n_segs = size.div_ceil(1460);
        let mut out = Vec::new();
        let mut last_ack = 0u64;
        let mut highest_end = 0u64;
        for idx in order {
            let seg = (idx as u64) % n_segs;
            let seq = seg * 1460;
            let len = (size - seq).min(1460) as u32;
            out.clear();
            r.on_data(
                SegmentIn {
                    seq,
                    len,
                    ecn: false,
                    sent_at: Time::ZERO,
                    path: PathId(0),
                    retx: false,
                },
                Time::from_us(1),
                &mut out,
            );
            highest_end = highest_end.max(seq + len as u64);
            for a in &out {
                if let RecvAction::SendAck { ack, .. } = a {
                    prop_assert!(*ack >= last_ack, "ack regression");
                    prop_assert!(*ack <= highest_end, "ack beyond received data");
                    last_ack = *ack;
                }
            }
        }
    }
}
