//! Property tests for the flow-size distributions and the Poisson
//! generator: every sampled size must stay inside the CDF's support for
//! *any* seed and any well-formed set of control points, and the
//! empirical mean must converge to the analytic `mean_bytes()` with a
//! CLT-sized tolerance.

use hermes_net::Topology;
use hermes_sim::{SimRng, Time};
use hermes_workload::{FlowGen, FlowSizeDist};
use proptest::prelude::*;

/// Turn raw `(size_step, prob_weight)` pairs into well-formed CDF
/// control points: strictly increasing sizes, strictly increasing
/// probabilities, first probability 0, last exactly 1.
fn cdf_points(steps: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let total: f64 = steps.iter().map(|s| s.1).sum();
    let mut pts = vec![(1.0, 0.0)];
    let (mut size, mut cum) = (1.0, 0.0);
    for (i, (dx, w)) in steps.iter().enumerate() {
        size += dx;
        cum += w;
        let p = if i == steps.len() - 1 {
            1.0
        } else {
            cum / total
        };
        pts.push((size, p));
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any well-formed CDF, any seed: samples never leave the support,
    /// the inverse CDF is monotone, and `cdf ∘ quantile` is the
    /// identity on probabilities (the strategy has no flat segments).
    #[test]
    fn random_cdfs_sample_within_support(
        steps in proptest::collection::vec((1.0f64..1e6, 0.01f64..1.0), 2..8),
        seed in any::<u64>(),
    ) {
        let pts = cdf_points(&steps);
        let dist = FlowSizeDist::from_points("prop", &pts);
        let (lo, hi) = dist.support();
        prop_assert!(lo >= 1 && lo < hi);

        let mut rng = SimRng::new(seed);
        for _ in 0..512 {
            let s = dist.sample(&mut rng);
            prop_assert!(s >= lo && s <= hi, "sample {s} outside [{lo}, {hi}]");
        }

        let mut last = f64::NEG_INFINITY;
        for i in 0..=64 {
            let p = i as f64 / 64.0;
            let x = dist.quantile(p);
            prop_assert!(x >= last, "quantile not monotone at p={p}");
            last = x;
            let back = dist.cdf(x);
            prop_assert!((back - p).abs() < 1e-6, "cdf(quantile({p})) = {back}");
        }

        // The analytic mean must sit strictly inside the support — it
        // is an average of segment midpoints.
        let mean = dist.mean_bytes();
        prop_assert!(mean > lo as f64 && mean < hi as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any fixed seed, the empirical mean of the canonical
    /// workloads converges to the analytic mean. Tolerances are sized
    /// from the CLT: at n = 50 000 the web-search sample mean has a
    /// relative σ ≈ 1.1% (tolerance is ≈9σ) and the far heavier
    /// data-mining tail has σ ≈ 2.8% (tolerance ≈7σ), so a trip means
    /// a sampling bug, not bad luck.
    #[test]
    fn empirical_mean_converges_for_any_seed(
        seed in any::<u64>(),
        heavy in any::<bool>(),
    ) {
        let (dist, tol) = if heavy {
            (FlowSizeDist::data_mining(), 0.20)
        } else {
            (FlowSizeDist::web_search(), 0.10)
        };
        let mut rng = SimRng::new(seed);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng) as f64).sum();
        let got = sum / n as f64;
        let want = dist.mean_bytes();
        prop_assert!(
            (got - want).abs() / want < tol,
            "{}: empirical mean {got:.3e} vs analytic {want:.3e}",
            dist.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The open-loop generator inherits the distribution's support and
    /// the topology's structure for any load and seed: sizes in
    /// support, flows strictly inter-rack, arrivals nondecreasing,
    /// ids dense.
    #[test]
    fn flowgen_respects_support_and_topology(
        load in 0.1f64..1.0,
        seed in any::<u64>(),
        heavy in any::<bool>(),
    ) {
        let topo = Topology::sim_baseline();
        let dist = if heavy {
            FlowSizeDist::data_mining()
        } else {
            FlowSizeDist::web_search()
        };
        let (lo, hi) = dist.support();
        let mut g = FlowGen::new(&topo, dist, load, None, SimRng::new(seed));
        let flows = g.schedule(256);
        let mut last = Time::ZERO;
        for (i, f) in flows.iter().enumerate() {
            prop_assert_eq!(f.id.0, i as u64);
            prop_assert!(f.size >= lo && f.size <= hi);
            let (src_leaf, dst_leaf) = (
                f.src.0 as usize / topo.hosts_per_leaf,
                f.dst.0 as usize / topo.hosts_per_leaf,
            );
            prop_assert_ne!(src_leaf, dst_leaf, "flow {i} stayed intra-rack");
            prop_assert!(f.start >= last);
            last = f.start;
        }
    }
}
