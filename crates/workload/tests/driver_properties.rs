//! Property tests for the staged-dependency flow drivers: for *any*
//! well-formed ring/incast geometry and any completion order, the
//! ring-allreduce driver must release every rank exactly once per step
//! and conserve bytes, and the incast driver must release exactly
//! `fanout` synchronized replies per burst — with the barrier holding
//! until the straggler finishes in both cases.

use hermes_net::Topology;
use hermes_sim::{SimRng, Time};
use hermes_workload::{FlowDriver, FlowSpec, IncastCfg, IncastDriver, RingAllreduce, RingCfg};
use proptest::prelude::*;

/// Complete `flows` against `driver` in a seed-chosen random order,
/// advancing a fake clock one microsecond per completion; returns the
/// flows released by the straggler (empty for the last stage).
fn complete_in_random_order(
    driver: &mut dyn FlowDriver,
    flows: &[FlowSpec],
    rng: &mut SimRng,
    clock: &mut Time,
) -> Vec<FlowSpec> {
    let mut order: Vec<&FlowSpec> = flows.iter().collect();
    let mut released = Vec::new();
    while !order.is_empty() {
        let pick = rng.below(order.len());
        let f = order.swap_remove(pick);
        *clock += Time::from_us(1);
        let mut out = Vec::new();
        driver.on_flow_completed(f.id, *clock, &mut out);
        if !order.is_empty() {
            // The barrier: nothing may be released before the straggler.
            assert!(
                out.is_empty(),
                "driver released {} flow(s) before the stage drained",
                out.len()
            );
        }
        released.extend(out);
    }
    released
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any ring geometry, any completion order: each step releases
    /// every rank exactly once, later steps wait for the barrier, and
    /// total released bytes equal `ranks × steps × chunk`.
    #[test]
    fn ring_releases_every_rank_exactly_once_per_step(
        ranks in 2usize..13,
        steps in 1usize..5,
        chunk_kb in 1u64..257,
        seed in any::<u64>(),
    ) {
        let topo = Topology::testbed();
        let cfg = RingCfg { ranks, steps, chunk_bytes: chunk_kb * 1000 };
        let mut driver = RingAllreduce::new(&topo, cfg);
        let mut rng = SimRng::new(seed);
        let mut clock = Time::ZERO;
        let mut total_bytes = 0u64;

        let mut current = driver.initial(clock);
        for step in 0..steps {
            prop_assert_eq!(current.len(), ranks, "step {} release width", step);
            let mut seen = vec![false; ranks];
            for f in &current {
                let (s, rank) = cfg.decode(f.id);
                prop_assert_eq!(s, step, "flow {:?} belongs to step {}", f.id, s);
                prop_assert!(!seen[rank], "rank {} released twice in step {}", rank, step);
                seen[rank] = true;
                prop_assert_eq!(f.size, cfg.chunk_bytes);
                total_bytes += f.size;
                // Ring edge: the destination is the successor's host.
                let n = topo.n_hosts() as u64;
                prop_assert!(u64::from(f.src.0) < n && u64::from(f.dst.0) < n);
                prop_assert!(f.src != f.dst, "rank {} sends to itself", rank);
            }
            prop_assert!(seen.iter().all(|&s| s), "step {} missing a rank", step);
            current = complete_in_random_order(&mut driver, &current, &mut rng, &mut clock);
        }
        prop_assert!(current.is_empty(), "driver released past the last step");
        prop_assert_eq!(total_bytes, cfg.total_bytes(), "byte conservation");
    }

    /// Any incast geometry, any completion order: each burst releases
    /// exactly `fanout` same-instant replies aimed at one aggregator
    /// from other racks, and burst `b+1` waits for burst `b`'s
    /// straggler.
    #[test]
    fn incast_bursts_are_synchronized_and_fan_in(
        fanout in 1usize..7,
        reply_kb in 1u64..129,
        bursts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let topo = Topology::testbed();
        let cfg = IncastCfg { fanout, reply_bytes: reply_kb * 1000, bursts };
        let mut driver = IncastDriver::new(&topo, cfg, SimRng::new(seed).split(1));
        let mut rng = SimRng::new(seed).split(2);
        let mut clock = Time::ZERO;
        let hosts_per_leaf = topo.hosts_per_leaf as u32;

        let mut current = driver.initial(clock);
        let mut prev_straggler = Time::ZERO;
        for burst in 0..bursts {
            prop_assert_eq!(current.len(), fanout, "burst {} fan-in", burst);
            let release = current[0].start;
            prop_assert!(
                release >= prev_straggler,
                "burst {} released before burst {} drained",
                burst,
                burst.wrapping_sub(1)
            );
            let aggregator = current[0].dst;
            for (i, f) in current.iter().enumerate() {
                let (b, slot) = cfg.decode(f.id);
                prop_assert_eq!(b, burst);
                prop_assert_eq!(slot, i, "dense reply ids within the burst");
                prop_assert_eq!(f.start, release, "replies released synchronously");
                prop_assert_eq!(f.dst, aggregator, "all replies converge on one host");
                prop_assert_eq!(f.size, cfg.reply_bytes);
                prop_assert!(
                    f.src.0 / hosts_per_leaf != aggregator.0 / hosts_per_leaf,
                    "worker {:?} shares the aggregator's rack",
                    f.src
                );
            }
            current = complete_in_random_order(&mut driver, &current, &mut rng, &mut clock);
            prev_straggler = clock;
        }
        prop_assert!(current.is_empty(), "driver released past the last burst");
    }
}
