//! Staged-dependency workloads: flows released by *completion*, not by
//! a precomputed clock.
//!
//! The paper evaluates Hermes under open-loop Poisson traffic only, but
//! its cautious-rerouting story matters most where one slow path stalls
//! dependent work — ML collectives and partition–aggregate patterns.
//! Those workloads cannot be pre-scheduled: the next wave of flows
//! starts when the previous wave *finishes*, wherever the simulation
//! clock happens to be. A [`FlowDriver`] is the runtime-facing contract
//! for that: the simulation asks it for the initial flows, then feeds
//! every TCP flow completion back, and the driver releases whatever the
//! dependency structure now permits.
//!
//! Drivers are deterministic state machines over `(config, seed)`:
//! they hold no wall clock and no RNG beyond a seeded [`hermes_sim::SimRng`],
//! so same-seed runs release byte-identical flow sequences.

use hermes_net::FlowId;
use hermes_sim::Time;

use crate::flowgen::FlowSpec;

/// A workload that reacts to flow completions.
///
/// The runtime calls [`FlowDriver::initial`] once at setup (with the
/// current sim time) and [`FlowDriver::on_flow_completed`] every time a
/// TCP flow fully acknowledges. Released specs must have
/// `start >= now`; drivers release at `now` — dependency edges in these
/// workloads have no think time.
pub trait FlowDriver {
    /// The flows to schedule before the run starts.
    fn initial(&mut self, now: Time) -> Vec<FlowSpec>;

    /// `id` completed at `now`; push any newly-released flows into
    /// `out`. Completions of flows the driver does not own (e.g. a
    /// background Poisson stream sharing the run) must be ignored.
    fn on_flow_completed(&mut self, id: FlowId, now: Time, out: &mut Vec<FlowSpec>);
}

/// Which workload a benchmark/conformance point runs. `Poisson` is the
/// paper's open-loop generator ([`crate::FlowGen`]); the others are the
/// staged-dependency and bimodal additions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Open-loop Poisson arrivals from an empirical size CDF (§5.1).
    Poisson,
    /// Ring-allreduce collective: see [`crate::RingAllreduce`].
    RingAllreduce(RingCfg),
    /// N-to-1 synchronized bursts: see [`crate::IncastDriver`].
    Incast(IncastCfg),
    /// Open-loop Poisson with bimodal sizes: see [`crate::ElephantMiceGen`].
    ElephantMice(MixCfg),
}

/// Ring-allreduce shape: `ranks` peers exchange `steps` chunked rounds;
/// step `k+1` is released only when the whole ring finished step `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingCfg {
    /// Participating ranks (one host each, round-robin across racks).
    pub ranks: usize,
    /// Barrier-separated rounds.
    pub steps: usize,
    /// Bytes each rank sends to its ring successor per step.
    pub chunk_bytes: u64,
}

impl RingCfg {
    /// Total payload the collective moves: `ranks × steps × chunk`.
    pub fn total_bytes(&self) -> u64 {
        self.ranks as u64 * self.steps as u64 * self.chunk_bytes
    }

    /// Flow id for `(step, rank)` — dense, decodable by the checkers.
    pub fn flow_id(&self, step: usize, rank: usize) -> FlowId {
        FlowId((step * self.ranks + rank) as u64)
    }

    /// Inverse of [`RingCfg::flow_id`]: `(step, rank)`.
    pub fn decode(&self, id: FlowId) -> (usize, usize) {
        let i = id.0 as usize;
        (i / self.ranks, i % self.ranks)
    }
}

/// Incast shape: `bursts` sequential waves of `fanout` synchronized
/// replies toward one aggregator; burst `b+1` is released when burst
/// `b`'s slowest reply lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncastCfg {
    /// Workers answering each query.
    pub fanout: usize,
    /// Bytes per reply.
    pub reply_bytes: u64,
    /// Sequential bursts.
    pub bursts: usize,
}

impl IncastCfg {
    /// Flow id for reply `i` of burst `b` — dense, decodable.
    pub fn flow_id(&self, burst: usize, i: usize) -> FlowId {
        FlowId((burst * self.fanout + i) as u64)
    }

    /// Inverse of [`IncastCfg::flow_id`]: `(burst, reply index)`.
    pub fn decode(&self, id: FlowId) -> (usize, usize) {
        let i = id.0 as usize;
        (i / self.fanout, i % self.fanout)
    }
}

/// Bimodal size mix: mice with probability `1 - elephant_frac`,
/// elephants otherwise, arriving open-loop at the configured load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixCfg {
    pub mice_bytes: u64,
    pub elephant_bytes: u64,
    /// Probability a draw is an elephant, in `[0, 1]`.
    pub elephant_frac: f64,
}

/// A flow's class under a [`MixCfg`], recovered from its size (specs
/// carry no tag field; the two modes are disjoint by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    Mice,
    Elephant,
}

impl MixCfg {
    /// Mean draw size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.elephant_frac * self.elephant_bytes as f64
            + (1.0 - self.elephant_frac) * self.mice_bytes as f64
    }

    /// Classify a generated flow by size banding (the midpoint is the
    /// boundary; draws are exactly one of the two modes).
    pub fn class_of(&self, size: u64) -> FlowClass {
        if size * 2 >= self.mice_bytes + self.elephant_bytes {
            FlowClass::Elephant
        } else {
            FlowClass::Mice
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ids_round_trip() {
        let cfg = RingCfg {
            ranks: 8,
            steps: 3,
            chunk_bytes: 64_000,
        };
        for step in 0..3 {
            for rank in 0..8 {
                assert_eq!(cfg.decode(cfg.flow_id(step, rank)), (step, rank));
            }
        }
        assert_eq!(cfg.total_bytes(), 8 * 3 * 64_000);
    }

    #[test]
    fn incast_ids_round_trip() {
        let cfg = IncastCfg {
            fanout: 6,
            reply_bytes: 32_000,
            bursts: 5,
        };
        for b in 0..5 {
            for i in 0..6 {
                assert_eq!(cfg.decode(cfg.flow_id(b, i)), (b, i));
            }
        }
    }

    #[test]
    fn mix_classes_are_disjoint_by_size() {
        let cfg = MixCfg {
            mice_bytes: 20_000,
            elephant_bytes: 1_000_000,
            elephant_frac: 0.1,
        };
        assert_eq!(cfg.class_of(20_000), FlowClass::Mice);
        assert_eq!(cfg.class_of(1_000_000), FlowClass::Elephant);
        let mean = cfg.mean_bytes();
        assert!(mean > 20_000.0 && mean < 1_000_000.0);
    }
}
