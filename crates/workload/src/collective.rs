//! Ring-allreduce collective generator.
//!
//! `ranks` hosts form a logical ring; in every step each rank sends one
//! `chunk_bytes` flow to its successor, and step `k+1` is released only
//! when *all* `ranks` step-`k` flows have completed. That barrier is the
//! point: one degraded path slows one flow, and the whole collective —
//! every rank — stalls behind it. Time-to-ring-completion is therefore
//! a direct readout of how fast a load balancer routes around trouble.
//!
//! Ranks are placed round-robin across racks (rank `r` lives on leaf
//! `r mod n_leaves`), so ring successors are almost always in another
//! rack and every step crosses the fabric. Flow ids are dense
//! (`step × ranks + rank`, see [`RingCfg::flow_id`]) so checkers can
//! reconstruct the full step structure from flow records alone.

use hermes_net::{FlowId, HostId, Topology};
use hermes_sim::Time;

use crate::driver::{FlowDriver, RingCfg};
use crate::flowgen::FlowSpec;

/// Barrier-stepped ring-allreduce driver (see module docs).
pub struct RingAllreduce {
    cfg: RingCfg,
    n_leaves: usize,
    hosts_per_leaf: usize,
    /// Step currently in flight (== `cfg.steps` once done).
    step: usize,
    /// Flows of the in-flight step not yet completed.
    outstanding: usize,
    /// Ring-wide close time of each finished step.
    step_closes: Vec<Time>,
}

impl RingAllreduce {
    pub fn new(topo: &Topology, cfg: RingCfg) -> RingAllreduce {
        assert!(cfg.ranks >= 2, "a ring needs at least 2 ranks");
        assert!(cfg.steps >= 1 && cfg.chunk_bytes >= 1);
        assert!(topo.n_leaves >= 2, "collective workload needs ≥2 racks");
        assert!(
            cfg.ranks <= topo.n_leaves * topo.hosts_per_leaf,
            "ranks {} exceed host count {}",
            cfg.ranks,
            topo.n_leaves * topo.hosts_per_leaf
        );
        RingAllreduce {
            cfg,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            step: 0,
            outstanding: 0,
            step_closes: Vec::with_capacity(cfg.steps),
        }
    }

    /// Host of rank `r`: round-robin across racks so ring neighbours
    /// sit under different leaves and every chunk crosses the fabric.
    pub fn host_of(&self, rank: usize) -> HostId {
        let leaf = rank % self.n_leaves;
        let idx = rank / self.n_leaves;
        HostId((leaf * self.hosts_per_leaf + idx) as u32)
    }

    fn step_flows(&self, step: usize, now: Time) -> Vec<FlowSpec> {
        (0..self.cfg.ranks)
            .map(|rank| FlowSpec {
                id: self.cfg.flow_id(step, rank),
                src: self.host_of(rank),
                dst: self.host_of((rank + 1) % self.cfg.ranks),
                size: self.cfg.chunk_bytes,
                start: now,
            })
            .collect()
    }

    /// Ring-wide close times of the steps finished so far.
    pub fn step_closes(&self) -> &[Time] {
        &self.step_closes
    }

    /// Completion time of the whole collective (last step's close), if
    /// it ran to the end.
    pub fn completion(&self) -> Option<Time> {
        if self.step_closes.len() == self.cfg.steps {
            self.step_closes.last().copied()
        } else {
            None
        }
    }
}

impl FlowDriver for RingAllreduce {
    fn initial(&mut self, now: Time) -> Vec<FlowSpec> {
        self.step = 0;
        self.outstanding = self.cfg.ranks;
        self.step_closes.clear();
        self.step_flows(0, now)
    }

    fn on_flow_completed(&mut self, id: FlowId, now: Time, out: &mut Vec<FlowSpec>) {
        if id.0 >= (self.cfg.ranks * self.cfg.steps) as u64 || self.step >= self.cfg.steps {
            return; // not ours (e.g. a co-scheduled background flow)
        }
        let (step, _rank) = self.cfg.decode(id);
        debug_assert_eq!(step, self.step, "completion from a step not in flight");
        self.outstanding -= 1;
        if self.outstanding > 0 {
            return;
        }
        // Barrier: the whole ring finished this step.
        self.step_closes.push(now);
        if hermes_telemetry::enabled() {
            hermes_telemetry::emit_with(now, || hermes_telemetry::Record::RingStep {
                step: self.step as u32,
                ranks: self.cfg.ranks as u32,
                chunk_bytes: self.cfg.chunk_bytes,
            });
        }
        self.step += 1;
        if self.step < self.cfg.steps {
            self.outstanding = self.cfg.ranks;
            out.extend(self.step_flows(self.step, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(ranks: usize, steps: usize) -> RingAllreduce {
        RingAllreduce::new(
            &Topology::sim_baseline(),
            RingCfg {
                ranks,
                steps,
                chunk_bytes: 64_000,
            },
        )
    }

    #[test]
    fn ranks_spread_round_robin_across_racks() {
        let r = ring(8, 3);
        // sim_baseline: 8 leaves × 16 hosts ⇒ each rank on its own leaf.
        for rank in 0..8 {
            assert_eq!(r.host_of(rank).0 as usize / 16, rank % 8);
        }
    }

    #[test]
    fn initial_releases_exactly_step_zero() {
        let mut r = ring(4, 2);
        let flows = r.initial(Time::ZERO);
        assert_eq!(flows.len(), 4);
        for (rank, f) in flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(rank as u64));
            assert_eq!(f.size, 64_000);
            assert_eq!(f.start, Time::ZERO);
            assert_eq!(f.src, r.host_of(rank));
            assert_eq!(f.dst, r.host_of((rank + 1) % 4));
        }
    }

    #[test]
    fn barrier_holds_next_step_until_ring_closes() {
        let mut r = ring(4, 2);
        let step0 = r.initial(Time::ZERO);
        let mut out = Vec::new();
        // Three of four complete: nothing released.
        for f in step0.iter().take(3) {
            r.on_flow_completed(f.id, Time::from_us(10), &mut out);
            assert!(out.is_empty(), "released before the ring closed");
        }
        // Last one closes the ring; step 1 releases at that instant.
        r.on_flow_completed(step0[3].id, Time::from_us(25), &mut out);
        assert_eq!(out.len(), 4);
        for (rank, f) in out.iter().enumerate() {
            assert_eq!(f.id, FlowId((4 + rank) as u64));
            assert_eq!(f.start, Time::from_us(25));
        }
        assert_eq!(r.step_closes(), &[Time::from_us(25)]);
        assert!(r.completion().is_none());
        // Finish step 1: collective complete, nothing further.
        let mut out2 = Vec::new();
        for f in &out {
            r.on_flow_completed(f.id, Time::from_us(40), &mut out2);
        }
        assert!(out2.is_empty());
        assert_eq!(r.completion(), Some(Time::from_us(40)));
    }

    #[test]
    fn foreign_flow_ids_are_ignored() {
        let mut r = ring(4, 2);
        r.initial(Time::ZERO);
        let mut out = Vec::new();
        r.on_flow_completed(FlowId(1_000), Time::from_us(5), &mut out);
        assert!(out.is_empty());
        assert!(r.step_closes().is_empty());
    }
}
