//! Network-visibility measurement (Table 2).
//!
//! The paper quantifies visibility as "the average number of concurrent
//! flows observed on parallel paths" between an entity pair: a source
//! ToR can see every flow its rack sends toward a destination rack
//! (≈ several flows per parallel path), while an end-host pair sees only
//! its own flows (≈ 0.01 per path). This module tracks both.

use std::collections::BTreeMap;

use hermes_net::{FlowId, HostId, LeafId};
use hermes_sim::Time;

/// Tracks concurrent flows per (src leaf, dst leaf) and per (src host,
/// dst host) pair, and accumulates time-weighted averages.
///
/// `linger` models the observation window of a real monitor: a switch
/// (or host) "observes" a flow until `linger` after its last byte —
/// the behaviour of flow-table entries with an aging timeout, which is
/// what CONGA-style leaf switches actually expose. `linger = 0` gives
/// instantaneous concurrency.
pub struct VisibilityTracker {
    n_leaves: usize,
    n_paths: usize,
    /// Active flow count per ordered leaf pair (dense, row-major).
    leaf_pair: Vec<u32>,
    /// Active flow count per ordered host pair (sparse).
    host_pair: BTreeMap<(HostId, HostId), u32>,
    /// Flow → its pair keys, for removal.
    flows: BTreeMap<FlowId, (LeafId, LeafId, HostId, HostId)>,
    /// Flows whose removal is deferred by the observation window,
    /// ordered by removal time.
    lingering: std::collections::BinaryHeap<std::cmp::Reverse<(Time, FlowId)>>,
    linger: Time,
    // Time-weighted accumulators.
    last: Time,
    acc_leaf_sum: f64,
    acc_host_sum: f64,
    acc_time: f64,
    /// Number of host pairs that ever carried a flow (the denominator
    /// for "average over pairs" on the host side is all pairs, tracked
    /// separately).
    n_host_pairs_total: usize,
}

impl VisibilityTracker {
    /// `n_paths` is the number of parallel paths between rack pairs.
    pub fn new(n_leaves: usize, hosts_per_leaf: usize, n_paths: usize) -> VisibilityTracker {
        Self::with_linger(n_leaves, hosts_per_leaf, n_paths, Time::ZERO)
    }

    /// A tracker whose observers keep seeing a flow for `linger` after
    /// it finishes (flow-table aging).
    pub fn with_linger(
        n_leaves: usize,
        hosts_per_leaf: usize,
        n_paths: usize,
        linger: Time,
    ) -> VisibilityTracker {
        let n_hosts = n_leaves * hosts_per_leaf;
        // Ordered host pairs across racks.
        let n_host_pairs_total = n_hosts * (n_hosts - hosts_per_leaf);
        VisibilityTracker {
            n_leaves,
            n_paths,
            leaf_pair: vec![0; n_leaves * n_leaves],
            host_pair: BTreeMap::new(),
            flows: BTreeMap::new(),
            lingering: std::collections::BinaryHeap::new(),
            linger,
            last: Time::ZERO,
            acc_leaf_sum: 0.0,
            acc_host_sum: 0.0,
            acc_time: 0.0,
            n_host_pairs_total,
        }
    }

    fn drop_flow(&mut self, id: FlowId) {
        if let Some((sl, dl, s, d)) = self.flows.remove(&id) {
            let cell = &mut self.leaf_pair[sl.0 as usize * self.n_leaves + dl.0 as usize];
            *cell = cell.saturating_sub(1);
            if let Some(c) = self.host_pair.get_mut(&(s, d)) {
                *c -= 1;
                if *c == 0 {
                    self.host_pair.remove(&(s, d));
                }
            }
        }
    }

    fn integrate(&mut self, now: Time) {
        // Expire lingering flows *at their expiry instants* so the
        // time-weighted integral stays exact.
        while let Some(&std::cmp::Reverse((at, id))) = self.lingering.peek() {
            if at > now {
                break;
            }
            self.lingering.pop();
            self.integrate_to(at);
            self.drop_flow(id);
        }
        self.integrate_to(now);
    }

    fn integrate_to(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last).as_secs_f64();
        if dt > 0.0 {
            let leaf_pairs = (self.n_leaves * (self.n_leaves - 1)) as f64;
            let leaf_active: f64 = self.leaf_pair.iter().map(|&c| c as f64).sum();
            // Average concurrent flows per leaf pair, then per path.
            self.acc_leaf_sum += dt * leaf_active / leaf_pairs;
            let host_active: f64 = self.host_pair.values().map(|&c| c as f64).sum();
            self.acc_host_sum += dt * host_active / self.n_host_pairs_total as f64;
            self.acc_time += dt;
        }
        self.last = now;
    }

    /// A flow started.
    pub fn flow_started(
        &mut self,
        id: FlowId,
        src: HostId,
        dst: HostId,
        src_leaf: LeafId,
        dst_leaf: LeafId,
        now: Time,
    ) {
        self.integrate(now);
        self.leaf_pair[src_leaf.0 as usize * self.n_leaves + dst_leaf.0 as usize] += 1;
        *self.host_pair.entry((src, dst)).or_insert(0) += 1;
        self.flows.insert(id, (src_leaf, dst_leaf, src, dst));
    }

    /// A flow finished. With a nonzero observation window the flow keeps
    /// counting until `now + linger`.
    pub fn flow_finished(&mut self, id: FlowId, now: Time) {
        self.integrate(now);
        if !self.flows.contains_key(&id) {
            return;
        }
        if self.linger == Time::ZERO {
            self.drop_flow(id);
        } else {
            self.lingering
                .push(std::cmp::Reverse((now + self.linger, id)));
        }
    }

    /// Time-averaged concurrent flows per parallel path, seen by a
    /// ToR-to-ToR ("switch") pair — Table 2's first row.
    pub fn switch_pair_visibility(&mut self, now: Time) -> f64 {
        self.integrate(now);
        if self.acc_time == 0.0 {
            return 0.0;
        }
        self.acc_leaf_sum / self.acc_time / self.n_paths as f64
    }

    /// Time-averaged concurrent flows per parallel path for a
    /// host-to-host pair — Table 2's second row.
    pub fn host_pair_visibility(&mut self, now: Time) -> f64 {
        self.integrate(now);
        if self.acc_time == 0.0 {
            return 0.0;
        }
        self.acc_host_sum / self.acc_time / self.n_paths as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_counts_per_path() {
        // 2 leaves, 2 hosts each, 4 paths. Keep 8 flows alive on the
        // (0→1) pair for 1 ms.
        let mut v = VisibilityTracker::new(2, 2, 4);
        for i in 0..8u64 {
            v.flow_started(
                FlowId(i),
                HostId(0),
                HostId(2),
                LeafId(0),
                LeafId(1),
                Time::ZERO,
            );
        }
        let sw = v.switch_pair_visibility(Time::from_ms(1));
        // 8 flows on 1 of 2 ordered leaf pairs → avg 4 per pair → 1 per path.
        assert!((sw - 1.0).abs() < 1e-9, "switch visibility {sw}");
        // Host pairs: 8 flows all on one of the 2×2+2×2=8 ordered cross
        // pairs → 1 per pair avg → 0.25 per path.
        let hp = v.host_pair_visibility(Time::from_ms(1));
        assert!((hp - 0.25).abs() < 1e-9, "host visibility {hp}");
    }

    #[test]
    fn finished_flows_stop_counting() {
        let mut v = VisibilityTracker::new(2, 2, 4);
        v.flow_started(
            FlowId(1),
            HostId(0),
            HostId(2),
            LeafId(0),
            LeafId(1),
            Time::ZERO,
        );
        v.flow_finished(FlowId(1), Time::from_ms(1));
        // One more ms with nothing active halves the average.
        let sw_full = {
            let mut v2 = VisibilityTracker::new(2, 2, 4);
            v2.flow_started(
                FlowId(1),
                HostId(0),
                HostId(2),
                LeafId(0),
                LeafId(1),
                Time::ZERO,
            );
            v2.switch_pair_visibility(Time::from_ms(2))
        };
        let sw_half = v.switch_pair_visibility(Time::from_ms(2));
        assert!(
            (sw_half - sw_full / 2.0).abs() < 1e-12,
            "alive 1 of 2 ms must average half of alive 2 of 2 ms: {sw_half} vs {sw_full}"
        );
        assert!(sw_half > 0.0);
    }

    #[test]
    fn switch_sees_more_than_host() {
        // Many flows from distinct host pairs: switch-pair visibility
        // aggregates them, host-pair visibility stays low — the Table 2
        // asymmetry.
        let mut v = VisibilityTracker::new(2, 4, 4);
        for i in 0..4u64 {
            v.flow_started(
                FlowId(i),
                HostId(i as u32),
                HostId(4 + i as u32),
                LeafId(0),
                LeafId(1),
                Time::ZERO,
            );
        }
        let sw = v.switch_pair_visibility(Time::from_ms(1));
        let hp = v.host_pair_visibility(Time::from_ms(1));
        assert!(sw > 10.0 * hp, "switch {sw} vs host {hp}");
    }

    #[test]
    fn linger_extends_observation() {
        // Flow alive [0, 1ms], linger 1ms → observed for 2 of 4 ms.
        let mut v = VisibilityTracker::with_linger(2, 2, 4, Time::from_ms(1));
        v.flow_started(
            FlowId(1),
            HostId(0),
            HostId(2),
            LeafId(0),
            LeafId(1),
            Time::ZERO,
        );
        v.flow_finished(FlowId(1), Time::from_ms(1));
        let sw = v.switch_pair_visibility(Time::from_ms(4));
        // 1 flow × 2ms / 4ms / 2 pairs / 4 paths = 0.0625.
        assert!((sw - 0.0625).abs() < 1e-9, "windowed visibility {sw}");
    }

    #[test]
    fn unknown_flow_finish_is_ignored() {
        let mut v = VisibilityTracker::new(2, 2, 4);
        v.flow_finished(FlowId(99), Time::from_us(1));
        assert_eq!(v.switch_pair_visibility(Time::from_ms(1)), 0.0);
    }
}
