//! Flow-completion-time metrics, banded exactly as the paper reports
//! them (§5.1): overall average, small flows (< 100 KB) average and
//! 99th percentile, large flows (> 10 MB) average, plus the
//! unfinished-flow fraction that drives the Fig. 17 blackhole numbers.

use hermes_net::{FlowId, HostId};
use hermes_sim::Time;

/// Small-flow band upper bound (paper: "<100KB").
pub const SMALL_FLOW_BYTES: u64 = 100_000;
/// Large-flow band lower bound (paper: ">10MB").
pub const LARGE_FLOW_BYTES: u64 = 10_000_000;

/// The lifecycle record of one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    pub id: FlowId,
    pub src: HostId,
    pub dst: HostId,
    /// Payload bytes.
    pub size: u64,
    pub start: Time,
    /// Completion time (last byte delivered to the receiver), if any.
    pub finish: Option<Time>,
}

impl FlowRecord {
    /// FCT for a finished flow, or `horizon - start` for an unfinished
    /// one — the paper's convention in the failure experiments, where
    /// "unfinished flows greatly enlarge the average FCT".
    pub fn fct_at(&self, horizon: Time) -> Time {
        match self.finish {
            Some(f) => f - self.start,
            None => horizon.saturating_sub(self.start),
        }
    }
}

/// Summary statistics over a set of flow records.
#[derive(Clone, Copy, Debug, Default)]
pub struct FctSummary {
    pub n: usize,
    pub unfinished: usize,
    /// Overall average FCT (seconds), unfinished flows charged at the
    /// horizon.
    pub avg: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// Small-flow (<100 KB) band.
    pub n_small: usize,
    pub avg_small: f64,
    pub p99_small: f64,
    /// Large-flow (>10 MB) band.
    pub n_large: usize,
    pub avg_large: f64,
}

impl FctSummary {
    /// Fraction of flows that never finished.
    pub fn unfinished_frac(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.unfinished as f64 / self.n as f64
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn avg(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Summarize records against a measurement horizon (simulation end).
pub fn summarize(records: &[FlowRecord], horizon: Time) -> FctSummary {
    let mut all: Vec<f64> = Vec::with_capacity(records.len());
    let mut small: Vec<f64> = Vec::new();
    let mut large: Vec<f64> = Vec::new();
    let mut unfinished = 0;
    for r in records {
        if r.finish.is_none() {
            unfinished += 1;
        }
        let fct = r.fct_at(horizon).as_secs_f64();
        all.push(fct);
        if r.size < SMALL_FLOW_BYTES {
            small.push(fct);
        } else if r.size > LARGE_FLOW_BYTES {
            large.push(fct);
        }
    }
    let mut sorted = all.clone();
    sorted.sort_by(f64::total_cmp);
    let mut small_sorted = small.clone();
    small_sorted.sort_by(f64::total_cmp);
    FctSummary {
        n: records.len(),
        unfinished,
        avg: avg(&all),
        p50: percentile(&sorted, 0.50),
        p95: percentile(&sorted, 0.95),
        p99: percentile(&sorted, 0.99),
        n_small: small.len(),
        avg_small: avg(&small),
        p99_small: percentile(&small_sorted, 0.99),
        n_large: large.len(),
        avg_large: avg(&large),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, start_us: u64, fct_us: Option<u64>) -> FlowRecord {
        FlowRecord {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(16),
            size,
            start: Time::from_us(start_us),
            finish: fct_us.map(|f| Time::from_us(start_us + f)),
        }
    }

    #[test]
    fn banded_breakdown() {
        let records = vec![
            rec(50_000, 0, Some(100)),        // small
            rec(60_000, 0, Some(300)),        // small
            rec(1_000_000, 0, Some(1_000)),   // medium (neither band)
            rec(20_000_000, 0, Some(50_000)), // large
        ];
        let s = summarize(&records, Time::from_ms(1));
        assert_eq!(s.n, 4);
        assert_eq!(s.n_small, 2);
        assert_eq!(s.n_large, 1);
        assert!((s.avg_small - 200e-6).abs() < 1e-12);
        assert!((s.avg_large - 50_000e-6).abs() < 1e-12);
        assert_eq!(s.unfinished, 0);
    }

    #[test]
    fn unfinished_charged_at_horizon() {
        let records = vec![rec(1_000_000, 1_000, None), rec(1_000_000, 0, Some(500))];
        let horizon = Time::from_ms(10);
        let s = summarize(&records, horizon);
        assert_eq!(s.unfinished, 1);
        assert!((s.unfinished_frac() - 0.5).abs() < 1e-12);
        // FCT of the unfinished flow = 10ms - 1ms = 9ms.
        let want_avg = (9e-3 + 500e-6) / 2.0;
        assert!((s.avg - want_avg).abs() < 1e-12, "avg {}", s.avg);
    }

    #[test]
    fn percentiles_on_known_data() {
        let records: Vec<FlowRecord> = (1..=100).map(|i| rec(1_000, 0, Some(i * 10))).collect();
        let s = summarize(&records, Time::from_secs(1));
        assert!((s.p50 - 510e-6).abs() < 20e-6, "p50 {}", s.p50);
        assert!((s.p99 - 990e-6).abs() < 20e-6, "p99 {}", s.p99);
        assert!(s.p95 <= s.p99);
    }

    #[test]
    fn empty_records_do_not_panic() {
        let s = summarize(&[], Time::from_secs(1));
        assert_eq!(s.n, 0);
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.unfinished_frac(), 0.0);
    }

    #[test]
    fn band_boundaries_are_exclusive() {
        // Exactly 100 KB is not "small"; exactly 10 MB is not "large".
        let records = vec![
            rec(SMALL_FLOW_BYTES, 0, Some(10)),
            rec(LARGE_FLOW_BYTES, 0, Some(10)),
        ];
        let s = summarize(&records, Time::from_secs(1));
        assert_eq!(s.n_small, 0);
        assert_eq!(s.n_large, 0);
    }
}
