//! Elephant/mice bimodal traffic mix.
//!
//! DiffFlow-style workloads are dominated by two populations: many
//! latency-sensitive mice and a few throughput-hungry elephants that
//! carry most of the bytes. [`ElephantMiceGen`] is the open-loop
//! Poisson generator from [`crate::FlowGen`] with the empirical CDF
//! replaced by a two-point size draw ([`MixCfg`]): each arrival is an
//! elephant with probability `elephant_frac`, a mouse otherwise. The
//! two modes are far apart by construction, so a flow's class is
//! recoverable from its size alone ([`MixCfg::class_of`]) — specs carry
//! no side-channel tag.

use hermes_net::{FlowId, HostId, Topology};
use hermes_sim::{SimRng, Time};

use crate::driver::MixCfg;
use crate::flowgen::FlowSpec;

/// Open-loop Poisson generator of inter-rack elephant/mice traffic.
///
/// Offered load follows the [`crate::FlowGen`] convention:
/// `λ = load × Σ(uplink bps) / (8 × E[size])` with the bimodal mean.
pub struct ElephantMiceGen {
    rng: SimRng,
    cfg: MixCfg,
    /// Mean inter-arrival time in seconds.
    mean_iat_s: f64,
    n_leaves: usize,
    hosts_per_leaf: usize,
    next_id: u64,
    clock: Time,
}

impl ElephantMiceGen {
    /// A generator for `topo` at offered `load ∈ (0, 1.5]` (relative to
    /// `capacity_bps` if given, else the topology's live capacity).
    pub fn new(
        topo: &Topology,
        cfg: MixCfg,
        load: f64,
        capacity_bps: Option<u64>,
        rng: SimRng,
    ) -> ElephantMiceGen {
        assert!(load > 0.0 && load <= 1.5, "load {load} out of range");
        assert!(topo.n_leaves >= 2, "inter-rack workload needs ≥2 racks");
        assert!(
            cfg.mice_bytes >= 1 && cfg.elephant_bytes > cfg.mice_bytes,
            "mix must have elephant > mice ≥ 1 byte"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.elephant_frac),
            "elephant_frac {} out of [0, 1]",
            cfg.elephant_frac
        );
        let cap = capacity_bps.unwrap_or_else(|| topo.total_uplink_bps()) as f64;
        let lambda = load * cap / (cfg.mean_bytes() * 8.0); // flows per second
        ElephantMiceGen {
            rng,
            cfg,
            mean_iat_s: 1.0 / lambda,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            next_id: 0,
            clock: Time::ZERO,
        }
    }

    /// Fabric-wide arrival rate (flows per second).
    pub fn lambda(&self) -> f64 {
        1.0 / self.mean_iat_s
    }

    /// The size mix this generator draws from.
    pub fn cfg(&self) -> MixCfg {
        self.cfg
    }

    /// Next flow: exponential inter-arrival, uniform cross-rack pair,
    /// Bernoulli class draw.
    pub fn next_flow(&mut self) -> FlowSpec {
        let dt = self.rng.exp(self.mean_iat_s);
        self.clock += Time::from_secs_f64(dt);
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let src = self.rng.below(n_hosts);
        let src_leaf = src / self.hosts_per_leaf;
        let other_leaf = {
            let r = self.rng.below(self.n_leaves - 1);
            if r >= src_leaf {
                r + 1
            } else {
                r
            }
        };
        let dst = other_leaf * self.hosts_per_leaf + self.rng.below(self.hosts_per_leaf);
        let size = if self.rng.chance(self.cfg.elephant_frac) {
            self.cfg.elephant_bytes
        } else {
            self.cfg.mice_bytes
        };
        let id = FlowId(self.next_id);
        self.next_id += 1;
        FlowSpec {
            id,
            src: HostId(src as u32),
            dst: HostId(dst as u32),
            size,
            start: self.clock,
        }
    }

    /// Generate a fixed-count schedule.
    pub fn schedule(&mut self, n: usize) -> Vec<FlowSpec> {
        (0..n).map(|_| self.next_flow()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FlowClass;

    fn mix() -> MixCfg {
        MixCfg {
            mice_bytes: 20_000,
            elephant_bytes: 1_000_000,
            elephant_frac: 0.1,
        }
    }

    fn gen(load: f64, seed: u64) -> ElephantMiceGen {
        ElephantMiceGen::new(
            &Topology::sim_baseline(),
            mix(),
            load,
            None,
            SimRng::new(seed),
        )
    }

    #[test]
    fn draws_are_exactly_the_two_modes_and_cross_rack() {
        let mut g = gen(0.4, 11);
        for _ in 0..2000 {
            let f = g.next_flow();
            assert!(f.size == 20_000 || f.size == 1_000_000);
            assert_ne!(f.src.0 / 16, f.dst.0 / 16, "must cross racks");
        }
    }

    #[test]
    fn elephant_fraction_converges() {
        let mut g = gen(0.4, 12);
        let flows = g.schedule(20_000);
        let elephants = flows
            .iter()
            .filter(|f| mix().class_of(f.size) == FlowClass::Elephant)
            .count();
        let frac = elephants as f64 / flows.len() as f64;
        assert!((frac - 0.1).abs() < 0.01, "elephant frac {frac}");
    }

    #[test]
    fn offered_load_matches_request() {
        let mut g = gen(0.6, 13);
        let flows = g.schedule(60_000);
        let horizon = flows.last().unwrap().start.as_secs_f64();
        let bits: f64 = flows.iter().map(|f| f.size as f64 * 8.0).sum();
        let offered = bits / horizon;
        let want = 0.6 * Topology::sim_baseline().total_uplink_bps() as f64;
        assert!(
            (offered - want).abs() / want < 0.07,
            "offered {offered:.3e} want {want:.3e}"
        );
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let mut a = gen(0.4, 14);
        let mut b = gen(0.4, 14);
        for _ in 0..200 {
            let fa = a.next_flow();
            let fb = b.next_flow();
            assert_eq!(
                (fa.src, fa.dst, fa.size, fa.start),
                (fb.src, fb.dst, fb.size, fb.start)
            );
        }
    }
}
