//! Flow-size distributions.
//!
//! The paper evaluates on the two canonical heavy-tailed datacenter
//! workloads (§5.1, Fig. 7):
//!
//! * **web-search** — from the DCTCP measurement study (Alizadeh et al.,
//!   SIGCOMM 2010),
//! * **data-mining** — from VL2 (Greenberg et al., SIGCOMM 2009).
//!
//! The CDF control points below are the ones shipped with the flow
//! generator the paper uses ([8], the HKUST-SING traffic generator).
//! Sampling inverts the piecewise-linear CDF.

use hermes_sim::SimRng;

/// A flow-size distribution given as a piecewise-linear CDF over bytes.
#[derive(Clone, Debug)]
pub struct FlowSizeDist {
    name: &'static str,
    /// `(size_bytes, cumulative_probability)`, strictly increasing in
    /// both coordinates, first probability 0, last probability 1.
    points: Vec<(f64, f64)>,
}

/// Web-search CDF control points (bytes, cum. prob.).
const WEB_SEARCH_POINTS: &[(f64, f64)] = &[
    (1.0, 0.0),
    (10_000.0, 0.15),
    (20_000.0, 0.20),
    (30_000.0, 0.30),
    (50_000.0, 0.40),
    (80_000.0, 0.53),
    (200_000.0, 0.60),
    (1_000_000.0, 0.70),
    (2_000_000.0, 0.80),
    (5_000_000.0, 0.90),
    (10_000_000.0, 0.97),
    (30_000_000.0, 1.00),
];

/// Data-mining CDF control points (bytes, cum. prob.).
const DATA_MINING_POINTS: &[(f64, f64)] = &[
    (1.0, 0.0),
    (180.0, 0.10),
    (216.0, 0.20),
    (560.0, 0.30),
    (900.0, 0.40),
    (1_100.0, 0.50),
    (60_000.0, 0.60),
    (90_000.0, 0.70),
    (350_000.0, 0.80),
    (5_800_000.0, 0.90),
    (23_000_000.0, 0.95),
    (100_000_000.0, 0.98),
    (1_000_000_000.0, 1.00),
];

impl FlowSizeDist {
    /// The DCTCP web-search workload. Bursty, many small flows;
    /// ≈30% of flows below 30 KB carry little of the bytes.
    pub fn web_search() -> FlowSizeDist {
        FlowSizeDist::from_points("web-search", WEB_SEARCH_POINTS)
    }

    /// The VL2 data-mining workload. Extremely skewed: ~95% of bytes in
    /// the few flows above 35 MB (§5.1).
    pub fn data_mining() -> FlowSizeDist {
        FlowSizeDist::from_points("data-mining", DATA_MINING_POINTS)
    }

    /// A distribution from custom control points (validated).
    pub fn from_points(name: &'static str, pts: &[(f64, f64)]) -> FlowSizeDist {
        assert!(pts.len() >= 2, "need at least two CDF points");
        assert_eq!(pts[0].1, 0.0, "CDF must start at probability 0");
        assert_eq!(pts[pts.len() - 1].1, 1.0, "CDF must end at probability 1");
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must strictly increase");
            assert!(w[0].1 <= w[1].1, "probabilities must not decrease");
        }
        FlowSizeDist {
            name,
            points: pts.to_vec(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Smallest and largest producible sizes.
    pub fn support(&self) -> (u64, u64) {
        (
            self.points[0].0.max(1.0) as u64,
            self.points[self.points.len() - 1].0 as u64,
        )
    }

    /// The distribution mean, integrated exactly over the
    /// piecewise-linear CDF (uniform within each segment).
    pub fn mean_bytes(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) * (w[0].0 + w[1].0) / 2.0)
            .sum()
    }

    /// Inverse-CDF at probability `p ∈ [0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if p <= p1 {
                if p1 == p0 {
                    return x1;
                }
                return x0 + (x1 - x0) * (p - p0) / (p1 - p0);
            }
        }
        self.points[self.points.len() - 1].0
    }

    /// CDF value at `size` (for plotting Fig. 7).
    pub fn cdf(&self, size: f64) -> f64 {
        if size <= self.points[0].0 {
            return 0.0;
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if size <= x1 {
                return p0 + (p1 - p0) * (size - x0) / (x1 - x0);
            }
        }
        1.0
    }

    /// Draw one flow size (at least 1 byte).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        (self.quantile(rng.f64()).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_in_published_ballpark() {
        // Web-search mean ≈ 1.7 MB; data-mining ≈ 14 MB with these
        // control points (both heavy-tailed, data-mining far more).
        let ws = FlowSizeDist::web_search().mean_bytes();
        let dm = FlowSizeDist::data_mining().mean_bytes();
        assert!((1.4e6..2.0e6).contains(&ws), "web-search mean {ws:.3e}");
        assert!((1.0e7..1.8e7).contains(&dm), "data-mining mean {dm:.3e}");
        assert!(dm > 5.0 * ws, "data-mining must be much heavier");
    }

    #[test]
    fn data_mining_tail_matches_paper_claim() {
        // §5.1: ~95% of bytes belong to ~3.6% of flows larger than 35 MB.
        let dm = FlowSizeDist::data_mining();
        let frac_flows_above = 1.0 - dm.cdf(35e6);
        assert!(
            (0.02..0.06).contains(&frac_flows_above),
            "flows >35MB: {frac_flows_above}"
        );
        // Bytes above 35 MB / total bytes.
        let total = dm.mean_bytes();
        let above: f64 = dm
            .points
            .windows(2)
            .map(|w| {
                let (x0, p0) = w[0];
                let (x1, p1) = w[1];
                if x1 <= 35e6 {
                    0.0
                } else if x0 >= 35e6 {
                    (p1 - p0) * (x0 + x1) / 2.0
                } else {
                    // Split the segment at 35 MB.
                    let pm = p0 + (p1 - p0) * (35e6 - x0) / (x1 - x0);
                    (p1 - pm) * (35e6 + x1) / 2.0
                }
            })
            .sum();
        let byte_frac = above / total;
        assert!(byte_frac > 0.85, "bytes in >35MB flows: {byte_frac}");
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        for dist in [FlowSizeDist::web_search(), FlowSizeDist::data_mining()] {
            for i in 0..=100 {
                let p = i as f64 / 100.0;
                let x = dist.quantile(p);
                let back = dist.cdf(x);
                assert!(
                    (back - p).abs() < 1e-9,
                    "{}: p={p} x={x} back={back}",
                    dist.name()
                );
            }
        }
    }

    #[test]
    fn sample_stays_in_support_and_tracks_mean() {
        let dist = FlowSizeDist::web_search();
        let (lo, hi) = dist.support();
        let mut rng = SimRng::new(12);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = dist.sample(&mut rng);
            assert!(s >= lo && s <= hi);
            sum += s as f64;
        }
        let got = sum / n as f64;
        let want = dist.mean_bytes();
        assert!(
            (got - want).abs() / want < 0.05,
            "sample mean {got:.3e} vs analytic {want:.3e}"
        );
    }

    #[test]
    fn quantile_is_monotone() {
        let dist = FlowSizeDist::data_mining();
        let mut last = 0.0;
        for i in 0..=1000 {
            let x = dist.quantile(i as f64 / 1000.0);
            assert!(x >= last);
            last = x;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_unsorted_points() {
        FlowSizeDist::from_points("bad", &[(10.0, 0.0), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "start at probability 0")]
    fn rejects_bad_head() {
        FlowSizeDist::from_points("bad", &[(1.0, 0.5), (5.0, 1.0)]);
    }
}
