//! # hermes-workload — datacenter workloads and metrics
//!
//! * [`FlowSizeDist`] — the paper's two evaluation workloads (Fig. 7):
//!   web-search (DCTCP) and data-mining (VL2), as piecewise-linear CDFs
//!   with exact mean/quantile computation and seeded sampling.
//! * [`FlowGen`] — the §5.1 open-loop Poisson generator: flows between
//!   random hosts under different leaves at a configured offered load.
//! * [`FlowRecord`] / [`summarize`] — FCT bookkeeping with the paper's
//!   size bands (<100 KB small, >10 MB large) and unfinished-flow
//!   accounting for the failure experiments.
//! * [`VisibilityTracker`] — Table 2's concurrent-flows-per-path
//!   visibility metric for switch pairs vs. host pairs.
//! * [`IncastGen`] — the partition–aggregate microburst pattern (§6's
//!   discussion of bursts Hermes cannot sense within an RTT).
//! * [`degradation_report`] — goodput-timeline degradation metrics for
//!   the transient-failure experiments (dip depth, time-to-impact,
//!   time-to-recover-to-baseline, stranded flows).
//! * [`FlowDriver`] / [`WorkloadKind`] — staged-dependency workloads
//!   released by flow *completion*: [`RingAllreduce`] collectives,
//!   barrier-stepped [`IncastDriver`] bursts, and the open-loop
//!   [`ElephantMiceGen`] bimodal mix.

mod collective;
mod degradation;
mod dist;
mod driver;
mod flowgen;
mod incast;
mod metrics;
mod mix;
mod visibility;

pub use collective::RingAllreduce;
pub use degradation::{degradation_report, DegradationCfg, DegradationReport};
pub use dist::FlowSizeDist;
pub use driver::{FlowClass, FlowDriver, IncastCfg, MixCfg, RingCfg, WorkloadKind};
pub use flowgen::{FlowGen, FlowSpec};
pub use incast::{query_completion, IncastDriver, IncastGen, Query};
pub use metrics::{summarize, FctSummary, FlowRecord, LARGE_FLOW_BYTES, SMALL_FLOW_BYTES};
pub use mix::ElephantMiceGen;
pub use visibility::VisibilityTracker;
