//! Partition–aggregate ("incast") workload.
//!
//! The paper's §6 notes Hermes "does not directly handle microbursts"
//! (it needs at least an RTT to sense); DRILL is built for exactly
//! that regime. This generator produces the classic incast pattern
//! from the DCTCP paper: an aggregator fans a query out to `fanout`
//! workers under *other* racks, each replies with `reply_bytes`
//! simultaneously, and the query completes when the last reply lands —
//! so the metric is query completion time (QCT), dominated by the
//! slowest flow.

use hermes_net::{FlowId, HostId, Topology};
use hermes_sim::{SimRng, Time};

use crate::driver::{FlowDriver, IncastCfg};
use crate::flowgen::FlowSpec;
use crate::metrics::FlowRecord;

/// One query: `fanout` synchronized reply flows toward one aggregator.
#[derive(Clone, Debug)]
pub struct Query {
    pub aggregator: HostId,
    /// Flow ids of the replies (all must finish for the query to).
    pub flows: Vec<FlowId>,
    pub start: Time,
}

/// Generates periodic incast queries.
pub struct IncastGen {
    rng: SimRng,
    fanout: usize,
    reply_bytes: u64,
    period: Time,
    n_leaves: usize,
    hosts_per_leaf: usize,
    next_id: u64,
    clock: Time,
}

impl IncastGen {
    /// `fanout` workers × `reply_bytes` per query, one query per
    /// `period`. Workers are drawn from racks other than the
    /// aggregator's.
    pub fn new(
        topo: &Topology,
        fanout: usize,
        reply_bytes: u64,
        period: Time,
        rng: SimRng,
    ) -> IncastGen {
        assert!(topo.n_leaves >= 2, "incast needs at least 2 racks");
        assert!(fanout >= 1 && reply_bytes >= 1);
        IncastGen {
            rng,
            fanout,
            reply_bytes,
            period,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            next_id: 0,
            clock: Time::ZERO,
        }
    }

    /// Produce the next query and its reply-flow specs.
    pub fn next_query(&mut self) -> (Query, Vec<FlowSpec>) {
        self.clock += self.period;
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let agg = self.rng.below(n_hosts);
        let agg_leaf = agg / self.hosts_per_leaf;
        let mut flows = Vec::with_capacity(self.fanout);
        let mut specs = Vec::with_capacity(self.fanout);
        for _ in 0..self.fanout {
            // A worker under a different rack.
            let leaf = {
                let r = self.rng.below(self.n_leaves - 1);
                if r >= agg_leaf {
                    r + 1
                } else {
                    r
                }
            };
            let worker = leaf * self.hosts_per_leaf + self.rng.below(self.hosts_per_leaf);
            let id = FlowId(self.next_id);
            self.next_id += 1;
            flows.push(id);
            specs.push(FlowSpec {
                id,
                src: HostId(worker as u32),
                dst: HostId(agg as u32),
                size: self.reply_bytes,
                start: self.clock,
            });
        }
        (
            Query {
                aggregator: HostId(agg as u32),
                flows,
                start: self.clock,
            },
            specs,
        )
    }

    /// Generate `n` queries; returns (queries, all flow specs).
    pub fn schedule(&mut self, n: usize) -> (Vec<Query>, Vec<FlowSpec>) {
        let mut queries = Vec::with_capacity(n);
        let mut specs = Vec::new();
        for _ in 0..n {
            let (q, s) = self.next_query();
            queries.push(q);
            specs.extend(s);
        }
        (queries, specs)
    }
}

/// Closed-loop incast driver: `bursts` sequential N-to-1 waves.
///
/// Unlike [`IncastGen`] (open-loop, periodic), this driver is
/// barrier-stepped for the conformance grid: all `fanout` replies of a
/// burst are released at the same instant toward one aggregator, and
/// burst `b+1` fires only when burst `b`'s *slowest* reply has landed —
/// the partition–aggregate pattern where the application waits on the
/// straggler. Flow ids are dense (`burst × fanout + i`, see
/// [`IncastCfg::flow_id`]) so checkers can reconstruct bursts from
/// records alone. Aggregator and workers are drawn per burst from a
/// seeded [`SimRng`]; workers always sit under racks other than the
/// aggregator's.
pub struct IncastDriver {
    cfg: IncastCfg,
    rng: SimRng,
    n_leaves: usize,
    hosts_per_leaf: usize,
    /// Burst currently in flight (== `cfg.bursts` once done).
    burst: usize,
    /// Replies of the in-flight burst not yet completed.
    outstanding: usize,
    /// Release time of each burst fired so far.
    burst_starts: Vec<Time>,
}

impl IncastDriver {
    pub fn new(topo: &Topology, cfg: IncastCfg, rng: SimRng) -> IncastDriver {
        assert!(topo.n_leaves >= 2, "incast needs at least 2 racks");
        assert!(cfg.fanout >= 1 && cfg.reply_bytes >= 1 && cfg.bursts >= 1);
        assert!(
            cfg.fanout <= (topo.n_leaves - 1) * topo.hosts_per_leaf,
            "fanout {} exceeds cross-rack host count",
            cfg.fanout
        );
        IncastDriver {
            cfg,
            rng,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            burst: 0,
            outstanding: 0,
            burst_starts: Vec::with_capacity(cfg.bursts),
        }
    }

    fn burst_flows(&mut self, burst: usize, now: Time) -> Vec<FlowSpec> {
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let agg = self.rng.below(n_hosts);
        let agg_leaf = agg / self.hosts_per_leaf;
        (0..self.cfg.fanout)
            .map(|i| {
                // A worker under a different rack (workers may repeat:
                // a host can serve several shards of the same query).
                let leaf = {
                    let r = self.rng.below(self.n_leaves - 1);
                    if r >= agg_leaf {
                        r + 1
                    } else {
                        r
                    }
                };
                let worker = leaf * self.hosts_per_leaf + self.rng.below(self.hosts_per_leaf);
                FlowSpec {
                    id: self.cfg.flow_id(burst, i),
                    src: HostId(worker as u32),
                    dst: HostId(agg as u32),
                    size: self.cfg.reply_bytes,
                    start: now,
                }
            })
            .collect()
    }

    /// Release times of the bursts fired so far.
    pub fn burst_starts(&self) -> &[Time] {
        &self.burst_starts
    }
}

impl FlowDriver for IncastDriver {
    fn initial(&mut self, now: Time) -> Vec<FlowSpec> {
        self.burst = 0;
        self.outstanding = self.cfg.fanout;
        self.burst_starts.clear();
        self.burst_starts.push(now);
        self.burst_flows(0, now)
    }

    fn on_flow_completed(&mut self, id: FlowId, now: Time, out: &mut Vec<FlowSpec>) {
        if id.0 >= (self.cfg.fanout * self.cfg.bursts) as u64 || self.burst >= self.cfg.bursts {
            return; // not ours
        }
        let (burst, _i) = self.cfg.decode(id);
        debug_assert_eq!(burst, self.burst, "completion from a burst not in flight");
        self.outstanding -= 1;
        if self.outstanding > 0 {
            return;
        }
        // The straggler landed: the burst has drained.
        if hermes_telemetry::enabled() {
            hermes_telemetry::emit_with(now, || hermes_telemetry::Record::IncastBurst {
                burst: self.burst as u32,
                fanout: self.cfg.fanout as u32,
                reply_bytes: self.cfg.reply_bytes,
            });
        }
        self.burst += 1;
        if self.burst < self.cfg.bursts {
            self.outstanding = self.cfg.fanout;
            self.burst_starts.push(now);
            let next = self.burst_flows(self.burst, now);
            out.extend(next);
        }
    }
}

/// Query completion time: the finish of the *last* reply, or `None`
/// if any reply is unfinished.
pub fn query_completion(q: &Query, records: &[FlowRecord]) -> Option<Time> {
    let mut worst: Option<Time> = None;
    for id in &q.flows {
        let rec = records.iter().find(|r| r.id == *id)?;
        let f = rec.finish?;
        worst = Some(worst.map_or(f, |w: Time| w.max(f)));
    }
    worst.map(|w| w - q.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::Topology;

    fn gen() -> IncastGen {
        IncastGen::new(
            &Topology::sim_baseline(),
            8,
            64_000,
            Time::from_ms(1),
            SimRng::new(4),
        )
    }

    #[test]
    fn queries_have_cross_rack_workers() {
        let mut g = gen();
        for _ in 0..50 {
            let (q, specs) = g.next_query();
            assert_eq!(specs.len(), 8);
            assert_eq!(q.flows.len(), 8);
            let agg_leaf = q.aggregator.0 / 16;
            for s in &specs {
                assert_eq!(s.dst, q.aggregator);
                assert_ne!(s.src.0 / 16, agg_leaf, "worker in aggregator's rack");
                assert_eq!(s.size, 64_000);
                assert_eq!(s.start, q.start);
            }
        }
    }

    #[test]
    fn queries_are_periodic_with_unique_flow_ids() {
        let mut g = gen();
        let (queries, specs) = g.schedule(10);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(q.start, Time::from_ms(1 + i as u64));
        }
        let mut ids: Vec<u64> = specs.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 80);
    }

    #[test]
    fn qct_is_the_slowest_reply() {
        let mut g = gen();
        let (q, specs) = g.next_query();
        let records: Vec<FlowRecord> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| FlowRecord {
                id: s.id,
                src: s.src,
                dst: s.dst,
                size: s.size,
                start: s.start,
                finish: Some(s.start + Time::from_us(100 + i as u64 * 50)),
            })
            .collect();
        let qct = query_completion(&q, &records).unwrap();
        assert_eq!(qct, Time::from_us(100 + 7 * 50));
    }

    fn driver() -> IncastDriver {
        IncastDriver::new(
            &Topology::sim_baseline(),
            IncastCfg {
                fanout: 6,
                reply_bytes: 32_000,
                bursts: 3,
            },
            SimRng::new(9),
        )
    }

    #[test]
    fn driver_bursts_are_synchronized_and_cross_rack() {
        let mut d = driver();
        let burst0 = d.initial(Time::ZERO);
        assert_eq!(burst0.len(), 6);
        let agg = burst0[0].dst;
        for (i, f) in burst0.iter().enumerate() {
            assert_eq!(f.id, FlowId(i as u64));
            assert_eq!(f.dst, agg, "all replies converge on one aggregator");
            assert_ne!(f.src.0 / 16, agg.0 / 16, "worker in aggregator's rack");
            assert_eq!(f.size, 32_000);
            assert_eq!(f.start, Time::ZERO, "replies must be synchronized");
        }
    }

    #[test]
    fn driver_releases_next_burst_on_straggler() {
        let mut d = driver();
        let burst0 = d.initial(Time::ZERO);
        let mut out = Vec::new();
        for f in burst0.iter().take(5) {
            d.on_flow_completed(f.id, Time::from_us(50), &mut out);
            assert!(out.is_empty(), "released before the straggler landed");
        }
        d.on_flow_completed(burst0[5].id, Time::from_us(90), &mut out);
        assert_eq!(out.len(), 6);
        for (i, f) in out.iter().enumerate() {
            assert_eq!(f.id, FlowId((6 + i) as u64));
            assert_eq!(f.start, Time::from_us(90));
        }
        assert_eq!(d.burst_starts(), &[Time::ZERO, Time::from_us(90)]);
    }

    #[test]
    fn driver_stops_after_last_burst() {
        let mut d = driver();
        let mut flows = d.initial(Time::ZERO);
        let mut t = Time::ZERO;
        for _ in 0..3 {
            t += Time::from_us(100);
            let mut out = Vec::new();
            for f in &flows {
                d.on_flow_completed(f.id, t, &mut out);
            }
            flows = out;
        }
        assert!(flows.is_empty(), "no burst after the configured count");
        assert_eq!(d.burst_starts().len(), 3);
    }

    #[test]
    fn unfinished_reply_means_no_qct() {
        let mut g = gen();
        let (q, specs) = g.next_query();
        let mut records: Vec<FlowRecord> = specs
            .iter()
            .map(|s| FlowRecord {
                id: s.id,
                src: s.src,
                dst: s.dst,
                size: s.size,
                start: s.start,
                finish: Some(s.start + Time::from_us(100)),
            })
            .collect();
        records[3].finish = None;
        assert!(query_completion(&q, &records).is_none());
    }
}
