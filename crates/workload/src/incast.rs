//! Partition–aggregate ("incast") workload.
//!
//! The paper's §6 notes Hermes "does not directly handle microbursts"
//! (it needs at least an RTT to sense); DRILL is built for exactly
//! that regime. This generator produces the classic incast pattern
//! from the DCTCP paper: an aggregator fans a query out to `fanout`
//! workers under *other* racks, each replies with `reply_bytes`
//! simultaneously, and the query completes when the last reply lands —
//! so the metric is query completion time (QCT), dominated by the
//! slowest flow.

use hermes_net::{FlowId, HostId, Topology};
use hermes_sim::{SimRng, Time};

use crate::flowgen::FlowSpec;
use crate::metrics::FlowRecord;

/// One query: `fanout` synchronized reply flows toward one aggregator.
#[derive(Clone, Debug)]
pub struct Query {
    pub aggregator: HostId,
    /// Flow ids of the replies (all must finish for the query to).
    pub flows: Vec<FlowId>,
    pub start: Time,
}

/// Generates periodic incast queries.
pub struct IncastGen {
    rng: SimRng,
    fanout: usize,
    reply_bytes: u64,
    period: Time,
    n_leaves: usize,
    hosts_per_leaf: usize,
    next_id: u64,
    clock: Time,
}

impl IncastGen {
    /// `fanout` workers × `reply_bytes` per query, one query per
    /// `period`. Workers are drawn from racks other than the
    /// aggregator's.
    pub fn new(
        topo: &Topology,
        fanout: usize,
        reply_bytes: u64,
        period: Time,
        rng: SimRng,
    ) -> IncastGen {
        assert!(topo.n_leaves >= 2, "incast needs at least 2 racks");
        assert!(fanout >= 1 && reply_bytes >= 1);
        IncastGen {
            rng,
            fanout,
            reply_bytes,
            period,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            next_id: 0,
            clock: Time::ZERO,
        }
    }

    /// Produce the next query and its reply-flow specs.
    pub fn next_query(&mut self) -> (Query, Vec<FlowSpec>) {
        self.clock += self.period;
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let agg = self.rng.below(n_hosts);
        let agg_leaf = agg / self.hosts_per_leaf;
        let mut flows = Vec::with_capacity(self.fanout);
        let mut specs = Vec::with_capacity(self.fanout);
        for _ in 0..self.fanout {
            // A worker under a different rack.
            let leaf = {
                let r = self.rng.below(self.n_leaves - 1);
                if r >= agg_leaf {
                    r + 1
                } else {
                    r
                }
            };
            let worker = leaf * self.hosts_per_leaf + self.rng.below(self.hosts_per_leaf);
            let id = FlowId(self.next_id);
            self.next_id += 1;
            flows.push(id);
            specs.push(FlowSpec {
                id,
                src: HostId(worker as u32),
                dst: HostId(agg as u32),
                size: self.reply_bytes,
                start: self.clock,
            });
        }
        (
            Query {
                aggregator: HostId(agg as u32),
                flows,
                start: self.clock,
            },
            specs,
        )
    }

    /// Generate `n` queries; returns (queries, all flow specs).
    pub fn schedule(&mut self, n: usize) -> (Vec<Query>, Vec<FlowSpec>) {
        let mut queries = Vec::with_capacity(n);
        let mut specs = Vec::new();
        for _ in 0..n {
            let (q, s) = self.next_query();
            queries.push(q);
            specs.extend(s);
        }
        (queries, specs)
    }
}

/// Query completion time: the finish of the *last* reply, or `None`
/// if any reply is unfinished.
pub fn query_completion(q: &Query, records: &[FlowRecord]) -> Option<Time> {
    let mut worst: Option<Time> = None;
    for id in &q.flows {
        let rec = records.iter().find(|r| r.id == *id)?;
        let f = rec.finish?;
        worst = Some(worst.map_or(f, |w: Time| w.max(f)));
    }
    worst.map(|w| w - q.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::Topology;

    fn gen() -> IncastGen {
        IncastGen::new(
            &Topology::sim_baseline(),
            8,
            64_000,
            Time::from_ms(1),
            SimRng::new(4),
        )
    }

    #[test]
    fn queries_have_cross_rack_workers() {
        let mut g = gen();
        for _ in 0..50 {
            let (q, specs) = g.next_query();
            assert_eq!(specs.len(), 8);
            assert_eq!(q.flows.len(), 8);
            let agg_leaf = q.aggregator.0 / 16;
            for s in &specs {
                assert_eq!(s.dst, q.aggregator);
                assert_ne!(s.src.0 / 16, agg_leaf, "worker in aggregator's rack");
                assert_eq!(s.size, 64_000);
                assert_eq!(s.start, q.start);
            }
        }
    }

    #[test]
    fn queries_are_periodic_with_unique_flow_ids() {
        let mut g = gen();
        let (queries, specs) = g.schedule(10);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(q.start, Time::from_ms(1 + i as u64));
        }
        let mut ids: Vec<u64> = specs.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 80);
    }

    #[test]
    fn qct_is_the_slowest_reply() {
        let mut g = gen();
        let (q, specs) = g.next_query();
        let records: Vec<FlowRecord> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| FlowRecord {
                id: s.id,
                src: s.src,
                dst: s.dst,
                size: s.size,
                start: s.start,
                finish: Some(s.start + Time::from_us(100 + i as u64 * 50)),
            })
            .collect();
        let qct = query_completion(&q, &records).unwrap();
        assert_eq!(qct, Time::from_us(100 + 7 * 50));
    }

    #[test]
    fn unfinished_reply_means_no_qct() {
        let mut g = gen();
        let (q, specs) = g.next_query();
        let mut records: Vec<FlowRecord> = specs
            .iter()
            .map(|s| FlowRecord {
                id: s.id,
                src: s.src,
                dst: s.dst,
                size: s.size,
                start: s.start,
                finish: Some(s.start + Time::from_us(100)),
            })
            .collect();
        records[3].finish = None;
        assert!(query_completion(&q, &records).is_none());
    }
}
