//! Open-loop Poisson flow generation, following the paper's methodology
//! (§5.1): "flows between random senders and receivers under different
//! leaf switches according to Poisson processes with varying traffic
//! loads", using the flow generator of [8].

use hermes_net::{FlowId, HostId, Topology};
use hermes_sim::{SimRng, Time};

use crate::dist::FlowSizeDist;

/// One generated flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    pub id: FlowId,
    pub src: HostId,
    pub dst: HostId,
    /// Payload bytes.
    pub size: u64,
    /// Arrival (start) time.
    pub start: Time,
}

/// Poisson open-loop generator of inter-rack flows.
///
/// Offered load is defined against the fabric's aggregate live uplink
/// capacity (the standard convention for leaf-spine evaluations): the
/// fabric-wide flow arrival rate is
/// `λ = load × Σ(uplink bps) / (8 × E[flow size])`.
pub struct FlowGen {
    rng: SimRng,
    dist: FlowSizeDist,
    /// Mean inter-arrival time in seconds.
    mean_iat_s: f64,
    n_leaves: usize,
    hosts_per_leaf: usize,
    next_id: u64,
    clock: Time,
}

impl FlowGen {
    /// A generator for `topo` at offered `load ∈ (0, 1]` (relative to
    /// the *symmetric* fabric's uplink capacity if `capacity_bps` is
    /// given, else the topology's current live capacity).
    pub fn new(
        topo: &Topology,
        dist: FlowSizeDist,
        load: f64,
        capacity_bps: Option<u64>,
        rng: SimRng,
    ) -> FlowGen {
        assert!(load > 0.0 && load <= 1.5, "load {load} out of range");
        assert!(topo.n_leaves >= 2, "inter-rack workload needs ≥2 racks");
        let cap = capacity_bps.unwrap_or_else(|| topo.total_uplink_bps()) as f64;
        let mean_size_bits = dist.mean_bytes() * 8.0;
        let lambda = load * cap / mean_size_bits; // flows per second
        FlowGen {
            rng,
            dist,
            mean_iat_s: 1.0 / lambda,
            n_leaves: topo.n_leaves,
            hosts_per_leaf: topo.hosts_per_leaf,
            next_id: 0,
            clock: Time::ZERO,
        }
    }

    /// Fabric-wide arrival rate (flows per second).
    pub fn lambda(&self) -> f64 {
        1.0 / self.mean_iat_s
    }

    /// Generate the next flow: exponential inter-arrival, uniform random
    /// sender, uniform random receiver under a *different* leaf.
    pub fn next_flow(&mut self) -> FlowSpec {
        let dt = self.rng.exp(self.mean_iat_s);
        self.clock += Time::from_secs_f64(dt);
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let src = self.rng.below(n_hosts);
        let src_leaf = src / self.hosts_per_leaf;
        // Receiver under a different leaf, uniform over the rest.
        let other_leaf = {
            let r = self.rng.below(self.n_leaves - 1);
            if r >= src_leaf {
                r + 1
            } else {
                r
            }
        };
        let dst = other_leaf * self.hosts_per_leaf + self.rng.below(self.hosts_per_leaf);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        FlowSpec {
            id,
            src: HostId(src as u32),
            dst: HostId(dst as u32),
            size: self.dist.sample(&mut self.rng),
            start: self.clock,
        }
    }

    /// Generate a fixed-count schedule.
    pub fn schedule(&mut self, n: usize) -> Vec<FlowSpec> {
        (0..n).map(|_| self.next_flow()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(load: f64) -> FlowGen {
        FlowGen::new(
            &Topology::sim_baseline(),
            FlowSizeDist::web_search(),
            load,
            None,
            SimRng::new(77),
        )
    }

    #[test]
    fn flows_are_inter_rack_and_increasing_in_time() {
        let mut g = gen(0.5);
        let mut last = Time::ZERO;
        for _ in 0..5000 {
            let f = g.next_flow();
            assert_ne!(f.src, f.dst);
            assert_ne!(f.src.0 / 16, f.dst.0 / 16, "must cross racks");
            assert!(f.start >= last);
            last = f.start;
            assert!(f.size >= 1);
        }
    }

    #[test]
    fn offered_load_matches_request() {
        // Empirical offered rate = Σ size / horizon should be ≈ load × capacity.
        let mut g = gen(0.6);
        let flows = g.schedule(60_000);
        let horizon = flows.last().unwrap().start.as_secs_f64();
        let bits: f64 = flows.iter().map(|f| f.size as f64 * 8.0).sum();
        let offered = bits / horizon;
        let want = 0.6 * Topology::sim_baseline().total_uplink_bps() as f64;
        assert!(
            (offered - want).abs() / want < 0.07,
            "offered {offered:.3e} want {want:.3e}"
        );
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let mut g = gen(0.3);
        let flows = g.schedule(100);
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(i as u64));
        }
    }

    #[test]
    fn explicit_capacity_overrides_live_capacity() {
        // Asymmetric runs keep the load defined against the healthy
        // fabric (as the paper does): same λ regardless of degradation.
        let topo = Topology::sim_baseline();
        let healthy_cap = topo.total_uplink_bps();
        let mut degraded = topo.clone();
        let mut rng = SimRng::new(3);
        degraded.degrade_random_links(0.2, 2_000_000_000, &mut rng);
        let g1 = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.5, None, SimRng::new(1));
        let g2 = FlowGen::new(
            &degraded,
            FlowSizeDist::web_search(),
            0.5,
            Some(healthy_cap),
            SimRng::new(1),
        );
        assert!((g1.lambda() - g2.lambda()).abs() < 1e-9);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let mut a = gen(0.4);
        let mut b = gen(0.4);
        for _ in 0..100 {
            let fa = a.next_flow();
            let fb = b.next_flow();
            assert_eq!(fa.src, fb.src);
            assert_eq!(fa.dst, fb.dst);
            assert_eq!(fa.size, fb.size);
            assert_eq!(fa.start, fb.start);
        }
    }
}
