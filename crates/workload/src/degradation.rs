//! Degradation metrics over a goodput timeline.
//!
//! The transient-failure experiments (blackhole onset at t₁, clear at
//! t₂) are judged on *how* a scheme degrades, not just final FCTs:
//! how far goodput dips, how quickly the dip appears after onset, and
//! how long until goodput is back at its pre-fault baseline. This
//! module turns a cumulative goodput series — as recorded by the
//! runtime's `TotalGoodput` sampler — into those numbers.
//!
//! All rates are computed per sampling bin (Δbytes·8/Δt), so the
//! sampler interval sets the resolution; bins are left-labelled by
//! their start time.

use hermes_sim::Time;

/// Thresholds for calling a dip and a recovery.
#[derive(Clone, Copy, Debug)]
pub struct DegradationCfg {
    /// A bin below `dip_frac × baseline` counts as degraded.
    pub dip_frac: f64,
    /// A bin at or above `recover_frac × baseline` counts as recovered.
    pub recover_frac: f64,
    /// Consecutive recovered bins required before recovery is declared
    /// (filters a single lucky bin during the outage).
    pub sustain_bins: usize,
}

impl Default for DegradationCfg {
    fn default() -> DegradationCfg {
        DegradationCfg {
            dip_frac: 0.9,
            recover_frac: 0.9,
            sustain_bins: 3,
        }
    }
}

/// What a fault window did to a scheme's goodput.
#[derive(Clone, Copy, Debug)]
pub struct DegradationReport {
    /// Mean goodput over the bins fully before onset (bits/s).
    pub baseline_bps: f64,
    /// Lowest per-bin goodput at or after onset (bits/s).
    pub dip_min_bps: f64,
    /// Onset → first degraded bin (None: no bin ever dipped).
    pub time_to_impact: Option<Time>,
    /// Onset → start of the first sustained recovered run after the
    /// impact (None: no impact, or never recovered within the series).
    pub time_to_recover: Option<Time>,
    /// Flows stranded across the fault window (caller-supplied; the
    /// runtime knows which flows started before the clear and never
    /// finished).
    pub stranded: usize,
}

impl DegradationReport {
    /// `dip_min_bps / baseline_bps`, clamped to `[0, 1]` and safe when
    /// the baseline is zero.
    ///
    /// A fuzzer-generated plan can put the fault onset before any
    /// goodput flowed (or the probe series can be empty), making the
    /// baseline 0 — the naive ratio is then 0/0 = NaN, which poisons
    /// every comparison downstream. With no baseline there is no
    /// measurable dip, so this reports 1.0 ("goodput at baseline").
    pub fn dip_fraction(&self) -> f64 {
        if self.baseline_bps > 0.0 {
            (self.dip_min_bps / self.baseline_bps).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }
}

/// Analyze a cumulative goodput series against a fault `onset` time.
///
/// `series` is `(sample time, cumulative bytes)` in time order, as a
/// `TotalGoodput` sampler records it. Needs at least one full bin
/// before `onset` to establish a baseline; with no pre-onset bins the
/// baseline is 0 and no impact can be detected (see
/// [`DegradationReport::dip_fraction`] for the safe ratio).
///
/// An `onset` at or past the last sample — a fault window extending
/// beyond the probe timeline, which sampled chaos plans routinely
/// produce — is clamped to the series' end: the baseline covers every
/// complete bin, there are no post-onset bins to judge, and the report
/// degenerates to "no impact observed" instead of fabricating a dip
/// from an empty window.
pub fn degradation_report(
    series: &[(Time, u64)],
    onset: Time,
    cfg: &DegradationCfg,
    stranded: usize,
) -> DegradationReport {
    // Clamp a fault window that extends past the probe timeline.
    let onset = onset.min(series.last().map_or(Time::ZERO, |&(t, _)| t));
    // Per-bin rates: (bin start, bin end, bits/s).
    let bins: Vec<(Time, Time, f64)> = series
        .windows(2)
        .filter_map(|w| {
            let (t0, b0) = w[0];
            let (t1, b1) = w[1];
            let dt = t1.saturating_sub(t0);
            if dt == Time::ZERO {
                return None;
            }
            let bps = (b1.saturating_sub(b0) * 8) as f64 / dt.as_secs_f64();
            Some((t0, t1, bps))
        })
        .collect();
    // Baseline over bins fully before onset; the bin straddling onset
    // belongs to neither side.
    let pre: Vec<f64> = bins
        .iter()
        .filter(|&&(_, end, _)| end <= onset)
        .map(|&(_, _, r)| r)
        .collect();
    let baseline = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    };
    let post: Vec<(Time, f64)> = bins
        .iter()
        .filter(|&&(start, _, _)| start >= onset)
        .map(|&(start, _, r)| (start, r))
        .collect();
    let dip_min = post
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min)
        .min(baseline);
    let impact_idx = post
        .iter()
        .position(|&(_, r)| baseline > 0.0 && r < cfg.dip_frac * baseline);
    let time_to_impact = impact_idx.map(|i| post[i].0.saturating_sub(onset));
    let time_to_recover = impact_idx.and_then(|i| {
        let mut run = 0usize;
        for (j, &(_, r)) in post.iter().enumerate().skip(i) {
            if r >= cfg.recover_frac * baseline {
                run += 1;
                if run >= cfg.sustain_bins {
                    return Some(post[j + 1 - run].0.saturating_sub(onset));
                }
            } else {
                run = 0;
            }
        }
        None
    });
    DegradationReport {
        baseline_bps: baseline,
        dip_min_bps: if dip_min.is_finite() { dip_min } else { 0.0 },
        time_to_impact,
        time_to_recover,
        stranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a cumulative series from per-bin rates (1 ms bins,
    /// rate expressed in bytes per bin).
    fn series(rates_bytes_per_ms: &[u64]) -> Vec<(Time, u64)> {
        let mut out = vec![(Time::ZERO, 0u64)];
        let mut total = 0u64;
        for (i, &r) in rates_bytes_per_ms.iter().enumerate() {
            total += r;
            out.push((Time::from_ms(i as u64 + 1), total));
        }
        out
    }

    #[test]
    fn detects_dip_and_recovery() {
        // 5 bins at 100, 4 bins at 10 (fault), 5 bins at 100 again.
        let s = series(&[
            100, 100, 100, 100, 100, 10, 10, 10, 10, 100, 100, 100, 100, 100,
        ]);
        let onset = Time::from_ms(5);
        let rep = degradation_report(&s, onset, &DegradationCfg::default(), 0);
        let per_bin = 100.0 * 8.0 / 1e-3; // bytes per ms → bits/s
        assert!((rep.baseline_bps - per_bin).abs() / per_bin < 1e-9);
        assert!(rep.dip_min_bps < 0.2 * rep.baseline_bps);
        // Impact in the first faulty bin.
        assert_eq!(rep.time_to_impact, Some(Time::ZERO));
        // Recovery at bin 9 (4 ms after onset), sustained 3 bins.
        assert_eq!(rep.time_to_recover, Some(Time::from_ms(4)));
    }

    #[test]
    fn single_good_bin_during_outage_is_not_recovery() {
        let s = series(&[100, 100, 100, 100, 10, 10, 100, 10, 10, 100, 100, 100]);
        let onset = Time::from_ms(4);
        let rep = degradation_report(&s, onset, &DegradationCfg::default(), 0);
        // The lone good bin at index 6 must not count; the sustained run
        // starts at bin 9 (5 ms after onset).
        assert_eq!(rep.time_to_recover, Some(Time::from_ms(5)));
    }

    #[test]
    fn no_dip_means_no_impact_or_recovery() {
        let s = series(&[100, 100, 100, 100, 98, 97, 99, 100]);
        let rep = degradation_report(&s, Time::from_ms(4), &DegradationCfg::default(), 2);
        assert!(rep.time_to_impact.is_none());
        assert!(rep.time_to_recover.is_none());
        assert_eq!(rep.stranded, 2);
    }

    #[test]
    fn unrecovered_outage_reports_impact_only() {
        let s = series(&[100, 100, 100, 100, 5, 5, 5, 5]);
        let rep = degradation_report(&s, Time::from_ms(4), &DegradationCfg::default(), 0);
        assert_eq!(rep.time_to_impact, Some(Time::ZERO));
        assert!(rep.time_to_recover.is_none());
    }

    #[test]
    fn zero_baseline_dip_fraction_is_not_nan() {
        // All goodput arrives after onset: baseline 0.
        let s = series(&[0, 0, 100, 100]);
        let rep = degradation_report(&s, Time::from_ms(2), &DegradationCfg::default(), 0);
        assert_eq!(rep.baseline_bps, 0.0);
        assert!(!rep.dip_fraction().is_nan(), "0/0 must not leak out");
        assert_eq!(rep.dip_fraction(), 1.0, "no baseline ⇒ no measurable dip");
        // Empty series: same guarantee.
        let rep = degradation_report(&[], Time::ZERO, &DegradationCfg::default(), 0);
        assert_eq!(rep.dip_fraction(), 1.0);
        // With a real baseline the fraction is the plain clamped ratio.
        let s = series(&[100, 100, 100, 100, 50, 50, 50]);
        let rep = degradation_report(&s, Time::from_ms(4), &DegradationCfg::default(), 0);
        assert!((rep.dip_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn onset_past_the_probe_timeline_is_clamped() {
        let s = series(&[100, 100, 100, 100]);
        let beyond = degradation_report(&s, Time::from_secs(999), &DegradationCfg::default(), 0);
        // Clamped to the series end: full-series baseline, no post bins,
        // no fabricated impact, dip reported at baseline.
        let at_end = degradation_report(&s, Time::from_ms(4), &DegradationCfg::default(), 0);
        assert_eq!(beyond.baseline_bps, at_end.baseline_bps);
        assert!(beyond.baseline_bps > 0.0);
        assert_eq!(beyond.dip_min_bps, beyond.baseline_bps);
        assert!(beyond.time_to_impact.is_none());
        assert!(beyond.time_to_recover.is_none());
        assert_eq!(beyond.dip_fraction(), 1.0);
    }

    #[test]
    fn empty_or_preonset_free_series_is_harmless() {
        let rep = degradation_report(&[], Time::from_ms(1), &DegradationCfg::default(), 0);
        assert_eq!(rep.baseline_bps, 0.0);
        assert!(rep.time_to_impact.is_none());
        // All samples after onset: baseline 0, nothing detectable.
        let s = series(&[50, 50]);
        let rep = degradation_report(&s, Time::ZERO, &DegradationCfg::default(), 0);
        assert_eq!(rep.baseline_bps, 0.0);
        assert!(rep.time_to_impact.is_none());
    }
}
