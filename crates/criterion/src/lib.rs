//! Minimal offline stand-in for the [`criterion`] benchmark harness.
//!
//! The workspace builds in an air-gapped environment with no registry
//! access, so this crate implements the small surface
//! `benches/microbench.rs` uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with [`BenchmarkGroup::sample_size`]),
//! the [`Bencher::iter`] timing loop, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is mean-of-samples wall time
//! with a short warm-up — adequate for spotting order-of-magnitude
//! regressions, without criterion's statistical machinery.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample timing loop handed to a benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`, keeping each result alive
    /// so the optimizer cannot elide the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Calibrate an iteration count (~5 ms per sample), collect
/// `sample_size` samples, and print a one-line summary.
fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up + calibration: grow iters until one sample takes >= 5 ms
    // (or a single iteration is already slower than that).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mid = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(mid),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_sample_size_floor() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
