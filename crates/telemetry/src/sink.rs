//! The trace sink: a bounded ring buffer of [`TraceEvent`]s plus the
//! metrics registry, installed per thread.
//!
//! # Determinism contract (DESIGN.md §12)
//!
//! The sink is an *observer*: it never schedules events, never touches
//! any RNG, and never influences control flow in the instrumented
//! crates. Records are stamped with sim time and a monotonically
//! increasing per-sink sequence number assigned in dispatch order, so
//! a `(config, seed)` pair maps to exactly one byte sequence of
//! exported JSONL. There is deliberately no wall-clock anywhere in
//! this crate — the xtask determinism lint covers it like every other
//! sim-facing crate.
//!
//! # Zero overhead when off
//!
//! Without the `on` feature every public function here is an empty
//! `#[inline]` shim: `enabled()` is a compile-time `false`, so
//! instrumentation guarded by `if hermes_telemetry::enabled()` folds
//! away entirely, and `emit_with` never constructs its record closure.
//! The sink is thread-local so the testkit's multi-threaded scenario
//! grid keeps per-cell traces independent.

use hermes_sim::Time;

use crate::record::{Record, TraceEvent};

/// Sink configuration.
#[derive(Clone, Copy, Debug)]
pub struct SinkConfig {
    /// Ring capacity in events; the oldest events are dropped (and
    /// counted) once the buffer is full.
    pub capacity: usize,
    /// Sim-time cadence for metrics snapshots and queue sampling.
    pub metrics_cadence: Time,
}

impl Default for SinkConfig {
    fn default() -> SinkConfig {
        SinkConfig {
            capacity: 1 << 20,
            metrics_cadence: Time::from_ms(1),
        }
    }
}

/// Whether the telemetry layer was compiled in (`on` feature).
#[inline(always)]
pub fn compiled() -> bool {
    cfg!(feature = "on")
}

#[cfg(feature = "on")]
mod imp {
    use std::cell::RefCell;
    use std::collections::VecDeque;

    use hermes_sim::Time;

    use super::SinkConfig;
    use crate::metrics::{Metrics, MetricsRow};
    use crate::record::{Record, TraceEvent};

    pub struct SinkState {
        cfg: SinkConfig,
        ring: VecDeque<TraceEvent>,
        next_seq: u64,
        dropped: u64,
        next_cadence: Time,
        metrics: Metrics,
    }

    thread_local! {
        static SINK: RefCell<Option<SinkState>> = const { RefCell::new(None) };
    }

    pub fn install(cfg: SinkConfig) {
        SINK.with(|s| {
            *s.borrow_mut() = Some(SinkState {
                cfg,
                ring: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
                next_cadence: Time::ZERO,
                metrics: Metrics::default(),
            });
        });
    }

    pub fn uninstall() {
        SINK.with(|s| *s.borrow_mut() = None);
    }

    pub fn installed() -> bool {
        SINK.with(|s| s.borrow().is_some())
    }

    pub fn emit(at: Time, record: Record) {
        SINK.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                if st.ring.len() >= st.cfg.capacity {
                    st.ring.pop_front();
                    st.dropped += 1;
                }
                let seq = st.next_seq;
                st.next_seq += 1;
                st.ring.push_back(TraceEvent { seq, at, record });
            }
        });
    }

    pub fn on_cadence(now: Time) -> bool {
        SINK.with(|s| {
            let mut b = s.borrow_mut();
            let Some(st) = b.as_mut() else { return false };
            if now < st.next_cadence {
                return false;
            }
            // Advance to the first boundary strictly past `now` without
            // looping per elapsed period (faults can idle the clock).
            let period = st.cfg.metrics_cadence.as_ns().max(1);
            let next = (now.as_ns() / period + 1) * period;
            st.next_cadence = Time::from_ns(next);
            true
        })
    }

    pub fn with_metrics<R>(f: impl FnOnce(&mut Metrics) -> R) -> Option<R> {
        SINK.with(|s| s.borrow_mut().as_mut().map(|st| f(&mut st.metrics)))
    }

    pub fn drain() -> Vec<TraceEvent> {
        SINK.with(|s| {
            s.borrow_mut()
                .as_mut()
                .map(|st| st.ring.drain(..).collect())
                .unwrap_or_default()
        })
    }

    pub fn take_metric_rows() -> Vec<MetricsRow> {
        with_metrics(Metrics::take_rows).unwrap_or_default()
    }

    pub fn dropped() -> u64 {
        SINK.with(|s| s.borrow().as_ref().map_or(0, |st| st.dropped))
    }
}

// ---------------------------------------------------------------------
// Public API. With the feature off these are empty inline shims.
// ---------------------------------------------------------------------

/// Install a fresh sink on this thread, replacing any previous one.
/// No-op when the layer is compiled out.
#[inline]
pub fn install(cfg: SinkConfig) {
    #[cfg(feature = "on")]
    imp::install(cfg);
    #[cfg(not(feature = "on"))]
    let _ = cfg;
}

/// Remove this thread's sink, discarding buffered events.
#[inline]
pub fn uninstall() {
    #[cfg(feature = "on")]
    imp::uninstall();
}

/// Whether a sink is installed on this thread *and* the layer is
/// compiled in. The `if enabled()` guard at every instrumentation site
/// is a constant `false` in off builds, so the whole site folds away.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "on")]
    {
        imp::installed()
    }
    #[cfg(not(feature = "on"))]
    {
        false
    }
}

/// Emit one record stamped `at`; the closure is only evaluated when a
/// sink is installed, so record construction costs nothing otherwise.
#[inline]
pub fn emit_with<F: FnOnce() -> Record>(at: Time, f: F) {
    #[cfg(feature = "on")]
    {
        if imp::installed() {
            imp::emit(at, f());
        }
    }
    #[cfg(not(feature = "on"))]
    let _ = (at, f);
}

/// Lazy cadence check: true when `now` reached the next metrics
/// boundary (which is then advanced past `now`). The sink never
/// schedules its own events — the runtime asks this question on its
/// existing dispatch path instead, keeping the event stream (and thus
/// the trace digest) identical to an uninstrumented run.
#[inline]
pub fn on_cadence(now: Time) -> bool {
    #[cfg(feature = "on")]
    {
        imp::on_cadence(now)
    }
    #[cfg(not(feature = "on"))]
    {
        let _ = now;
        false
    }
}

/// Add `v` to a named counter.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.counter_add(name, v));
    }
    #[cfg(not(feature = "on"))]
    let _ = (name, v);
}

/// Set a named gauge.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.gauge_set(name, v));
    }
    #[cfg(not(feature = "on"))]
    let _ = (name, v);
}

/// Observe `v` in a named fixed-bucket histogram (created with `edges`
/// on first use).
#[inline]
pub fn hist_observe(name: &'static str, edges: &'static [f64], v: f64) {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.hist_observe(name, edges, v));
    }
    #[cfg(not(feature = "on"))]
    let _ = (name, edges, v);
}

/// Snapshot all metrics into the sampled time series at `now`.
#[inline]
pub fn sample_metrics(now: Time) {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.sample(now));
    }
    #[cfg(not(feature = "on"))]
    let _ = now;
}

/// Take every buffered trace event (oldest first), leaving the sink
/// installed. Empty when the layer is off or no sink is installed.
#[inline]
pub fn drain() -> Vec<TraceEvent> {
    #[cfg(feature = "on")]
    {
        imp::drain()
    }
    #[cfg(not(feature = "on"))]
    {
        Vec::new()
    }
}

/// Take the cadence-sampled metrics rows accumulated so far.
#[inline]
pub fn take_metric_rows() -> Vec<crate::metrics::MetricsRow> {
    #[cfg(feature = "on")]
    {
        imp::take_metric_rows()
    }
    #[cfg(not(feature = "on"))]
    {
        Vec::new()
    }
}

/// Events dropped because the ring was full.
#[inline]
pub fn dropped() -> u64 {
    #[cfg(feature = "on")]
    {
        imp::dropped()
    }
    #[cfg(not(feature = "on"))]
    {
        0
    }
}

/// Read a live counter value (testing/inspection).
#[inline]
pub fn counter(name: &'static str) -> u64 {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.counter(name)).unwrap_or(0)
    }
    #[cfg(not(feature = "on"))]
    {
        let _ = name;
        0
    }
}

/// Clone a live histogram (testing/inspection).
#[inline]
pub fn hist(name: &'static str) -> Option<crate::metrics::Histogram> {
    #[cfg(feature = "on")]
    {
        imp::with_metrics(|m| m.hist(name).cloned()).flatten()
    }
    #[cfg(not(feature = "on"))]
    {
        let _ = name;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PathClass, Record};

    fn sample_record() -> Record {
        Record::PathTransition {
            leaf: 0,
            dst_leaf: 3,
            path: 0,
            from: PathClass::Good,
            to: PathClass::Failed,
        }
    }

    #[test]
    fn off_build_is_inert() {
        if compiled() {
            return;
        }
        install(SinkConfig::default());
        assert!(!enabled());
        emit_with(Time::from_us(1), sample_record);
        assert!(drain().is_empty());
        assert!(!on_cadence(Time::from_secs(1)));
    }

    #[test]
    fn emit_is_seq_ordered_and_closure_lazy() {
        if !compiled() {
            return;
        }
        uninstall();
        // Not installed: the closure must not run.
        emit_with(Time::ZERO, || panic!("closure ran without a sink"));
        install(SinkConfig::default());
        assert!(enabled());
        emit_with(Time::from_us(5), sample_record);
        emit_with(Time::from_us(5), sample_record);
        let evs = drain();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[1].seq), (0, 1));
        assert_eq!(evs[0].at, Time::from_us(5));
        uninstall();
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        if !compiled() {
            return;
        }
        install(SinkConfig {
            capacity: 2,
            ..SinkConfig::default()
        });
        for i in 0..5u64 {
            emit_with(Time::from_us(i), sample_record);
        }
        let evs = drain();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[1].seq), (3, 4), "oldest dropped first");
        assert_eq!(dropped(), 3);
        uninstall();
    }

    #[test]
    fn cadence_fires_once_per_boundary() {
        if !compiled() {
            return;
        }
        install(SinkConfig {
            metrics_cadence: Time::from_ms(1),
            ..SinkConfig::default()
        });
        assert!(on_cadence(Time::ZERO), "first call fires at t=0");
        assert!(!on_cadence(Time::from_us(10)), "within the same period");
        assert!(!on_cadence(Time::from_us(999)));
        assert!(on_cadence(Time::from_ms(1)), "boundary reached");
        // A long idle gap fires once, not once per elapsed period.
        assert!(on_cadence(Time::from_ms(50)));
        assert!(!on_cadence(Time::from_ms(50)));
        assert!(on_cadence(Time::from_ms(51)));
        uninstall();
    }

    #[test]
    fn metrics_roundtrip_through_the_sink() {
        if !compiled() {
            return;
        }
        install(SinkConfig::default());
        counter_add("pkts", 2);
        counter_add("pkts", 3);
        gauge_set("goodput", 1.5);
        hist_observe("fct", &[10.0, 100.0], 7.0);
        assert_eq!(counter("pkts"), 5);
        assert_eq!(hist("fct").unwrap().counts(), &[1, 0, 0]);
        sample_metrics(Time::from_ms(2));
        let rows = take_metric_rows();
        assert!(rows.iter().any(|r| r.name == "pkts" && r.value == 5.0));
        assert!(take_metric_rows().is_empty(), "rows were taken");
        uninstall();
    }
}
