//! Deterministic exporters: trace events to JSONL, sampled metrics to
//! CSV.
//!
//! Hand-rolled like every other serializer in this workspace (no serde
//! dependency). Field order is fixed per record kind and floats are
//! printed with Rust's shortest-roundtrip `Display`, so a given event
//! sequence maps to exactly one byte sequence — the determinism tests
//! compare exporter output byte-for-byte across same-seed runs.

use std::fmt::Write as _;

use crate::metrics::MetricsRow;
use crate::record::{Record, TraceEvent};

/// Format an `f64` as a JSON value (non-finite degrades to `null`;
/// instrumented quantities are always finite in practice).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One trace event as a single-line JSON object. Every line starts
/// with `seq`, `at_ns` and `kind`; the remaining fields depend on the
/// record kind and keep a fixed order.
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\"",
        ev.seq,
        ev.at.as_ns(),
        ev.record.kind()
    );
    match ev.record {
        Record::PathTransition {
            leaf,
            dst_leaf,
            path,
            from,
            to,
        } => {
            let _ = write!(
                s,
                ",\"leaf\":{leaf},\"dst_leaf\":{dst_leaf},\"path\":{path},\"from\":\"{}\",\"to\":\"{}\"",
                from.as_str(),
                to.as_str()
            );
        }
        Record::Reroute {
            flow,
            dst_leaf,
            from_path,
            to_path,
            verdict,
        } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"dst_leaf\":{dst_leaf},\"from_path\":{from_path},\"to_path\":{to_path},\"verdict\":\"{}\"",
                verdict.as_str()
            );
        }
        Record::EcnMark {
            leaf,
            spine,
            qbytes,
            flow,
        } => {
            let _ = write!(
                s,
                ",\"leaf\":{leaf},\"spine\":{spine},\"qbytes\":{qbytes},\"flow\":{flow}"
            );
        }
        Record::QueueSample {
            leaf,
            spine,
            up_qbytes,
            down_qbytes,
        } => {
            let _ = write!(
                s,
                ",\"leaf\":{leaf},\"spine\":{spine},\"up_qbytes\":{up_qbytes},\"down_qbytes\":{down_qbytes}"
            );
        }
        Record::CwndUpdate {
            flow,
            cwnd,
            alpha,
            rto_ns,
        } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"cwnd\":{},\"alpha\":{},\"rto_ns\":{rto_ns}",
                json_f64(cwnd),
                json_f64(alpha)
            );
        }
        Record::FlowStarted {
            flow,
            src,
            dst,
            size,
        } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"src\":{src},\"dst\":{dst},\"size\":{size}"
            );
        }
        Record::FlowCompleted { flow, fct_ns } => {
            let _ = write!(s, ",\"flow\":{flow},\"fct_ns\":{fct_ns}");
        }
        Record::PathChange {
            flow,
            from_path,
            to_path,
        } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"from_path\":{from_path},\"to_path\":{to_path}"
            );
        }
        Record::RingStep {
            step,
            ranks,
            chunk_bytes,
        } => {
            let _ = write!(
                s,
                ",\"step\":{step},\"ranks\":{ranks},\"chunk_bytes\":{chunk_bytes}"
            );
        }
        Record::IncastBurst {
            burst,
            fanout,
            reply_bytes,
        } => {
            let _ = write!(
                s,
                ",\"burst\":{burst},\"fanout\":{fanout},\"reply_bytes\":{reply_bytes}"
            );
        }
        Record::FaultApplied { kind } => {
            let _ = write!(s, ",\"fault\":\"{kind}\"");
        }
        Record::Drop { flow, path, reason } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"path\":{path},\"reason\":\"{}\"",
                reason.as_str()
            );
        }
    }
    s.push('}');
    s
}

/// Serialize events as JSON Lines: one object per line, trailing
/// newline after every line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Serialize sampled metrics rows as CSV with an `at_ns,name,value`
/// header. Metric names never contain commas or quotes (static
/// identifiers plus `{le=...}` suffixes), so no escaping is needed.
pub fn to_csv(rows: &[MetricsRow]) -> String {
    let mut out = String::from("at_ns,name,value\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{}", r.at.as_ns(), r.name, json_f64(r.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use hermes_sim::Time;

    use super::*;
    use crate::record::{DropReason, PathClass, Record, RerouteVerdict, TraceEvent};

    fn ev(seq: u64, record: Record) -> TraceEvent {
        TraceEvent {
            seq,
            at: Time::from_us(seq + 1),
            record,
        }
    }

    #[test]
    fn jsonl_lines_have_fixed_shape() {
        let events = [
            ev(
                0,
                Record::PathTransition {
                    leaf: 0,
                    dst_leaf: 3,
                    path: 2,
                    from: PathClass::Good,
                    to: PathClass::Failed,
                },
            ),
            ev(
                1,
                Record::Reroute {
                    flow: 9,
                    dst_leaf: 3,
                    from_path: 2,
                    to_path: 1,
                    verdict: RerouteVerdict::Failover,
                },
            ),
            ev(
                2,
                Record::Drop {
                    flow: 9,
                    path: 2,
                    reason: DropReason::Blackhole,
                },
            ),
        ];
        let out = to_jsonl(&events);
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"at_ns\":1000,\"kind\":\"path_transition\",\"leaf\":0,\"dst_leaf\":3,\"path\":2,\"from\":\"good\",\"to\":\"failed\"}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"at_ns\":2000,\"kind\":\"reroute\",\"flow\":9,\"dst_leaf\":3,\"from_path\":2,\"to_path\":1,\"verdict\":\"failover\"}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"at_ns\":3000,\"kind\":\"drop\",\"flow\":9,\"path\":2,\"reason\":\"blackhole\"}"
        );
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn float_fields_use_shortest_roundtrip_display() {
        let out = event_to_json(&ev(
            0,
            Record::CwndUpdate {
                flow: 1,
                cwnd: 14600.0,
                alpha: 0.0625,
                rto_ns: 1_000_000,
            },
        ));
        assert!(out.contains("\"cwnd\":14600,"), "{out}");
        assert!(out.contains("\"alpha\":0.0625,"), "{out}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![crate::metrics::MetricsRow {
            at: Time::from_ms(1),
            name: "fct{le=+inf}".to_string(),
            value: 3.0,
        }];
        assert_eq!(to_csv(&rows), "at_ns,name,value\n1000000,fct{le=+inf},3\n");
    }

    #[test]
    fn identical_event_slices_serialize_identically() {
        let events: Vec<_> = (0..50)
            .map(|i| {
                ev(
                    i,
                    Record::QueueSample {
                        leaf: (i % 4) as u32,
                        spine: (i % 3) as u32,
                        up_qbytes: i * 1460,
                        down_qbytes: i * 100,
                    },
                )
            })
            .collect();
        assert_eq!(to_jsonl(&events), to_jsonl(&events.clone()));
    }
}
