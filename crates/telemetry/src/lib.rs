//! # hermes-telemetry — zero-overhead-when-off tracing and metrics
//!
//! A structured observation layer for the Hermes reproduction: typed
//! trace records ([`Record`]) covering path-state sensing, placement
//! decisions, fabric marks/drops and transport window dynamics; a
//! bounded ring-buffer sink stamping records with `(sim time, seq)`;
//! a metrics registry (counters, gauges, fixed-bucket histograms)
//! snapshotted on a configurable sim-time cadence; and deterministic
//! JSONL/CSV exporters.
//!
//! Two properties are load-bearing (DESIGN.md §12):
//!
//! * **Zero overhead when off.** Without the `on` feature every entry
//!   point is an inline no-op and [`enabled`] is a compile-time
//!   `false`, so guarded instrumentation sites vanish from the build.
//!   Instrumented crates expose this as their own `telemetry` feature.
//! * **Digest neutrality when on.** The sink observes; it never
//!   schedules events, consumes randomness, or feeds back into
//!   simulation state. A telemetry-on run produces the same
//!   `hermes-net::audit` event-trace digest as a telemetry-off run
//!   (enforced by `tests/telemetry.rs` against the conformance
//!   goldens).

mod export;
mod metrics;
mod record;
mod sink;

pub use export::{event_to_json, to_csv, to_jsonl};
pub use metrics::{Histogram, Metrics, MetricsRow, FCT_EDGES_US};
pub use record::{DropReason, PathClass, Record, RerouteVerdict, TraceEvent};
pub use sink::{
    compiled, counter, counter_add, drain, dropped, emit_with, enabled, gauge_set, hist,
    hist_observe, install, on_cadence, sample_metrics, take_metric_rows, uninstall, SinkConfig,
};
