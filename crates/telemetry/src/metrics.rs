//! Metrics registry: counters, gauges and fixed-bucket histograms,
//! snapshotted into a time series on the sink's sim-time cadence.
//!
//! Everything here is plain deterministic data: `BTreeMap` keyed by
//! `&'static str` (stable iteration order), no clocks, no RNG. The
//! types compile unconditionally — only the process-wide registry in
//! [`crate::sink`] is feature-gated — so the histogram math is unit-
//! and property-testable without the `on` feature.

use std::collections::BTreeMap;

use hermes_sim::Time;

/// Fixed FCT histogram buckets (microseconds): log-ish spacing from
/// sub-RTT mice to multi-second stragglers, plus the overflow bucket.
/// Lives with the histogram type (observability layer) so the
/// sim-facing runtime holds no float tables of its own.
pub const FCT_EDGES_US: &[f64] = &[
    100.0,
    300.0,
    1_000.0,
    3_000.0,
    10_000.0,
    30_000.0,
    100_000.0,
    300_000.0,
    1_000_000.0,
    3_000_000.0,
];

/// A fixed-bucket histogram.
///
/// Bucket `i` counts samples with `v <= edges[i]` (and `v > edges[i-1]`
/// for `i > 0`); a value exactly equal to an edge lands in that edge's
/// bucket. One extra overflow bucket counts `v > edges.last()`. Edges
/// must be sorted ascending; duplicate edges describe a zero-width
/// bucket that the *second* copy of the edge can never receive counts
/// in (the first matching edge wins).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram over the given ascending bucket edges.
    ///
    /// # Panics
    /// If `edges` is empty or not sorted ascending (equal neighbours
    /// are allowed: a zero-width bucket).
    pub fn new(edges: &[f64]) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "histogram edges must be sorted ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Index of the bucket `v` falls in: the first edge `>= v`, or the
    /// overflow bucket (`edges.len()`) when `v` exceeds every edge.
    pub fn bucket_for(&self, v: f64) -> usize {
        // partition_point returns the count of edges strictly below v,
        // which is exactly the index of the first edge >= v.
        self.edges.partition_point(|&e| e < v)
    }

    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bucket_for(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Fold `other` into `self`. Merging is exact: the result equals a
    /// histogram of the concatenated sample streams.
    ///
    /// # Panics
    /// If the two histograms have different bucket edges.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "cannot merge mismatched buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// One row of the sampled metrics time series: the value a named
/// metric had at a cadence boundary. Histograms snapshot one row per
/// bucket (`name` is suffixed with `le=<edge>` / `le=+inf`).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsRow {
    pub at: Time,
    pub name: String,
    pub value: f64,
}

/// The registry behind the sink: named counters, gauges and histograms
/// plus the cadence-sampled time series.
#[derive(Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    rows: Vec<MetricsRow>,
}

impl Metrics {
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Record `v` into the named histogram, creating it with `edges`
    /// on first use. Later calls ignore `edges` (first writer wins),
    /// keeping every observation of one metric in one bucket layout.
    pub fn hist_observe(&mut self, name: &'static str, edges: &[f64], v: f64) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(edges))
            .observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Snapshot every registered metric into the time series at `now`.
    /// Iteration order is the `BTreeMap` key order, so two identical
    /// runs serialize identical rows.
    pub fn sample(&mut self, now: Time) {
        for (name, v) in &self.counters {
            self.rows.push(MetricsRow {
                at: now,
                name: (*name).to_string(),
                value: *v as f64,
            });
        }
        for (name, v) in &self.gauges {
            self.rows.push(MetricsRow {
                at: now,
                name: (*name).to_string(),
                value: *v,
            });
        }
        for (name, h) in &self.hists {
            for (i, c) in h.counts().iter().enumerate() {
                let suffix = match h.edges().get(i) {
                    Some(e) => format!("{{le={e}}}"),
                    None => "{le=+inf}".to_string(),
                };
                self.rows.push(MetricsRow {
                    at: now,
                    name: format!("{name}{suffix}"),
                    value: *c as f64,
                });
            }
        }
    }

    /// The cadence-sampled time series accumulated so far.
    pub fn rows(&self) -> &[MetricsRow] {
        &self.rows
    }

    /// Take the time series, leaving the live counters in place.
    pub fn take_rows(&mut self) -> Vec<MetricsRow> {
        std::mem::take(&mut self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_on_bucket_edge_lands_in_that_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(1.0);
        h.observe(10.0);
        h.observe(100.0);
        assert_eq!(h.counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn values_beyond_last_edge_hit_the_overflow_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(10.000001);
        h.observe(1e18);
        assert_eq!(h.counts(), &[0, 0, 2]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn zero_and_negative_values_land_in_the_first_bucket() {
        // FCTs of zero-size ("zero-width") flows degenerate to 0.
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.counts(), &[2, 0, 0]);
    }

    #[test]
    fn duplicate_edges_make_a_dead_zero_width_bucket() {
        let mut h = Histogram::new(&[5.0, 5.0, 10.0]);
        h.observe(5.0);
        h.observe(7.0);
        // The first 5.0 edge captures the on-edge sample; the second
        // (zero-width) bucket can never match.
        assert_eq!(h.counts(), &[1, 0, 1, 0]);
    }

    #[test]
    fn merge_equals_concatenated_observation() {
        let edges = [2.0, 4.0, 8.0];
        let xs = [0.5, 2.0, 3.0, 9.0];
        let ys = [4.0, 4.0, 100.0];
        let mut a = Histogram::new(&edges);
        let mut b = Histogram::new(&edges);
        let mut both = Histogram::new(&edges);
        for &v in &xs {
            a.observe(v);
            both.observe(v);
        }
        for &v in &ys {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    #[should_panic(expected = "mismatched buckets")]
    fn merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_edges_are_rejected() {
        let _ = Histogram::new(&[3.0, 1.0]);
    }

    #[test]
    fn registry_counters_gauges_and_sampling_are_ordered() {
        let mut m = Metrics::default();
        m.counter_add("zeta", 1);
        m.counter_add("alpha", 2);
        m.gauge_set("goodput", 3.5);
        m.hist_observe("fct", &[1.0], 0.5);
        m.sample(Time::from_us(10));
        let names: Vec<_> = m.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["alpha", "zeta", "goodput", "fct{le=1}", "fct{le=+inf}"]
        );
        assert_eq!(m.counter("alpha"), 2);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("goodput"), Some(3.5));
        assert_eq!(m.hist("fct").unwrap().count(), 1);
    }
}
