//! Typed trace records.
//!
//! Every record carries raw integers (host/leaf/spine/path indices,
//! flow ids, byte counts, nanosecond times) rather than the domain
//! types of the instrumented crates, so this crate sits below all of
//! them in the dependency graph. A `path` field of `-1` means "no
//! spine path" (direct intra-rack delivery or not yet placed).

use hermes_sim::Time;

/// Path classification as reported by the sensing layer — Algorithm 1's
/// four classes plus the recovery-probing phase of the failure state
/// machine (DESIGN.md §9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathClass {
    Good,
    Gray,
    Congested,
    Failed,
    Probation,
}

impl PathClass {
    /// Stable lowercase name used by the JSONL exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            PathClass::Good => "good",
            PathClass::Gray => "gray",
            PathClass::Congested => "congested",
            PathClass::Failed => "failed",
            PathClass::Probation => "probation",
        }
    }
}

/// Outcome of one load-balancer placement decision — Algorithm 2's
/// branches for Hermes, plus the single rehash verdict FlowBender has.
/// "Held" verdicts record *why* a cautious reroute was suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RerouteVerdict {
    /// First placement of a new flow.
    Initial,
    /// Replacement because the current path is sensed Failed.
    Failover,
    /// Replacement forced by a transport timeout.
    TimeoutReplace,
    /// Cautious reroute off a Congested path that passed every gate.
    Rerouted,
    /// Reroute suppressed: flow too small (`bytes_sent <= size_threshold`).
    HeldSize,
    /// Reroute suppressed: flow too fast (`rate_bps >= rate_threshold_bps`).
    HeldRate,
    /// Reroute suppressed: last change too recent (`since_change <= cooldown`).
    HeldCooldown,
    /// Gates passed but no candidate was notably better.
    HeldNoMargin,
    /// FlowBender-style rehash after a marked RTT window or dead path.
    Bounce,
}

impl RerouteVerdict {
    /// Stable lowercase name used by the JSONL exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            RerouteVerdict::Initial => "initial",
            RerouteVerdict::Failover => "failover",
            RerouteVerdict::TimeoutReplace => "timeout_replace",
            RerouteVerdict::Rerouted => "rerouted",
            RerouteVerdict::HeldSize => "held_size",
            RerouteVerdict::HeldRate => "held_rate",
            RerouteVerdict::HeldCooldown => "held_cooldown",
            RerouteVerdict::HeldNoMargin => "held_no_margin",
            RerouteVerdict::Bounce => "bounce",
        }
    }

    /// Whether this verdict changed (or set) the flow's path.
    pub fn moved(self) -> bool {
        matches!(
            self,
            RerouteVerdict::Initial
                | RerouteVerdict::Failover
                | RerouteVerdict::TimeoutReplace
                | RerouteVerdict::Rerouted
                | RerouteVerdict::Bounce
        )
    }
}

/// Why the fabric retired a packet without delivering it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Tail drop: output buffer full.
    BufferFull,
    /// Silent random drop at a failed spine.
    RandomDrop,
    /// Deterministic blackhole match.
    Blackhole,
    /// Deterministic per-victim-flow blackhole match (gray failure).
    FlowBlackhole,
    /// Link administratively down (fault plan).
    LinkDown,
    /// No connected uplink/downlink remained.
    Disconnected,
}

impl DropReason {
    /// Stable lowercase name used by the JSONL exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::BufferFull => "buffer_full",
            DropReason::RandomDrop => "random_drop",
            DropReason::Blackhole => "blackhole",
            DropReason::FlowBlackhole => "flow_blackhole",
            DropReason::LinkDown => "link_down",
            DropReason::Disconnected => "disconnected",
        }
    }
}

/// One structured trace record. Variants cover every instrumented
/// layer: sensing (core), placement (lb), fabric (net), congestion
/// control (transport) and flow lifecycle (runtime).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Record {
    /// A sensed path changed class at `leaf` toward `dst_leaf`.
    PathTransition {
        leaf: u32,
        dst_leaf: u32,
        path: u32,
        from: PathClass,
        to: PathClass,
    },
    /// One placement decision and its Algorithm-2 verdict.
    Reroute {
        flow: u64,
        dst_leaf: u32,
        from_path: i64,
        to_path: i64,
        verdict: RerouteVerdict,
    },
    /// A data packet was CE-marked on the leaf→spine uplink queue.
    EcnMark {
        leaf: u32,
        spine: u32,
        qbytes: u64,
        flow: u64,
    },
    /// Cadence sample of one leaf↔spine queue pair (bytes queued).
    QueueSample {
        leaf: u32,
        spine: u32,
        up_qbytes: u64,
        down_qbytes: u64,
    },
    /// DCTCP window/α/RTO update for one sender.
    CwndUpdate {
        flow: u64,
        cwnd: f64,
        alpha: f64,
        rto_ns: u64,
    },
    /// A flow entered the runtime.
    FlowStarted {
        flow: u64,
        src: u32,
        dst: u32,
        size: u64,
    },
    /// A flow fully acknowledged; `fct_ns` is its completion time.
    FlowCompleted { flow: u64, fct_ns: u64 },
    /// The runtime changed a flow's spine path (any LB scheme).
    PathChange {
        flow: u64,
        from_path: i64,
        to_path: i64,
    },
    /// A ring-allreduce step closed ring-wide (all `ranks` chunks of
    /// `step` completed; the barrier released the next step).
    RingStep {
        step: u32,
        ranks: u32,
        chunk_bytes: u64,
    },
    /// An incast burst drained (the slowest of `fanout` replies landed;
    /// the next burst released).
    IncastBurst {
        burst: u32,
        fanout: u32,
        reply_bytes: u64,
    },
    /// A scheduled fault-plan action fired.
    FaultApplied { kind: &'static str },
    /// The fabric retired a packet without delivering it.
    Drop {
        flow: u64,
        path: i64,
        reason: DropReason,
    },
}

impl Record {
    /// Stable record-type tag used by the JSONL exporter.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::PathTransition { .. } => "path_transition",
            Record::Reroute { .. } => "reroute",
            Record::EcnMark { .. } => "ecn_mark",
            Record::QueueSample { .. } => "queue_sample",
            Record::CwndUpdate { .. } => "cwnd_update",
            Record::FlowStarted { .. } => "flow_started",
            Record::FlowCompleted { .. } => "flow_completed",
            Record::PathChange { .. } => "path_change",
            Record::RingStep { .. } => "ring_step",
            Record::IncastBurst { .. } => "incast_burst",
            Record::FaultApplied { .. } => "fault_applied",
            Record::Drop { .. } => "drop",
        }
    }
}

/// A record stamped with sim time and a per-sink sequence number. The
/// `(at, seq)` pair totally orders a trace: `seq` is assigned at emit
/// time in dispatch order, so equal-timestamp records keep the order
/// the simulation produced them in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    pub seq: u64,
    pub at: Time,
    pub record: Record,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable() {
        let all = [
            PathClass::Good,
            PathClass::Gray,
            PathClass::Congested,
            PathClass::Failed,
            PathClass::Probation,
        ];
        let names: Vec<_> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, ["good", "gray", "congested", "failed", "probation"]);
    }

    #[test]
    fn moved_verdicts_are_exactly_the_path_setting_ones() {
        assert!(RerouteVerdict::Initial.moved());
        assert!(RerouteVerdict::Failover.moved());
        assert!(RerouteVerdict::TimeoutReplace.moved());
        assert!(RerouteVerdict::Rerouted.moved());
        assert!(RerouteVerdict::Bounce.moved());
        assert!(!RerouteVerdict::HeldSize.moved());
        assert!(!RerouteVerdict::HeldRate.moved());
        assert!(!RerouteVerdict::HeldCooldown.moved());
        assert!(!RerouteVerdict::HeldNoMargin.moved());
    }

    #[test]
    fn record_kind_tags_are_unique() {
        let tags = [
            Record::PathTransition {
                leaf: 0,
                dst_leaf: 0,
                path: 0,
                from: PathClass::Good,
                to: PathClass::Gray,
            }
            .kind(),
            Record::FlowCompleted { flow: 0, fct_ns: 0 }.kind(),
            Record::FaultApplied { kind: "x" }.kind(),
            Record::RingStep {
                step: 0,
                ranks: 0,
                chunk_bytes: 0,
            }
            .kind(),
            Record::IncastBurst {
                burst: 0,
                fanout: 0,
                reply_bytes: 0,
            }
            .kind(),
            Record::QueueSample {
                leaf: 0,
                spine: 0,
                up_qbytes: 0,
                down_qbytes: 0,
            }
            .kind(),
        ];
        let mut sorted = tags.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags.len());
    }
}
