//! End-to-end tests of the full stack: every scheme moves real flows
//! across the simulated fabric under DCTCP.

use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg, FlowBenderCfg};
use hermes_net::{FlowId, HostId, LeafId, PathId, SpineFailure, SpineId, Topology};
use hermes_runtime::{Probe, Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{FlowGen, FlowSizeDist, FlowSpec};

fn one_flow(size: u64) -> FlowSpec {
    FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(6), // other rack on the testbed topology
        size,
        start: Time::ZERO,
    }
}

fn all_schemes(topo: &Topology) -> Vec<(&'static str, Scheme)> {
    vec![
        ("ecmp", Scheme::Ecmp),
        ("drb", Scheme::Drb),
        ("presto", Scheme::presto()),
        ("flowbender", Scheme::FlowBender(FlowBenderCfg::default())),
        ("clove", Scheme::Clove(CloveCfg::default())),
        (
            "letflow",
            Scheme::LetFlow {
                flowlet_timeout: Time::from_us(150),
            },
        ),
        ("drill", Scheme::Drill { samples: 2 }),
        ("conga", Scheme::Conga(CongaCfg::default())),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(topo))),
    ]
}

#[test]
fn single_flow_completes_with_sane_fct() {
    let topo = Topology::testbed();
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp));
    sim.add_flow(one_flow(1_000_000));
    sim.run_to_completion(Time::from_secs(5));
    let rec = &sim.records()[0];
    let fct = rec.finish.expect("flow must finish") - rec.start;
    // 1 MB at 1 Gbps is at least 8 ms; with slow start well under 100 ms.
    assert!(fct > Time::from_ms(8), "fct {fct}");
    assert!(fct < Time::from_ms(100), "fct {fct}");
    assert_eq!(sim.fabric().stats.path_fallbacks, 0);
}

#[test]
fn every_scheme_completes_a_small_workload() {
    let topo = Topology::testbed();
    for (name, scheme) in all_schemes(&topo) {
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(11));
        sim.add_flows(gen.schedule(60));
        sim.run_to_completion(Time::from_secs(30));
        let unfinished = sim.records().iter().filter(|r| r.finish.is_none()).count();
        assert_eq!(unfinished, 0, "{name}: {unfinished} unfinished flows");
        assert_eq!(
            sim.fabric().stats.path_fallbacks,
            0,
            "{name}: edge scheme stamped dead paths"
        );
        // Byte conservation: every delivered flow got its full size.
        for r in sim.records() {
            assert!(r.finish.unwrap() >= r.start);
        }
    }
}

#[test]
fn same_seed_is_bit_reproducible() {
    let topo = Topology::testbed();
    let run = |seed: u64| -> Vec<u64> {
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.5, None, SimRng::new(3));
        let params = HermesParams::from_topology(&topo);
        let mut sim =
            Simulation::new(SimConfig::new(topo.clone(), Scheme::Hermes(params)).with_seed(seed));
        sim.add_flows(gen.schedule(40));
        sim.run_to_completion(Time::from_secs(30));
        sim.records()
            .iter()
            .map(|r| r.finish.expect("finished").as_ns())
            .collect()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a, b, "identical seeds must replay identically");
    let c = run(6);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn hermes_probing_is_active_and_cheap() {
    let topo = Topology::testbed();
    let params = HermesParams::from_topology(&topo);
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Hermes(params)));
    sim.add_flow(one_flow(500_000));
    sim.run_to_completion(Time::from_secs(5));
    assert!(sim.stats.probes_sent > 0, "agents must probe");
    assert!(
        sim.stats.probe_responses > sim.stats.probes_sent / 2,
        "most probes must come back ({} of {})",
        sim.stats.probe_responses,
        sim.stats.probes_sent
    );
}

#[test]
fn blackhole_strands_ecmp_but_not_hermes() {
    // 4-rack fabric, blackhole on spine 0 for every rack0→rack1 pair.
    let topo = Topology::leaf_spine(
        4,
        4,
        4,
        hermes_net::LinkCfg::new(10_000_000_000, Time::from_us(5)),
        hermes_net::LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    let flows: Vec<FlowSpec> = (0..16)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId((i % 4) as u32),     // rack 0
            dst: HostId(4 + (i % 4) as u32), // rack 1
            size: 200_000,
            start: Time::from_us(10 * i),
        })
        .collect();

    let run = |scheme: Scheme| {
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(2));
        sim.set_spine_failure(
            SpineId(0),
            SpineFailure::blackhole(LeafId(0), LeafId(1), 1.0),
        );
        sim.add_flows(flows.clone());
        sim.run_to_completion(Time::from_secs(3));
        sim.records().iter().filter(|r| r.finish.is_none()).count()
    };

    let ecmp_unfinished = run(Scheme::Ecmp);
    assert!(
        ecmp_unfinished > 0,
        "ECMP must strand the flows hashed onto the blackhole"
    );
    let hermes_unfinished = run(Scheme::Hermes(HermesParams::from_topology(&topo)));
    assert_eq!(
        hermes_unfinished, 0,
        "Hermes must detect the blackhole after 3 timeouts and finish everything"
    );
}

#[test]
fn silent_random_drops_inflate_ecmp_tail_but_not_hermes() {
    // One spine silently drops 2% of packets (the Fig. 16 failure mode:
    // no link-down signal, just loss). Hermes' retransmission-fraction
    // sensing must classify the path as failed and route around it;
    // ECMP keeps hashing flows into the lossy spine for their lifetime.
    let topo = Topology::leaf_spine(
        4,
        4,
        4,
        hermes_net::LinkCfg::new(10_000_000_000, Time::from_us(5)),
        hermes_net::LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    let flows: Vec<FlowSpec> = (0..16)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId((i % 4) as u32),     // rack 0
            dst: HostId(4 + (i % 4) as u32), // rack 1
            size: 2_000_000,
            start: Time::from_us(10 * i),
        })
        .collect();

    let run = |scheme: Scheme| {
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(2));
        sim.set_spine_failure(SpineId(0), SpineFailure::random_drops(0.02));
        sim.add_flows(flows.clone());
        sim.run_to_completion(Time::from_secs(3));
        let unfinished = sim.records().iter().filter(|r| r.finish.is_none()).count();
        let max_fct = sim
            .records()
            .iter()
            .filter_map(|r| r.finish.map(|f| f - r.start))
            .max()
            .expect("at least one finished flow");
        (unfinished, max_fct)
    };

    let (ecmp_unfinished, ecmp_tail) = run(Scheme::Ecmp);
    assert_eq!(
        ecmp_unfinished, 0,
        "2% loss delays ECMP but does not strand it"
    );
    let (hermes_unfinished, hermes_tail) = run(Scheme::Hermes(HermesParams::from_topology(&topo)));
    assert_eq!(hermes_unfinished, 0, "Hermes must finish everything");
    assert!(
        hermes_tail < ecmp_tail,
        "Hermes must route around the lossy spine: tail {hermes_tail} vs ECMP {ecmp_tail}"
    );
}

#[test]
fn udp_source_delivers_at_configured_rate() {
    let topo = Topology::testbed();
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp));
    let udp = sim.add_udp(
        HostId(0),
        HostId(6),
        500_000_000, // 0.5 Gbps on a 1 Gbps fabric
        1460,
        Some(PathId(0)),
        Time::ZERO,
    );
    sim.run_until(Time::from_ms(100));
    let received = sim.udp_received(udp);
    let expect = 500_000_000.0 / 8.0 * 0.1 * (1460.0 / 1500.0);
    let got = received as f64;
    assert!(
        (got - expect).abs() / expect < 0.05,
        "udp received {got:.3e}, expected ≈{expect:.3e}"
    );
}

#[test]
fn samplers_record_queue_buildup() {
    let topo = Topology::testbed();
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp));
    // Two UDP sources at 0.9 Gbps each share one 1 Gbps uplink: queue grows.
    sim.add_udp(
        HostId(0),
        HostId(6),
        900_000_000,
        1460,
        Some(PathId(1)),
        Time::ZERO,
    );
    sim.add_udp(
        HostId(1),
        HostId(7),
        900_000_000,
        1460,
        Some(PathId(1)),
        Time::ZERO,
    );
    let s = sim.add_sampler(
        Time::from_us(100),
        Probe::LeafUpQueue(LeafId(0), SpineId(1)),
    );
    sim.run_until(Time::from_ms(20));
    let series = sim.sampler_series(s);
    assert!(series.len() > 100);
    let max = series.iter().map(|&(_, v)| v).max().unwrap();
    assert!(
        max > 30_000,
        "overloaded uplink must build queue: max {max}"
    );
}

#[test]
fn visibility_gap_between_switch_and_host_pairs() {
    let topo = Topology::testbed();
    let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.6, None, SimRng::new(9));
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp).with_seed(4));
    sim.add_flows(gen.schedule(80));
    sim.run_to_completion(Time::from_secs(30));
    let (switch, host) = sim.visibility();
    assert!(switch > 0.0);
    assert!(
        switch > 5.0 * host,
        "Table 2's asymmetry: switch {switch} vs host {host}"
    );
}

#[test]
fn intra_rack_flows_complete_without_spine_paths() {
    let topo = Topology::testbed();
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp));
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(1),
        size: 300_000,
        start: Time::ZERO,
    });
    sim.run_to_completion(Time::from_secs(2));
    assert!(sim.records()[0].finish.is_some());
}

#[test]
fn telemetry_traces_the_flow_lifecycle_without_perturbing_the_run() {
    if !hermes_telemetry::compiled() {
        return;
    }
    use hermes_net::FaultPlan;
    use hermes_telemetry::Record;

    // Baseline digest with no sink installed.
    let run = |tele: bool| -> (u64, Vec<hermes_telemetry::TraceEvent>) {
        if tele {
            hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        }
        let topo = Topology::testbed();
        let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp).with_seed(5));
        // One down/up pair, both inside the flow's lifetime.
        let plan = FaultPlan::new().link_flap(
            LeafId(0),
            SpineId(0),
            Time::from_ms(1),
            Time::from_us(500),
            Time::from_ms(10),
            Time::from_ms(2),
        );
        sim.set_fault_plan(&plan);
        sim.add_flow(one_flow(300_000));
        sim.run_to_completion(Time::from_secs(5));
        let digest = sim.trace_digest();
        let evs = if tele {
            let e = hermes_telemetry::drain();
            hermes_telemetry::uninstall();
            e
        } else {
            Vec::new()
        };
        (digest, evs)
    };
    let (d_off, _) = run(false);
    let (d_on, evs) = run(true);
    assert_eq!(
        d_on, d_off,
        "an installed sink must not perturb the event stream"
    );

    // Lifecycle records, in causal order.
    let started = evs
        .iter()
        .position(|e| matches!(e.record, Record::FlowStarted { flow: 0, .. }))
        .expect("FlowStarted");
    let completed = evs
        .iter()
        .position(|e| matches!(e.record, Record::FlowCompleted { flow: 0, .. }))
        .expect("FlowCompleted");
    assert!(started < completed);
    // The recorded FCT matches the flow record.
    let (rec_start, rec_finish) = {
        let topo = Topology::testbed();
        let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp).with_seed(5));
        // One down/up pair, both inside the flow's lifetime.
        let plan = FaultPlan::new().link_flap(
            LeafId(0),
            SpineId(0),
            Time::from_ms(1),
            Time::from_us(500),
            Time::from_ms(10),
            Time::from_ms(2),
        );
        sim.set_fault_plan(&plan);
        sim.add_flow(one_flow(300_000));
        sim.run_to_completion(Time::from_secs(5));
        let r = &sim.records()[0];
        (r.start, r.finish.expect("finished"))
    };
    match evs[completed].record {
        Record::FlowCompleted { fct_ns, .. } => {
            assert_eq!(fct_ns, (rec_finish - rec_start).as_ns());
        }
        _ => unreachable!(),
    }

    // Transport snapshots carry the flow label.
    assert!(
        evs.iter()
            .any(|e| matches!(e.record, Record::CwndUpdate { flow: 0, .. })),
        "cwnd snapshots must be labelled with the flow id"
    );
    // The fault plan surfaces as fault_applied records (down then up).
    let faults: Vec<&'static str> = evs
        .iter()
        .filter_map(|e| match e.record {
            Record::FaultApplied { kind } => Some(kind),
            _ => None,
        })
        .collect();
    assert_eq!(faults, ["link_down", "link_up"]);
    // Cadence sampling ran: queue samples exist and seq/time are
    // monotonic across the whole trace.
    assert!(evs
        .iter()
        .any(|e| matches!(e.record, Record::QueueSample { .. })));
    for w in evs.windows(2) {
        assert!(w[1].seq > w[0].seq);
        assert!(w[1].at >= w[0].at);
    }
}

#[test]
fn telemetry_metrics_sample_on_cadence() {
    if !hermes_telemetry::compiled() {
        return;
    }
    hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
    let topo = Topology::testbed();
    let mut sim = Simulation::new(SimConfig::new(topo, Scheme::Ecmp).with_seed(5));
    sim.add_flow(one_flow(1_000_000));
    sim.run_to_completion(Time::from_secs(5));
    // Final flush: cadence sampling rides event dispatch, so metrics
    // observed by the very last events need one explicit end-of-run
    // snapshot (exporters do the same).
    hermes_telemetry::sample_metrics(sim.now());
    let _ = hermes_telemetry::drain();
    let rows = hermes_telemetry::take_metric_rows();
    hermes_telemetry::uninstall();
    assert!(
        rows.iter().any(|r| r.name == "goodput_bytes"),
        "goodput gauge sampled"
    );
    assert!(
        rows.iter().any(|r| r.name.starts_with("fct_us{le=")),
        "fct histogram sampled"
    );
    // The goodput gauge is non-decreasing over sim time.
    let gp: Vec<(u64, f64)> = rows
        .iter()
        .filter(|r| r.name == "goodput_bytes")
        .map(|r| (r.at.as_ns(), r.value))
        .collect();
    assert!(gp.len() >= 2, "multiple cadence ticks over an 8ms+ flow");
    for w in gp.windows(2) {
        assert!(w[1].0 > w[0].0 && w[1].1 >= w[0].1);
    }
}
