//! Determinism self-check: run a scenario twice from the same seed and
//! demand bit-identical behavior.
//!
//! A [`RunFingerprint`] condenses one run into the rolling event-trace
//! digest, the event count, the per-flow completion times, the
//! packet-conservation report, and — for sharded runs — the per-shard
//! merge counters. [`assert_deterministic`] builds and runs the same
//! scenario twice and panics with a precise diff if any of those
//! disagree — the cheapest possible detector for nondeterminism creeping
//! in via map iteration order, uninitialized state, or wall-clock
//! leakage. [`fingerprint_parallel`] is the thread-matrix variant: the
//! fingerprint it returns must equal the single-threaded one bit for
//! bit, at any thread count (DESIGN.md §17).

use hermes_net::ConservationReport;
use hermes_sim::{ShardStats, Time};

use crate::sim::Simulation;

/// Everything that must be identical between two same-seed runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Rolling FNV digest of the full event trace.
    pub digest: u64,
    /// Number of events dispatched.
    pub events: u64,
    /// `(flow id, completion time)` per scheduled flow, in record order.
    pub fcts: Vec<(u64, Option<Time>)>,
    /// Packet accounting at the end of the run.
    pub conservation: ConservationReport,
    /// Past-time schedules the event queue clamped to `now` (release
    /// builds). Must be 0: a nonzero count is a causality violation that
    /// release builds would otherwise paper over silently.
    pub queue_clamps: u64,
    /// Worker threads the run was driven with (0 = the plain
    /// single-queue entry point, which never records a thread count).
    /// Deliberately *excluded* from the equality the checks below
    /// enforce — a 1-thread and a 4-thread run of the same scenario must
    /// otherwise be indistinguishable.
    pub threads: u64,
    /// Per-shard merge counters when the run was sharded (empty on the
    /// single-queue path). Compared shard by shard: a divergence in any
    /// one shard's event/handoff/clamp/stall count means shard routing
    /// or the merge changed behavior, even if the global digest was
    /// somehow preserved.
    pub shards: Vec<ShardStats>,
}

impl RunFingerprint {
    /// Panic with a precise diff unless `self` and `other` describe
    /// indistinguishable runs. The thread count is intentionally not
    /// compared — byte-identical behavior across thread counts is the
    /// whole contract — but the per-shard counters are, whenever both
    /// runs were sharded.
    pub fn assert_matches(&self, other: &RunFingerprint) {
        assert_eq!(
            self.events, other.events,
            "same-seed runs dispatched different event counts"
        );
        assert_eq!(
            self.fcts, other.fcts,
            "same-seed runs produced different FCTs"
        );
        assert_eq!(
            self.digest, other.digest,
            "same-seed runs diverged: event traces differ"
        );
        assert_eq!(
            self.queue_clamps, other.queue_clamps,
            "same-seed runs clamped differently"
        );
        if !self.shards.is_empty() && !other.shards.is_empty() {
            assert_eq!(
                self.shards, other.shards,
                "per-shard merge counters diverged between same-seed runs"
            );
        }
    }
}

fn collect(sim: &Simulation) -> RunFingerprint {
    let fcts = sim.records().iter().map(|r| (r.id.0, r.finish)).collect();
    RunFingerprint {
        digest: sim.trace_digest(),
        events: sim.stats.events,
        fcts,
        conservation: sim.conservation(),
        queue_clamps: sim.queue_clamps(),
        threads: sim.stats.sim_threads,
        shards: sim.shard_counters(),
    }
}

/// Run `sim` to completion (bounded by `horizon`) and fingerprint it.
pub fn fingerprint(mut sim: Simulation, horizon: Time) -> RunFingerprint {
    sim.run_to_completion(horizon);
    collect(&sim)
}

/// Run `sim` through [`Simulation::run_parallel`] at `threads` and
/// fingerprint it. Must equal [`fingerprint`] of the same scenario in
/// every field the checks compare, at any thread count.
pub fn fingerprint_parallel(mut sim: Simulation, threads: usize, horizon: Time) -> RunFingerprint {
    sim.run_parallel(threads, horizon);
    collect(&sim)
}

/// Build and run the same scenario twice; panic unless the two runs are
/// indistinguishable and every packet is accounted for.
///
/// `build` must construct the simulation from scratch each time (config,
/// seed, workload); any shared mutable state between the two builds
/// would defeat the check.
pub fn assert_deterministic<F: FnMut() -> Simulation>(
    mut build: F,
    horizon: Time,
) -> RunFingerprint {
    let a = fingerprint(build(), horizon);
    let b = fingerprint(build(), horizon);
    a.assert_matches(&b);
    assert!(
        a.conservation.balanced(),
        "packet conservation violated: {}",
        a.conservation
    );
    assert_eq!(
        a.queue_clamps, 0,
        "causality violation: the event queue clamped past-time schedules"
    );
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded() -> RunFingerprint {
        RunFingerprint {
            digest: 0xD1,
            events: 100,
            fcts: vec![(1, Some(Time::from_us(5)))],
            conservation: ConservationReport {
                injected: 10,
                delivered: 10,
                drops_failure: 0,
                drops_disconnected: 0,
                drops_full: 0,
                in_flight: 0,
            },
            queue_clamps: 0,
            threads: 2,
            shards: vec![
                ShardStats {
                    events: 60,
                    handoffs: 7,
                    clamps: 0,
                    stalls: 3,
                },
                ShardStats {
                    events: 40,
                    handoffs: 5,
                    clamps: 0,
                    stalls: 1,
                },
            ],
        }
    }

    #[test]
    fn matching_fingerprints_pass_even_across_thread_counts() {
        let a = sharded();
        let mut b = sharded();
        b.threads = 4; // thread count is excluded from the contract
        a.assert_matches(&b);
    }

    #[test]
    #[should_panic(expected = "per-shard merge counters diverged")]
    fn a_single_shard_counter_mismatch_fails_the_check() {
        let a = sharded();
        let mut b = sharded();
        b.shards[1].handoffs += 1; // one counter, one shard
        a.assert_matches(&b);
    }

    #[test]
    #[should_panic(expected = "event traces differ")]
    fn a_digest_mismatch_fails_the_check() {
        let a = sharded();
        let mut b = sharded();
        b.digest ^= 1;
        a.assert_matches(&b);
    }
}
