//! Determinism self-check: run a scenario twice from the same seed and
//! demand bit-identical behavior.
//!
//! A [`RunFingerprint`] condenses one run into the rolling event-trace
//! digest, the event count, the per-flow completion times, and the
//! packet-conservation report. [`assert_deterministic`] builds and runs
//! the same scenario twice and panics with a precise diff if any of
//! those disagree — the cheapest possible detector for nondeterminism
//! creeping in via map iteration order, uninitialized state, or
//! wall-clock leakage.

use hermes_net::ConservationReport;
use hermes_sim::Time;

use crate::sim::Simulation;

/// Everything that must be identical between two same-seed runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Rolling FNV digest of the full event trace.
    pub digest: u64,
    /// Number of events dispatched.
    pub events: u64,
    /// `(flow id, completion time)` per scheduled flow, in record order.
    pub fcts: Vec<(u64, Option<Time>)>,
    /// Packet accounting at the end of the run.
    pub conservation: ConservationReport,
    /// Past-time schedules the event queue clamped to `now` (release
    /// builds). Must be 0: a nonzero count is a causality violation that
    /// release builds would otherwise paper over silently.
    pub queue_clamps: u64,
}

/// Run `sim` to completion (bounded by `horizon`) and fingerprint it.
pub fn fingerprint(mut sim: Simulation, horizon: Time) -> RunFingerprint {
    sim.run_to_completion(horizon);
    let fcts = sim.records().iter().map(|r| (r.id.0, r.finish)).collect();
    RunFingerprint {
        digest: sim.trace_digest(),
        events: sim.stats.events,
        fcts,
        conservation: sim.conservation(),
        queue_clamps: sim.queue_clamps(),
    }
}

/// Build and run the same scenario twice; panic unless the two runs are
/// indistinguishable and every packet is accounted for.
///
/// `build` must construct the simulation from scratch each time (config,
/// seed, workload); any shared mutable state between the two builds
/// would defeat the check.
pub fn assert_deterministic<F: FnMut() -> Simulation>(
    mut build: F,
    horizon: Time,
) -> RunFingerprint {
    let a = fingerprint(build(), horizon);
    let b = fingerprint(build(), horizon);
    assert_eq!(
        a.events, b.events,
        "same-seed runs dispatched different event counts"
    );
    assert_eq!(a.fcts, b.fcts, "same-seed runs produced different FCTs");
    assert_eq!(
        a.digest, b.digest,
        "same-seed runs diverged: event traces differ"
    );
    assert!(
        a.conservation.balanced(),
        "packet conservation violated: {}",
        a.conservation
    );
    assert_eq!(
        a.queue_clamps, 0,
        "causality violation: the event queue clamped past-time schedules"
    );
    a
}
