//! Experiment configuration: which scheme, which transport, which knobs.

use std::collections::BTreeMap;

use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg, FlowBenderCfg};
use hermes_net::{LeafId, PathId, Topology};
use hermes_sim::Time;
use hermes_transport::TransportCfg;

/// The load-balancing scheme under test.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// Per-flow random hashing.
    Ecmp,
    /// DRB: per-packet round robin (congestion-oblivious).
    Drb,
    /// Presto* — per-packet spray with a receive-side reordering mask.
    /// With `weighted`, every host gets static per-destination path
    /// weights proportional to bottleneck capacity (§5.2's
    /// topology-dependent weights for asymmetry).
    Presto { weighted: bool },
    /// FlowBender: reactive random rehashing on ECN/timeouts.
    FlowBender(FlowBenderCfg),
    /// CLOVE-ECN: edge flowlets with ECN-driven weighted round robin.
    Clove(CloveCfg),
    /// LetFlow: switch flowlets with random choice.
    LetFlow { flowlet_timeout: Time },
    /// DRILL: switch-local per-packet power-of-two-choices.
    Drill { samples: usize },
    /// CONGA: fabric-wide congestion-aware flowlet switching.
    Conga(CongaCfg),
    /// Hermes (the paper's scheme).
    Hermes(HermesParams),
}

impl Scheme {
    /// Presto* with equal weights.
    pub fn presto() -> Scheme {
        Scheme::Presto { weighted: false }
    }

    /// Presto* with topology-derived static weights (§5.2).
    pub fn presto_weighted() -> Scheme {
        Scheme::Presto { weighted: true }
    }

    /// Whether this scheme runs at end hosts (vs. in switches).
    pub fn is_edge(&self) -> bool {
        !matches!(
            self,
            Scheme::LetFlow { .. } | Scheme::Drill { .. } | Scheme::Conga(_)
        )
    }

    /// Whether the receiver should mask reordering (packet-spraying
    /// schemes need it; Presto* is defined with it).
    pub fn wants_reorder_mask(&self) -> bool {
        matches!(
            self,
            Scheme::Presto { .. } | Scheme::Drb | Scheme::Drill { .. }
        )
    }
}

/// Bottleneck-capacity path weights from `src_leaf` toward every other
/// leaf (used by the runtime to instantiate weighted Presto* per host).
pub fn presto_weights_for(
    topo: &Topology,
    src_leaf: LeafId,
) -> BTreeMap<LeafId, Vec<(PathId, f64)>> {
    let mut out = BTreeMap::new();
    for d in 0..topo.n_leaves {
        if d == src_leaf.0 as usize {
            continue;
        }
        let dst = LeafId(d as u16);
        let w: Vec<(PathId, f64)> = topo
            .path_candidates(src_leaf, dst)
            .into_iter()
            .map(|p| {
                let up = topo.up[src_leaf.0 as usize][p.0 as usize]
                    .expect("candidate path has an uplink")
                    .rate_bps;
                let down = topo.up[d][p.0 as usize]
                    .expect("candidate path has a downlink")
                    .rate_bps;
                (p, up.min(down) as f64)
            })
            .collect();
        out.insert(dst, w);
    }
    out
}

/// Everything an experiment needs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub topo: Topology,
    pub scheme: Scheme,
    pub transport: TransportCfg,
    /// Receive-side reordering buffer hold time, if masking is wanted.
    /// `None` defers to `scheme.wants_reorder_mask()` with the default
    /// hold below.
    pub reorder_mask: Option<Option<Time>>,
    /// Master seed; every subsystem derives a split stream from it.
    pub seed: u64,
    /// Observation window for the Table 2 visibility tracker (how long
    /// a monitor keeps "seeing" a finished flow; 0 = instantaneous).
    pub visibility_linger: Time,
    /// Time-triggered fault schedule replayed through the event queue
    /// (onset *and* clearance — the transient-failure story).
    pub fault_plan: Option<hermes_net::FaultPlan>,
}

/// Default reordering-buffer hold: a few one-way delays, enough for a
/// late sprayed packet to arrive, far below an RTO.
pub const DEFAULT_REORDER_HOLD: Time = Time::from_us(300);

impl SimConfig {
    pub fn new(topo: Topology, scheme: Scheme) -> SimConfig {
        SimConfig {
            topo,
            scheme,
            transport: TransportCfg::dctcp(),
            reorder_mask: None,
            seed: 1,
            visibility_linger: Time::ZERO,
            fault_plan: None,
        }
    }

    pub fn with_fault_plan(mut self, plan: hermes_net::FaultPlan) -> SimConfig {
        self.fault_plan = Some(plan);
        self
    }

    pub fn with_visibility_linger(mut self, linger: Time) -> SimConfig {
        self.visibility_linger = linger;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    pub fn with_transport(mut self, t: TransportCfg) -> SimConfig {
        self.transport = t;
        self
    }

    /// Force the reordering mask on/off regardless of scheme defaults.
    pub fn with_reorder_mask(mut self, mask: Option<Time>) -> SimConfig {
        self.reorder_mask = Some(mask);
        self
    }

    /// The effective receiver hold time.
    pub fn effective_reorder_hold(&self) -> Option<Time> {
        match self.reorder_mask {
            Some(explicit) => explicit,
            None => {
                if self.scheme.wants_reorder_mask() {
                    Some(DEFAULT_REORDER_HOLD)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_vs_fabric_classification() {
        assert!(Scheme::Ecmp.is_edge());
        assert!(Scheme::presto().is_edge());
        assert!(!Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150)
        }
        .is_edge());
        assert!(!Scheme::Conga(CongaCfg::default()).is_edge());
        let topo = Topology::sim_baseline();
        assert!(Scheme::Hermes(HermesParams::from_topology(&topo)).is_edge());
    }

    #[test]
    fn reorder_mask_defaults() {
        let topo = Topology::sim_baseline();
        let presto = SimConfig::new(topo.clone(), Scheme::presto());
        assert_eq!(presto.effective_reorder_hold(), Some(DEFAULT_REORDER_HOLD));
        let ecmp = SimConfig::new(topo.clone(), Scheme::Ecmp);
        assert_eq!(ecmp.effective_reorder_hold(), None);
        // Explicit override wins (e.g. CONGA + mask for Fig. 15).
        let conga = SimConfig::new(topo, Scheme::Conga(CongaCfg::default()))
            .with_reorder_mask(Some(Time::from_us(200)));
        assert_eq!(conga.effective_reorder_hold(), Some(Time::from_us(200)));
    }

    #[test]
    fn presto_weights_follow_bottleneck_capacity() {
        let mut topo = Topology::sim_baseline();
        topo.degrade_link(LeafId(0), hermes_net::SpineId(2), 2_000_000_000);
        let w = presto_weights_for(&topo, LeafId(0));
        let to1 = &w[&LeafId(1)];
        let w2 = to1.iter().find(|(p, _)| *p == PathId(2)).unwrap().1;
        let w0 = to1.iter().find(|(p, _)| *p == PathId(0)).unwrap().1;
        assert_eq!(w2, 2e9);
        assert_eq!(w0, 10e9);
        // Degradation at the *destination* side also caps the weight.
        let w_from_other = presto_weights_for(&topo, LeafId(1));
        let to0 = &w_from_other[&LeafId(0)];
        let w2b = to0.iter().find(|(p, _)| *p == PathId(2)).unwrap().1;
        assert_eq!(w2b, 2e9);
    }
}
