//! The full-stack simulation: fabric + transports + load balancer +
//! workload, driven off one deterministic event queue.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Flow table keyed by raw flow id. An ordered map so that any future
/// whole-table iteration is deterministic by construction; point
/// lookups on the hot path are O(log n) over a few thousand live flows,
/// which is noise next to the per-packet event machinery.
type FlowMap = BTreeMap<u64, FlowRt>;

use hermes_core::{Hermes, RackSensing};
use hermes_lb::{CloveEcn, Conga, Drill, Ecmp, FlowBender, LetFlow, PrestoSpray, RoundRobinSpray};
use hermes_net::{
    AckInfo, DigestSink, Dre, EdgeLb, Event, Fabric, FaultEvent, FaultPlan, FlowCtx, FlowId,
    HostId, LeafId, Packet, PacketKind, PathId, ShardMap, SpineFailure, SpineId,
};
use hermes_sim::{EventQueue, MergeDefect, Scheduler, ShardStats, ShardedQueue, SimRng, Time};
use hermes_transport::{Receiver, RecvAction, SegmentIn, SendAction, Sender};
use hermes_workload::{FlowDriver, FlowRecord, FlowSpec, VisibilityTracker};

use crate::config::{presto_weights_for, Scheme, SimConfig};

// ---- timer token packing: kind(3) | id(40) | gen(21) ----
const KIND_RTO: u64 = 0;
const KIND_HOLD: u64 = 1;
const TOK_ARRIVAL: u64 = 2;
const TOK_PROBE: u64 = 3;
const KIND_SAMPLER: u64 = 4;
const KIND_UDP: u64 = 5;
const KIND_FAULT: u64 = 6;
const GEN_MASK: u64 = (1 << 21) - 1;

fn pack(kind: u64, id: u64, gen: u64) -> u64 {
    debug_assert!(id < (1 << 40));
    kind | (id << 3) | ((gen & GEN_MASK) << 43)
}

fn unpack(tok: u64) -> (u64, u64, u64) {
    (tok & 7, (tok >> 3) & ((1 << 40) - 1), tok >> 43)
}

/// Telemetry path encoding: the spine index, or -1 for direct/unset.
fn telem_path(p: PathId) -> i64 {
    if p.is_spine() {
        i64::from(p.0)
    } else {
        -1
    }
}

/// Telemetry label for an applied fault action.
fn fault_kind(a: &hermes_net::FaultAction) -> &'static str {
    use hermes_net::FaultAction;
    match a {
        FaultAction::SetSpineFailure { .. } => "set_spine_failure",
        FaultAction::ClearSpineFailure { .. } => "clear_spine_failure",
        FaultAction::FlowBlackhole { .. } => "flow_blackhole",
        FaultAction::EcnMute { .. } => "ecn_mute",
        FaultAction::EcnUnmute { .. } => "ecn_unmute",
        FaultAction::LinkDown { .. } => "link_down",
        FaultAction::LinkUp { .. } => "link_up",
        FaultAction::SetLinkRate { .. } => "set_link_rate",
        FaultAction::RestoreLinkRate { .. } => "restore_link_rate",
        FaultAction::SpineDown { .. } => "spine_down",
        FaultAction::SpineUp { .. } => "spine_up",
    }
}

/// Flow ids at or above this are probe pseudo-flows.
const PROBE_FLOW_BASE: u64 = 1 << 60;
/// Flow ids at or above this (and below probes) are UDP sources.
const UDP_FLOW_BASE: u64 = 1 << 59;

/// What a queue/progress sampler measures.
#[derive(Clone, Copy, Debug)]
pub enum Probe {
    /// Queued bytes on a leaf→spine uplink.
    LeafUpQueue(LeafId, SpineId),
    /// Queued bytes on a spine→leaf downlink.
    SpineDownQueue(SpineId, LeafId),
    /// Payload bytes delivered so far to a flow's receiver (TCP or UDP).
    FlowDelivered(FlowId),
    /// Cumulative in-order TCP payload bytes delivered across *all*
    /// flows — the goodput timeline for degradation metrics.
    TotalGoodput,
}

struct SamplerRt {
    interval: Time,
    probe: Probe,
    series: Vec<(Time, u64)>,
}

struct UdpRt {
    flow: FlowId,
    src: HostId,
    dst: HostId,
    path: Option<PathId>,
    len: u32,
    interval: Time,
    received: u64,
}

struct FlowRt {
    id: FlowId,
    src: HostId,
    dst: HostId,
    src_leaf: LeafId,
    dst_leaf: LeafId,
    sender: Sender,
    receiver: Receiver,
    current_path: PathId,
    ack_path: PathId,
    /// Path to blame for retransmissions of the current loss episode
    /// (set at RTO time, cleared once new data flows again).
    blame_path: PathId,
    /// When the flow last switched paths (reorder-grace bookkeeping).
    last_path_change: Time,
    timed_out: bool,
    bytes_routed: u64,
    pkts_routed: u64,
    rto_gen: u64,
    hold_gen: u64,
    rate: Dre,
    rec_idx: usize,
    sender_done: bool,
}

/// The runtime's event queue: the classic single [`EventQueue`] fast
/// path, or — once [`Simulation::run_parallel`] migrates the run — the
/// sharded `(time, seq)` merge with fabric-locality routing. Both sides
/// produce the exact same pop order, so everything downstream (digest,
/// FCTs, counters) is byte-identical whichever variant drives the run.
enum RunQueue {
    Single(EventQueue<Event>),
    Sharded {
        q: ShardedQueue<Event>,
        map: ShardMap,
    },
}

impl RunQueue {
    /// Per-shard merge counters (empty on the single-queue path).
    fn shard_stats(&self) -> Vec<ShardStats> {
        match self {
            RunQueue::Single(_) => Vec::new(),
            RunQueue::Sharded { q, .. } => q.shard_stats(),
        }
    }
}

impl Scheduler<Event> for RunQueue {
    fn now(&self) -> Time {
        match self {
            RunQueue::Single(q) => q.now(),
            RunQueue::Sharded { q, .. } => q.now(),
        }
    }
    fn schedule(&mut self, at: Time, payload: Event) {
        match self {
            RunQueue::Single(q) => q.schedule(at, payload),
            RunQueue::Sharded { q, map } => {
                let shard = map.shard_of(&payload);
                q.schedule_to(shard, at, payload);
            }
        }
    }
    fn pop(&mut self) -> Option<(Time, Event)> {
        match self {
            RunQueue::Single(q) => q.pop(),
            RunQueue::Sharded { q, .. } => q.pop(),
        }
    }
    fn advance_to(&mut self, t: Time) {
        match self {
            RunQueue::Single(q) => q.advance_to(t),
            RunQueue::Sharded { q, .. } => q.advance_to(t),
        }
    }
    fn peek_time(&mut self) -> Option<Time> {
        match self {
            RunQueue::Single(q) => q.peek_time(),
            RunQueue::Sharded { q, .. } => q.peek_time(),
        }
    }
    fn len(&self) -> usize {
        match self {
            RunQueue::Single(q) => q.len(),
            RunQueue::Sharded { q, .. } => q.len(),
        }
    }
    fn scheduled_count(&self) -> u64 {
        match self {
            RunQueue::Single(q) => q.scheduled_count(),
            RunQueue::Sharded { q, .. } => q.scheduled_count(),
        }
    }
    fn clamp_count(&self) -> u64 {
        match self {
            RunQueue::Single(q) => q.clamp_count(),
            RunQueue::Sharded { q, .. } => q.clamp_count(),
        }
    }
}

/// Aggregate runtime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    pub events: u64,
    pub flows_started: usize,
    pub flows_completed: usize,
    pub probes_sent: u64,
    pub probe_responses: u64,
    /// Mid-flow path changes across all flows (reroute churn).
    pub path_changes: u64,
    /// Data packets received out of order (reordering pressure),
    /// harvested when flows retire.
    pub ooo_packets: u64,
    /// Probes that got no response within the probe timeout.
    pub probe_timeouts: u64,
    /// Worker threads the run was driven with (0 until a run records
    /// it; `run_parallel` stores the effective count, ≥ 1).
    pub sim_threads: u64,
    /// Shards the event queue was split into (0 on the single-queue
    /// path).
    pub shards: u64,
    /// Events received across a shard boundary (scheduled by a
    /// different shard's dispatch), summed over all shards.
    pub handoffs: u64,
    /// Pops during which some other shard's head sat at or beyond the
    /// chosen event's conservative horizon — the stall count a
    /// conservative parallel drain of the same trace would have seen.
    pub lookahead_stalls: u64,
}

/// One experiment run.
pub struct Simulation {
    cfg: SimConfig,
    q: RunQueue,
    fabric: Fabric,
    /// Per-host edge LB (None for switch-based schemes).
    edge: Vec<Option<Box<dyn EdgeLb>>>,
    /// Rack sensing handles when the scheme is Hermes.
    hermes_racks: Vec<Rc<RefCell<RackSensing>>>,
    probe_interval: Option<Time>,
    rng_lb: SimRng,
    flows: FlowMap,
    udps: Vec<UdpRt>,
    records: Vec<FlowRecord>,
    pending: std::collections::VecDeque<FlowSpec>,
    /// Staged-dependency workload reacting to completions, if any.
    /// Taken out of the slot while its hook runs (the hook needs the
    /// rest of `self` to schedule released flows).
    driver: Option<Box<dyn FlowDriver>>,
    samplers: Vec<SamplerRt>,
    visibility: VisibilityTracker,
    probe_seq: u64,
    /// Scheduled fault events, indexed by their `KIND_FAULT` token id.
    faults: Vec<FaultEvent>,
    /// Probes awaiting a response, keyed by probe pseudo-flow id
    /// (ordered, so the expiry sweep is deterministic):
    /// `(agent host, dst leaf, path, sent at)`.
    probe_outstanding: BTreeMap<u64, (HostId, LeafId, PathId, Time)>,
    /// A probe unanswered for this long counts as lost.
    probe_timeout: Time,
    /// Cumulative in-order payload bytes delivered across all TCP flows.
    goodput_bytes: u64,
    /// Retransmissions within this window after a path change are
    /// treated as reordering, not loss (no failure-detector signal).
    reorder_grace: Time,
    /// Rolling fingerprint of every dispatched event: two same-seed runs
    /// must agree on this at every point, so comparing final digests is a
    /// whole-run determinism check. Inline by default; `run_parallel`
    /// swaps in the offload sink so the FNV folding runs on a worker
    /// thread (same value either way — the word stream is identical).
    digest: DigestSink,
    /// Reused buffers for transport actions, so per-ACK/per-timer
    /// dispatch allocates nothing in steady state. Taken at each call
    /// site and returned (cleared) by `process_*_actions`.
    send_scratch: Vec<SendAction>,
    recv_scratch: Vec<RecvAction>,
    pub stats: SimStats,
}

impl Simulation {
    pub fn new(cfg: SimConfig) -> Simulation {
        let root = SimRng::new(cfg.seed);
        let topo = cfg.topo.clone();
        let n_hosts = topo.n_hosts();
        let mut fabric = Fabric::new(topo.clone(), root.split(0xFA11));
        let mut rng_lb = root.split(0x1B);
        let mut hermes_racks = Vec::new();
        let mut probe_interval = None;

        let edge: Vec<Option<Box<dyn EdgeLb>>> = match &cfg.scheme {
            Scheme::Ecmp => (0..n_hosts)
                .map(|_| Some(Box::new(Ecmp::new()) as Box<dyn EdgeLb>))
                .collect(),
            Scheme::Drb => (0..n_hosts)
                .map(|_| Some(Box::new(RoundRobinSpray::new()) as Box<dyn EdgeLb>))
                .collect(),
            Scheme::Presto { weighted } => (0..n_hosts)
                .map(|h| {
                    let lb: Box<dyn EdgeLb> = if *weighted {
                        let leaf = topo.host_leaf(HostId(h as u32));
                        Box::new(PrestoSpray::weighted(presto_weights_for(&topo, leaf)))
                    } else {
                        Box::new(PrestoSpray::equal())
                    };
                    Some(lb)
                })
                .collect(),
            Scheme::FlowBender(fb) => (0..n_hosts)
                .map(|_| Some(Box::new(FlowBender::new(*fb)) as Box<dyn EdgeLb>))
                .collect(),
            Scheme::Clove(cl) => (0..n_hosts)
                .map(|_| Some(Box::new(CloveEcn::new(*cl)) as Box<dyn EdgeLb>))
                .collect(),
            Scheme::Hermes(params) => {
                if params.enable_probing && params.probe_interval < Time::MAX {
                    probe_interval = Some(params.probe_interval);
                }
                hermes_racks = (0..topo.n_leaves)
                    .map(|l| RackSensing::shared(&topo, LeafId(l as u16), *params))
                    .collect();
                (0..n_hosts)
                    .map(|h| {
                        let host = HostId(h as u32);
                        let leaf = topo.host_leaf(host);
                        let is_agent = topo.leaf_agent(leaf) == host;
                        let shared = Rc::clone(&hermes_racks[leaf.0 as usize]);
                        Some(Box::new(Hermes::new(shared, is_agent)) as Box<dyn EdgeLb>)
                    })
                    .collect()
            }
            Scheme::LetFlow { flowlet_timeout } => {
                fabric.set_fabric_lb(Box::new(LetFlow::new(*flowlet_timeout)));
                (0..n_hosts).map(|_| None).collect()
            }
            Scheme::Drill { samples } => {
                fabric.set_fabric_lb(Box::new(Drill::new(*samples)));
                (0..n_hosts).map(|_| None).collect()
            }
            Scheme::Conga(cc) => {
                fabric.set_fabric_lb(Box::new(Conga::new(&topo, *cc)));
                (0..n_hosts).map(|_| None).collect()
            }
        };

        let mut q = EventQueue::new();
        if let Some(iv) = probe_interval {
            q.schedule(iv, Event::Global { token: TOK_PROBE });
        }
        // Decorrelate LB randomness from everything else.
        let _ = rng_lb.u64();

        let visibility = VisibilityTracker::with_linger(
            topo.n_leaves,
            topo.hosts_per_leaf,
            topo.n_spines.max(1),
            cfg.visibility_linger,
        );
        let reorder_grace = topo.base_rtt() * 3;
        // A probe is declared lost after several round trips — generous
        // against queueing, far below the failure quiet period.
        let probe_timeout = topo.base_rtt() * 8;
        let mut sim = Simulation {
            cfg,
            q: RunQueue::Single(q),
            fabric,
            edge,
            hermes_racks,
            probe_interval,
            rng_lb,
            flows: FlowMap::default(),
            udps: Vec::new(),
            records: Vec::new(),
            pending: std::collections::VecDeque::new(),
            driver: None,
            samplers: Vec::new(),
            visibility,
            probe_seq: 0,
            faults: Vec::new(),
            probe_outstanding: BTreeMap::new(),
            probe_timeout,
            goodput_bytes: 0,
            reorder_grace,
            digest: DigestSink::inline(),
            send_scratch: Vec::new(),
            recv_scratch: Vec::new(),
            stats: SimStats::default(),
        };
        if let Some(plan) = sim.cfg.fault_plan.clone() {
            sim.set_fault_plan(&plan);
        }
        sim
    }

    // ---- experiment wiring ----------------------------------------

    /// Inject a switch failure (before or during the run).
    pub fn set_spine_failure(&mut self, spine: SpineId, f: SpineFailure) {
        self.fabric.set_spine_failure(spine, f);
    }

    /// Schedule a fault plan: one `Global` event per entry, dispatched
    /// through the shared queue at its instant (so fault injection is
    /// part of the digested event trace). Entries whose time already
    /// passed apply at the current instant, in plan order.
    ///
    /// Panics if [`FaultPlan::validate`] rejects the plan — an invalid
    /// schedule (unpaired `LinkUp`, contradictory overlapping windows,
    /// out-of-range rates) would otherwise run to a nonsense result.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        for ev in plan.events() {
            let idx = self.faults.len() as u64;
            self.faults.push(*ev);
            self.q.schedule(
                ev.at.max(self.q.now()),
                Event::Global {
                    token: pack(KIND_FAULT, idx, 0),
                },
            );
        }
    }

    /// Schedule a TCP flow.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(spec.start >= self.q.now(), "flow arrival in the past");
        assert!(
            spec.id.0 < UDP_FLOW_BASE,
            "flow id collides with pseudo-flows"
        );
        self.pending.push_back(spec);
        self.q
            .schedule(spec.start, Event::Global { token: TOK_ARRIVAL });
    }

    /// Schedule a whole workload.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for s in specs {
            self.add_flow(s);
        }
    }

    /// Install a staged-dependency workload ([`FlowDriver`]): its
    /// initial flows are scheduled now, and every TCP flow completion
    /// is fed back so it can release dependent flows at the completion
    /// instant. Released flows enter the pending queue during the
    /// completing event's dispatch, so `run_to_completion` keeps
    /// running until the driver has nothing left to release.
    pub fn set_driver(&mut self, mut driver: Box<dyn FlowDriver>) {
        let specs = driver.initial(self.q.now());
        assert!(!specs.is_empty(), "driver released no initial flows");
        self.add_flows(specs);
        self.driver = Some(driver);
    }

    /// Add a constant-rate UDP source (Fig. 2's competitor). Returns its
    /// pseudo-flow id. `path = None` lets the fabric LB route it.
    pub fn add_udp(
        &mut self,
        src: HostId,
        dst: HostId,
        rate_bps: u64,
        pkt_len: u32,
        path: Option<PathId>,
        start: Time,
    ) -> FlowId {
        let idx = self.udps.len();
        let flow = FlowId(UDP_FLOW_BASE + idx as u64);
        let interval = Time::tx_time((pkt_len + hermes_net::HDR) as u64, rate_bps);
        self.udps.push(UdpRt {
            flow,
            src,
            dst,
            path,
            len: pkt_len,
            interval,
            received: 0,
        });
        self.q.schedule(
            start.max(self.q.now()),
            Event::Global {
                token: pack(KIND_UDP, idx as u64, 0),
            },
        );
        flow
    }

    /// Register a periodic sampler; returns its index.
    pub fn add_sampler(&mut self, interval: Time, probe: Probe) -> usize {
        let idx = self.samplers.len();
        self.samplers.push(SamplerRt {
            interval,
            probe,
            series: Vec::new(),
        });
        self.q.schedule_in(
            interval,
            Event::Global {
                token: pack(KIND_SAMPLER, idx as u64, 0),
            },
        );
        idx
    }

    /// A sampler's recorded series.
    pub fn sampler_series(&self, idx: usize) -> &[(Time, u64)] {
        &self.samplers[idx].series
    }

    // ---- accessors -------------------------------------------------

    pub fn now(&self) -> Time {
        self.q.now()
    }

    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Rack sensing tables (Hermes runs only).
    pub fn hermes_racks(&self) -> &[Rc<RefCell<RackSensing>>] {
        &self.hermes_racks
    }

    /// Table 2 visibility metrics `(switch_pair, host_pair)`.
    // ANALYZER: allow(float-determinism, reporting-only ratios computed after the run; never fed back into simulation state)
    pub fn visibility(&mut self) -> (f64, f64) {
        let now = self.q.now();
        (
            self.visibility.switch_pair_visibility(now),
            self.visibility.host_pair_visibility(now),
        )
    }

    /// Bytes received by a UDP pseudo-flow.
    pub fn udp_received(&self, flow: FlowId) -> u64 {
        self.udps[(flow.0 - UDP_FLOW_BASE) as usize].received
    }

    /// Cumulative in-order TCP payload bytes delivered across all flows.
    pub fn goodput_bytes(&self) -> u64 {
        self.goodput_bytes
    }

    /// Fingerprint of the event trace dispatched so far. Equal seeds and
    /// workloads must yield equal digests — see
    /// [`crate::selfcheck::assert_deterministic`].
    pub fn trace_digest(&self) -> u64 {
        self.digest.value()
    }

    /// Packet-conservation snapshot of the underlying fabric.
    pub fn conservation(&self) -> hermes_net::ConservationReport {
        self.fabric.conservation_report()
    }

    /// Past-time schedules the event queue clamped to `now` (release
    /// builds only; debug builds assert instead). Nonzero flags a
    /// causality violation — surfaced through
    /// [`crate::selfcheck::RunFingerprint`] so it cannot vanish
    /// silently.
    pub fn queue_clamps(&self) -> u64 {
        self.q.clamp_count()
    }

    /// `TxDone` boundaries handled inline within back-to-back packet
    /// trains instead of as scheduled events. Counted in
    /// [`SimStats::events`] like any dispatched event.
    pub fn trains_inlined(&self) -> u64 {
        self.fabric.stats.trains_inlined
    }

    // ---- run loop --------------------------------------------------

    /// Run until the horizon (absolute simulated time).
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(t) = self.q.peek_time() {
            if t > horizon {
                break;
            }
            let (_, ev) = self.q.pop().expect("peeked event vanished");
            self.dispatch(ev, horizon);
        }
    }

    /// Run until every scheduled TCP flow completed (receiver-side) or
    /// the horizon passes, whichever is first.
    ///
    /// The completion check between events stays sound under train
    /// batching: flows only complete inside `Arrive` dispatches, and a
    /// dispatched `TxDone` can at most inline further `TxDone`s — never
    /// an `Arrive` — so the flow counters are unchanged at every point
    /// where this loop inspects them.
    pub fn run_to_completion(&mut self, horizon: Time) {
        while let Some(t) = self.q.peek_time() {
            if t > horizon {
                break;
            }
            if self.pending.is_empty()
                && self.stats.flows_started > 0
                && self.stats.flows_completed == self.stats.flows_started
            {
                break;
            }
            let (_, ev) = self.q.pop().expect("peeked event vanished");
            self.dispatch(ev, horizon);
        }
    }

    /// [`run_to_completion`](Self::run_to_completion) with the event
    /// queue sharded by fabric locality (one shard per leaf plus a hub
    /// shard for spines and globals) and, for `threads >= 2`, the trace
    /// digest folded on a worker thread. The event order — and with it
    /// the digest, every FCT, and every counter — is byte-identical to
    /// the single-threaded run at any thread count: the sharded merge
    /// preserves the exact `(time, seq)` total order (DESIGN.md §17).
    /// `threads <= 1` stays on the single-queue fast path.
    pub fn run_parallel(&mut self, threads: usize, horizon: Time) {
        self.run_parallel_with(threads, horizon, MergeDefect::None);
    }

    /// [`run_parallel`](Self::run_parallel) with a deliberately broken
    /// merge policy planted — the conformance self-test's hook for
    /// proving the digest and invariant checkers catch merge bugs.
    #[doc(hidden)]
    pub fn run_parallel_with(&mut self, threads: usize, horizon: Time, defect: MergeDefect) {
        let threads = threads.max(1);
        self.stats.sim_threads = threads as u64;
        if threads >= 2 || defect != MergeDefect::None {
            self.shard_queue(defect);
        }
        if threads >= 2 && self.stats.events == 0 {
            // Fresh run: hand digest folding to a worker thread. (A run
            // that already dispatched events keeps its inline digest —
            // the accumulated fold can't move across sinks.)
            self.digest = DigestSink::offload();
        }
        self.run_to_completion(horizon);
        self.digest.seal();
        self.harvest_shard_stats();
    }

    /// Migrate the pending event set from the single queue into the
    /// fabric-locality [`ShardedQueue`]. Draining in pop order means
    /// the global stamps the sharded merge assigns reproduce the single
    /// queue's `(time, seq)` total order exactly, so the switch is
    /// invisible to everything downstream.
    fn shard_queue(&mut self, defect: MergeDefect) {
        if matches!(self.q, RunQueue::Sharded { .. }) {
            return;
        }
        let map = ShardMap::new(self.fabric.topology());
        let mut sq = ShardedQueue::with_defect(map.n_shards(), map.lookahead(), defect);
        if let RunQueue::Single(q) = &mut self.q {
            let resume_at = q.now();
            while let Some((t, ev)) = q.pop() {
                sq.schedule_to(map.shard_of(&ev), t, ev);
            }
            sq.advance_to(resume_at);
        }
        self.q = RunQueue::Sharded { q: sq, map };
    }

    /// Per-shard merge counters from the sharded queue (empty on the
    /// single-queue path). Folded into the selfcheck fingerprint so a
    /// divergence in any one shard's behavior fails determinism checks.
    pub fn shard_counters(&self) -> Vec<ShardStats> {
        self.q.shard_stats()
    }

    fn harvest_shard_stats(&mut self) {
        let per = self.q.shard_stats();
        self.stats.shards = per.len() as u64;
        self.stats.handoffs = per.iter().map(|s| s.handoffs).sum();
        self.stats.lookahead_stalls = per.iter().map(|s| s.stalls).sum();
        if hermes_telemetry::enabled() {
            // ANALYZER: allow(float-determinism, integer counters widened only at the metrics-export boundary)
            hermes_telemetry::gauge_set("sim_threads", self.stats.sim_threads as f64);
            // ANALYZER: allow(float-determinism, same metrics-export boundary as above)
            hermes_telemetry::gauge_set("shard_handoffs", self.stats.handoffs as f64);
            // ANALYZER: allow(float-determinism, same metrics-export boundary as above)
            hermes_telemetry::gauge_set("lookahead_stalls", self.stats.lookahead_stalls as f64);
        }
    }

    /// Dispatch one popped event. `limit` is the run loop's horizon,
    /// bounding how far the fabric may inline packet-train boundaries
    /// (an unbatched run would have left events past the horizon
    /// undispatched and undigested).
    fn dispatch(&mut self, ev: Event, limit: Time) {
        // `now` has already advanced to the event's timestamp.
        self.digest.record(self.q.now(), &ev);
        self.stats.events += 1;
        if hermes_telemetry::enabled() {
            self.telemetry_cadence();
        }
        match ev {
            Event::HostTimer { host: _, token } => self.on_timer(token),
            Event::Global { token } => self.on_global(token),
            other => {
                let inlined_before = self.fabric.stats.trains_inlined;
                let delivered =
                    self.fabric
                        .handle_traced(&mut self.q, other, Some(&mut self.digest), limit);
                // Inlined train boundaries are logical events: they were
                // digested, so they count toward the event total too.
                self.stats.events += self.fabric.stats.trains_inlined - inlined_before;
                if let Some((host, pkt)) = delivered {
                    self.on_deliver(host, pkt);
                }
            }
        }
    }

    fn on_global(&mut self, token: u64) {
        match token {
            TOK_ARRIVAL => {
                let spec = self.pending.pop_front().expect("arrival without spec");
                self.start_flow(spec);
            }
            TOK_PROBE => {
                self.send_probes();
                let iv = self.probe_interval.expect("probe tick without interval");
                self.q.schedule_in(iv, Event::Global { token: TOK_PROBE });
            }
            other => {
                let (kind, id, _) = unpack(other);
                match kind {
                    KIND_SAMPLER => self.on_sampler(id as usize),
                    KIND_UDP => self.on_udp_tick(id as usize),
                    KIND_FAULT => {
                        let action = self.faults[id as usize].action;
                        if hermes_telemetry::enabled() {
                            let kind = fault_kind(&action);
                            hermes_telemetry::emit_with(self.q.now(), || {
                                hermes_telemetry::Record::FaultApplied { kind }
                            });
                        }
                        self.fabric.apply_fault(&action);
                    }
                    _ => unreachable!("bad global token {other}"),
                }
            }
        }
    }

    /// Telemetry metrics cadence: piggybacks on event dispatch (no
    /// scheduled events of its own, so the event stream — and with it
    /// the determinism digest — is identical with telemetry off).
    fn telemetry_cadence(&mut self) {
        let now = self.q.now();
        if !hermes_telemetry::on_cadence(now) {
            return;
        }
        let topo = self.fabric.topology();
        let (n_leaves, n_spines) = (topo.n_leaves, topo.n_spines);
        for l in 0..n_leaves {
            for s in 0..n_spines {
                let (leaf, spine) = (LeafId(l as u16), SpineId(s as u16));
                let up_qbytes = self.fabric.leaf_up_qbytes(leaf, spine);
                let down_qbytes = self.fabric.spine_down_qbytes(spine, leaf);
                hermes_telemetry::emit_with(now, || hermes_telemetry::Record::QueueSample {
                    leaf: l as u32,
                    spine: s as u32,
                    up_qbytes,
                    down_qbytes,
                });
            }
        }
        // ANALYZER: allow(float-determinism, integer counters widened only at the metrics-export boundary)
        hermes_telemetry::gauge_set("goodput_bytes", self.goodput_bytes as f64);
        // ANALYZER: allow(float-determinism, same metrics-export boundary as above)
        hermes_telemetry::gauge_set("flows_live", self.flows.len() as f64);
        hermes_telemetry::sample_metrics(now);
    }

    fn on_sampler(&mut self, idx: usize) {
        let now = self.q.now();
        let value = match self.samplers[idx].probe {
            Probe::LeafUpQueue(l, s) => self.fabric.leaf_up_qbytes(l, s),
            Probe::SpineDownQueue(s, l) => self.fabric.spine_down_qbytes(s, l),
            Probe::FlowDelivered(f) => {
                if f.0 >= UDP_FLOW_BASE && f.0 < PROBE_FLOW_BASE {
                    self.udps[(f.0 - UDP_FLOW_BASE) as usize].received
                } else {
                    self.flows.get(&f.0).map_or_else(
                        || {
                            // Finished flows delivered everything.
                            self.records.iter().find(|r| r.id == f).map_or(0, |r| {
                                if r.finish.is_some() {
                                    r.size
                                } else {
                                    0
                                }
                            })
                        },
                        |fl| fl.receiver.rcv_nxt(),
                    )
                }
            }
            Probe::TotalGoodput => self.goodput_bytes,
        };
        self.samplers[idx].series.push((now, value));
        let iv = self.samplers[idx].interval;
        self.q.schedule_in(
            iv,
            Event::Global {
                token: pack(KIND_SAMPLER, idx as u64, 0),
            },
        );
    }

    fn on_udp_tick(&mut self, idx: usize) {
        let u = &self.udps[idx];
        let (flow, src, dst, len, path, iv) = (u.flow, u.src, u.dst, u.len, u.path, u.interval);
        let mut pkt = Packet::udp(flow, src, dst, len, path.unwrap_or(PathId::UNSET));
        if path.is_none() {
            pkt.path = PathId::UNSET;
        }
        self.fabric.host_send(&mut self.q, pkt);
        self.q.schedule_in(
            iv,
            Event::Global {
                token: pack(KIND_UDP, idx as u64, 0),
            },
        );
    }

    fn start_flow(&mut self, spec: FlowSpec) {
        let now = self.q.now();
        let topo = self.fabric.topology();
        let src_leaf = topo.host_leaf(spec.src);
        let dst_leaf = topo.host_leaf(spec.dst);
        let rec_idx = self.records.len();
        self.records.push(FlowRecord {
            id: spec.id,
            src: spec.src,
            dst: spec.dst,
            size: spec.size,
            start: now,
            finish: None,
        });
        self.visibility
            .flow_started(spec.id, spec.src, spec.dst, src_leaf, dst_leaf, now);
        let ack_path = if src_leaf != dst_leaf {
            let rev = self.fabric.candidates(dst_leaf, src_leaf);
            if rev.is_empty() {
                PathId::UNSET
            } else {
                rev[(spec.id.0 % rev.len() as u64) as usize]
            }
        } else {
            PathId::DIRECT
        };
        let hold = self.cfg.effective_reorder_hold();
        let mut f = FlowRt {
            id: spec.id,
            src: spec.src,
            dst: spec.dst,
            src_leaf,
            dst_leaf,
            sender: Sender::new(self.cfg.transport, spec.size),
            receiver: Receiver::new(spec.size, hold, self.cfg.transport.dupack_thresh),
            current_path: PathId::UNSET,
            ack_path,
            blame_path: PathId::UNSET,
            last_path_change: Time::ZERO,
            timed_out: false,
            bytes_routed: 0,
            pkts_routed: 0,
            rto_gen: 0,
            hold_gen: 0,
            rate: Dre::default_horizon(),
            rec_idx,
            sender_done: false,
        };
        self.stats.flows_started += 1;
        if hermes_telemetry::enabled() {
            // Label the sender so its cwnd/α/RTO snapshots carry the
            // flow id.
            f.sender.set_label(spec.id.0);
            hermes_telemetry::emit_with(now, || hermes_telemetry::Record::FlowStarted {
                flow: spec.id.0,
                src: spec.src.0,
                dst: spec.dst.0,
                size: spec.size,
            });
        }
        let mut buf = std::mem::take(&mut self.send_scratch);
        f.sender.start(now, &mut buf);
        self.flows.insert(spec.id.0, f);
        self.process_send_actions(spec.id.0, buf);
    }

    fn make_ctx(f: &mut FlowRt, now: Time) -> FlowCtx {
        FlowCtx {
            flow: f.id,
            src: f.src,
            dst: f.dst,
            src_leaf: f.src_leaf,
            dst_leaf: f.dst_leaf,
            bytes_sent: f.bytes_routed,
            rate_bps: f.rate.rate_bps(now),
            current_path: f.current_path,
            is_new: f.pkts_routed == 0,
            timed_out: f.timed_out,
            since_change: if f.last_path_change == Time::ZERO {
                Time::MAX
            } else {
                now.saturating_sub(f.last_path_change)
            },
        }
    }

    fn process_send_actions(&mut self, fid: u64, mut actions: Vec<SendAction>) {
        let now = self.q.now();
        for a in actions.drain(..) {
            match a {
                SendAction::Tx { seq, len, retx } => {
                    let Some(f) = self.flows.get_mut(&fid) else {
                        continue;
                    };
                    let inter_rack = f.src_leaf != f.dst_leaf;
                    // The path the flow was on when the loss (if any)
                    // happened — retransmissions are evidence against
                    // *that* path, not whatever path the flow evacuates
                    // to (otherwise one blackhole would poison every
                    // path the flow flees across).
                    let loss_path = f.current_path;
                    let path = if !inter_rack {
                        PathId::DIRECT
                    } else if let Some(lb) = self.edge[f.src.0 as usize].as_mut() {
                        let ctx = Self::make_ctx(f, now);
                        let cands = self.fabric.candidates(f.src_leaf, f.dst_leaf);
                        debug_assert!(!cands.is_empty(), "disconnected racks");
                        lb.select_path(&ctx, cands, now, &mut self.rng_lb)
                    } else {
                        PathId::UNSET // switch-based scheme decides at the leaf
                    };
                    f.timed_out = false;
                    if path != loss_path && loss_path.is_spine() && path.is_spine() {
                        f.last_path_change = now;
                        self.stats.path_changes += 1;
                        if hermes_telemetry::enabled() {
                            let flow = fid;
                            hermes_telemetry::emit_with(now, || {
                                hermes_telemetry::Record::PathChange {
                                    flow,
                                    from_path: telem_path(loss_path),
                                    to_path: telem_path(path),
                                }
                            });
                        }
                    }
                    f.current_path = path;
                    f.bytes_routed += len as u64;
                    f.pkts_routed += 1;
                    f.rate.add(len as u64, now);
                    if !retx {
                        // New data: the loss episode (if any) is over.
                        f.blame_path = PathId::UNSET;
                    }
                    if inter_rack {
                        if let Some(lb) = self.edge[f.src.0 as usize].as_mut() {
                            let ctx = Self::make_ctx(f, now);
                            if retx {
                                // Blame order: an RTO episode blames the
                                // path it timed out on; a fast retransmit
                                // shortly after a path change is almost
                                // surely *reordering*, not loss, and is
                                // not reported; anything else blames the
                                // pre-selection path.
                                let blame = if f.blame_path.is_spine() {
                                    Some(f.blame_path)
                                } else if now.saturating_sub(f.last_path_change)
                                    <= self.reorder_grace
                                {
                                    None
                                } else if loss_path.is_spine() {
                                    Some(loss_path)
                                } else {
                                    Some(path)
                                };
                                if let Some(b) = blame {
                                    lb.on_retransmit(&ctx, b, now);
                                }
                            }
                            lb.on_data_sent(&ctx, path, len as u64, now);
                        }
                    }
                    let mut pkt = Packet::data(f.id, f.src, f.dst, seq, len, retx);
                    pkt.path = path;
                    pkt.ecn_capable = self.cfg.transport.ecn;
                    self.fabric.host_send(&mut self.q, pkt);
                }
                SendAction::ArmRto { deadline } => {
                    if let Some(f) = self.flows.get_mut(&fid) {
                        f.rto_gen += 1;
                        self.q.schedule(
                            deadline.max(now),
                            Event::HostTimer {
                                host: f.src,
                                token: pack(KIND_RTO, fid, f.rto_gen),
                            },
                        );
                    }
                }
                SendAction::DisarmRto => {
                    if let Some(f) = self.flows.get_mut(&fid) {
                        f.rto_gen += 1;
                    }
                }
                SendAction::FullyAcked => {
                    if let Some(f) = self.flows.get_mut(&fid) {
                        f.sender_done = true;
                        self.stats.ooo_packets += f.receiver.ooo_packets();
                        if f.src_leaf != f.dst_leaf {
                            if let Some(lb) = self.edge[f.src.0 as usize].as_mut() {
                                let ctx = Self::make_ctx(f, now);
                                lb.on_flow_finished(&ctx, now);
                            }
                        }
                    }
                    // Retire the flow: its record stays, trailing events
                    // (stale timers, duplicate ACKs) are ignored.
                    self.flows.remove(&fid);
                }
            }
        }
        self.send_scratch = actions;
    }

    fn process_recv_actions(&mut self, fid: u64, mut actions: Vec<RecvAction>) {
        let now = self.q.now();
        let mut completed = false;
        for a in actions.drain(..) {
            match a {
                RecvAction::SendAck {
                    ack,
                    ecn_echo,
                    echo_ts,
                    echo_path,
                    echo_retx,
                } => {
                    let Some(f) = self.flows.get(&fid) else {
                        continue;
                    };
                    let info = AckInfo {
                        ack,
                        ecn_echo,
                        echo_ts,
                        echo_path,
                        echo_retx,
                    };
                    let mut pkt = Packet::ack(f.id, f.dst, f.src, info);
                    pkt.path = f.ack_path;
                    self.fabric.host_send(&mut self.q, pkt);
                }
                RecvAction::ArmHold { deadline } => {
                    if let Some(f) = self.flows.get_mut(&fid) {
                        f.hold_gen += 1;
                        self.q.schedule(
                            deadline.max(now),
                            Event::HostTimer {
                                host: f.dst,
                                token: pack(KIND_HOLD, fid, f.hold_gen),
                            },
                        );
                    }
                }
                RecvAction::DisarmHold => {
                    if let Some(f) = self.flows.get_mut(&fid) {
                        f.hold_gen += 1;
                    }
                }
                RecvAction::Complete => {
                    completed = true;
                    if let Some(f) = self.flows.get(&fid) {
                        self.records[f.rec_idx].finish = Some(now);
                        if hermes_telemetry::enabled() {
                            let fct = now.saturating_sub(self.records[f.rec_idx].start);
                            let fct_ns = fct.as_ns();
                            hermes_telemetry::emit_with(now, || {
                                hermes_telemetry::Record::FlowCompleted { flow: fid, fct_ns }
                            });
                            hermes_telemetry::hist_observe(
                                "fct_us",
                                hermes_telemetry::FCT_EDGES_US,
                                // ANALYZER: allow(float-determinism, integer microseconds widened at the metrics-export boundary)
                                fct.as_us() as f64,
                            );
                            hermes_telemetry::counter_add("flows_completed", 1);
                        }
                    }
                    self.visibility.flow_finished(FlowId(fid), now);
                    self.stats.flows_completed += 1;
                }
            }
        }
        self.recv_scratch = actions;
        if completed {
            // Feed the completion to the staged-dependency driver (if
            // any) and schedule whatever it releases. The slot is taken
            // for the call so `add_flows` can borrow `self` freely;
            // released flows start at `now`, which `add_flow` accepts.
            if let Some(mut d) = self.driver.take() {
                let mut released = Vec::new();
                d.on_flow_completed(FlowId(fid), now, &mut released);
                self.add_flows(released);
                self.driver = Some(d);
            }
        }
    }

    fn on_timer(&mut self, token: u64) {
        let (kind, fid, gen) = unpack(token);
        let now = self.q.now();
        match kind {
            KIND_RTO => {
                let Some(f) = self.flows.get_mut(&fid) else {
                    return;
                };
                if (f.rto_gen & GEN_MASK) != gen || f.sender_done {
                    return; // stale timer
                }
                f.timed_out = true;
                if f.current_path.is_spine() {
                    f.blame_path = f.current_path;
                }
                let path = f.current_path;
                if f.src_leaf != f.dst_leaf {
                    if let Some(lb) = self.edge[f.src.0 as usize].as_mut() {
                        let ctx = Self::make_ctx(f, now);
                        lb.on_timeout(&ctx, path, now);
                    }
                }
                let mut buf = std::mem::take(&mut self.send_scratch);
                f.sender.on_rto(now, &mut buf);
                self.process_send_actions(fid, buf);
            }
            KIND_HOLD => {
                let Some(f) = self.flows.get_mut(&fid) else {
                    return;
                };
                if (f.hold_gen & GEN_MASK) != gen {
                    return;
                }
                let mut buf = std::mem::take(&mut self.recv_scratch);
                f.receiver.on_hold_timer(now, &mut buf);
                self.process_recv_actions(fid, buf);
            }
            _ => unreachable!("bad timer token"),
        }
    }

    fn on_deliver(&mut self, host: HostId, pkt: Box<Packet>) {
        self.deliver(host, &pkt);
        // The payload has been fully consumed; hand the allocation back
        // to the fabric's packet arena.
        self.fabric.recycle(pkt);
    }

    fn deliver(&mut self, host: HostId, pkt: &Packet) {
        let now = self.q.now();
        match pkt.kind {
            PacketKind::Data { seq, len, retx } => {
                let Some(f) = self.flows.get_mut(&pkt.flow.0) else {
                    return; // flow already fully retired
                };
                debug_assert_eq!(f.dst, host);
                let before = f.receiver.rcv_nxt();
                let mut buf = std::mem::take(&mut self.recv_scratch);
                f.receiver.on_data(
                    SegmentIn {
                        seq,
                        len,
                        ecn: pkt.ecn_marked,
                        sent_at: pkt.sent_at,
                        path: pkt.path,
                        retx,
                    },
                    now,
                    &mut buf,
                );
                // Goodput = in-order delivery progress: duplicates and
                // out-of-order arrivals advance nothing.
                self.goodput_bytes += f.receiver.rcv_nxt().saturating_sub(before);
                self.process_recv_actions(pkt.flow.0, buf);
            }
            PacketKind::Ack {
                ack,
                ecn_echo,
                echo_ts,
                echo_path,
                echo_retx,
            } => {
                let Some(f) = self.flows.get_mut(&pkt.flow.0) else {
                    return;
                };
                debug_assert_eq!(f.src, host);
                let rtt = if echo_retx || echo_ts == Time::MAX {
                    None
                } else {
                    Some(now.saturating_sub(echo_ts))
                };
                let delta = ack.saturating_sub(f.sender.snd_una());
                if f.src_leaf != f.dst_leaf {
                    if let Some(lb) = self.edge[host.0 as usize].as_mut() {
                        let ctx = Self::make_ctx(f, now);
                        lb.on_ack(&ctx, echo_path, rtt, ecn_echo, delta, now);
                    }
                }
                let mut buf = std::mem::take(&mut self.send_scratch);
                f.sender.on_ack(ack, ecn_echo, rtt, now, &mut buf);
                self.process_send_actions(pkt.flow.0, buf);
            }
            PacketKind::ProbeReq => {
                // Reflect immediately on the same path, high priority.
                let resp = Packet::probe_resp(pkt);
                self.fabric.host_send(&mut self.q, resp);
            }
            PacketKind::ProbeResp { req_ecn, echo_ts } => {
                self.stats.probe_responses += 1;
                self.probe_outstanding.remove(&pkt.flow.0);
                let rtt = now.saturating_sub(echo_ts);
                let dst_leaf = self.fabric.topology().host_leaf(pkt.src);
                if let Some(lb) = self.edge[host.0 as usize].as_mut() {
                    lb.on_probe_result(dst_leaf, pkt.path, rtt, req_ecn, now);
                }
            }
            PacketKind::Udp => {
                let idx = (pkt.flow.0 - UDP_FLOW_BASE) as usize;
                if let Some(u) = self.udps.get_mut(idx) {
                    u.received += (pkt.size - hermes_net::HDR) as u64;
                }
            }
        }
    }

    fn send_probes(&mut self) {
        let now = self.q.now();
        // Expire unanswered probes first: each is negative evidence for
        // the probed path (recovery sensing), reported to the agent that
        // sent it. The sweep runs on the probe tick, so loss detection
        // granularity is one probe interval — fine next to the quiet
        // period. BTreeMap iteration keeps the order deterministic.
        let cutoff = now.saturating_sub(self.probe_timeout);
        let expired: Vec<u64> = self
            .probe_outstanding
            .iter()
            .filter(|&(_, &(_, _, _, sent))| sent <= cutoff)
            .map(|(&k, _)| k)
            .collect();
        for k in expired {
            let (agent, dst_leaf, path, _) = self
                .probe_outstanding
                .remove(&k)
                .expect("expired key just listed");
            self.stats.probe_timeouts += 1;
            if let Some(lb) = self.edge[agent.0 as usize].as_mut() {
                lb.on_probe_timeout(dst_leaf, path, now);
            }
        }
        let topo = self.fabric.topology();
        let agents: Vec<(HostId, LeafId)> = (0..topo.n_leaves)
            .map(|l| (topo.leaf_agent(LeafId(l as u16)), LeafId(l as u16)))
            .collect();
        for (agent, _leaf) in agents {
            let Some(lb) = self.edge[agent.0 as usize].as_mut() else {
                continue;
            };
            let plan = lb.probe_plan(now, &mut self.rng_lb);
            for t in plan {
                let dst_agent = self.fabric.topology().leaf_agent(t.dst_leaf);
                let flow = FlowId(PROBE_FLOW_BASE + self.probe_seq);
                self.probe_seq += 1;
                let pkt = Packet::probe_req(flow, agent, dst_agent, t.path);
                self.stats.probes_sent += 1;
                self.probe_outstanding
                    .insert(flow.0, (agent, t.dst_leaf, t.path, now));
                self.fabric.host_send(&mut self.q, pkt);
            }
        }
    }
}
