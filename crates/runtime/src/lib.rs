//! # hermes-runtime — the experiment harness
//!
//! Wires together the substrates:
//!
//! * a [`SimConfig`] names a topology, a [`Scheme`], a transport
//!   profile, and a master seed;
//! * [`Simulation`] instantiates the fabric, one transport state machine
//!   pair per flow, the load balancer (per-host `EdgeLb`s or one
//!   `FabricLb` in the switches), Hermes' per-rack probe agents, UDP
//!   competitors, and periodic queue/progress samplers;
//! * everything shares one deterministic event queue, so a (config,
//!   seed) pair fully determines every packet of a run.
//!
//! Every bench binary and integration test builds on this crate.

mod config;
pub mod selfcheck;
mod sim;

pub use config::{presto_weights_for, Scheme, SimConfig, DEFAULT_REORDER_HOLD};
pub use selfcheck::{assert_deterministic, fingerprint, fingerprint_parallel, RunFingerprint};
pub use sim::{Probe, SimStats, Simulation};
