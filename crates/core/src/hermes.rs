//! Hermes: the load balancer (§3).
//!
//! Each host runs a [`Hermes`] instance; all instances under one rack
//! share a [`RackSensing`] table (the paper's probe agents share probed
//! information "among all hypervisors under the same rack", §3.1.3).
//! One host per rack is the *probe agent*: every probe interval it
//! probes, per destination rack, two random paths plus the previously
//! best one (power of two choices with memory), and the results land in
//! the shared table.
//!
//! Path selection is Algorithm 2 — *timely yet cautious rerouting*:
//!
//! * New flows, flows that hit an RTO, and flows on failed paths are
//!   (re)placed immediately: best *good* path by local sending rate,
//!   else best *gray* path, else a random non-failed path.
//! * A flow on a *congested* path is rerouted only if it is worth it:
//!   it must have sent more than `S` bytes (small flows finish before
//!   the new path pays off), be sending below `R` (fast flows lose more
//!   from the reordering dip than they gain), and the target must be
//!   *notably* better (`Δ_RTT` and `Δ_ECN` margins) — pruning the
//!   vigorous rerouting that causes congestion mismatch (§2.2.2).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hermes_net::{Dre, EdgeLb, FlowCtx, LeafId, PathId, ProbeTarget, Topology};
use hermes_sim::{SimRng, Time};

use crate::params::HermesParams;
use crate::state::{PathState, PathType};

/// Telemetry view of a path's class: the failure phase when suspected,
/// Algorithm 1's congestion class otherwise. Read-only — tracing must
/// never tick the sensing state machine.
fn telem_class(st: &PathState, p: &HermesParams, now: Time) -> hermes_telemetry::PathClass {
    use hermes_telemetry::PathClass as C;
    if st.probation() {
        return C::Probation;
    }
    match st.peek_class(p, now) {
        PathType::Good => C::Good,
        PathType::Gray => C::Gray,
        PathType::Congested => C::Congested,
        PathType::Failed => C::Failed,
    }
}

/// Telemetry path encoding: spine index, or -1 for unset/direct.
fn path_code(p: PathId) -> i64 {
    if p.is_spine() {
        i64::from(p.0)
    } else {
        -1
    }
}

/// Rack-shared sensing state: one `PathState` per (destination rack,
/// spine path), plus decision counters for diagnostics.
pub struct RackSensing {
    pub params: HermesParams,
    my_leaf: LeafId,
    /// `state[dst_leaf][spine]`.
    state: Vec<Vec<PathState>>,
    /// Static live-candidate sets per destination leaf.
    candidates: Vec<Vec<PathId>>,
    /// Decision counters.
    pub stat_reroutes: u64,
    pub stat_initial: u64,
    pub stat_failovers: u64,
    pub stat_probes: u64,
    /// Paths re-admitted from probation.
    pub stat_recoveries: u64,
    /// When this rack first declared any path failed (time-to-detect).
    pub first_failure_at: Option<Time>,
    /// When this rack first re-admitted a path (time-to-readmit).
    pub first_recovery_at: Option<Time>,
    /// Telemetry only: last class reported per `[dst_leaf][spine]`, so
    /// [`RackSensing::trace_class`] emits transitions, not every read.
    /// Untouched unless a telemetry sink is installed.
    trace_last: Vec<Vec<Option<hermes_telemetry::PathClass>>>,
}

impl RackSensing {
    /// Build the rack table for `my_leaf` over `topo`.
    pub fn new(topo: &Topology, my_leaf: LeafId, params: HermesParams) -> RackSensing {
        let candidates = (0..topo.n_leaves)
            .map(|d| {
                if d == my_leaf.0 as usize {
                    Vec::new()
                } else {
                    topo.path_candidates(my_leaf, LeafId(d as u16))
                }
            })
            .collect();
        RackSensing {
            params,
            my_leaf,
            state: vec![vec![PathState::default(); topo.n_spines]; topo.n_leaves],
            trace_last: vec![vec![None; topo.n_spines]; topo.n_leaves],
            candidates,
            stat_reroutes: 0,
            stat_initial: 0,
            stat_failovers: 0,
            stat_probes: 0,
            stat_recoveries: 0,
            first_failure_at: None,
            first_recovery_at: None,
        }
    }

    /// Shared handle for all hosts of the rack.
    pub fn shared(
        topo: &Topology,
        my_leaf: LeafId,
        params: HermesParams,
    ) -> Rc<RefCell<RackSensing>> {
        Rc::new(RefCell::new(RackSensing::new(topo, my_leaf, params)))
    }

    #[inline]
    fn st(&mut self, dst: LeafId, path: PathId) -> &mut PathState {
        &mut self.state[dst.0 as usize][path.0 as usize]
    }

    /// Read-only view of a path's state (tests, diagnostics).
    pub fn path_state(&self, dst: LeafId, path: PathId) -> &PathState {
        &self.state[dst.0 as usize][path.0 as usize]
    }

    /// Characterize one path now.
    pub fn characterize(&mut self, dst: LeafId, path: PathId, now: Time) -> PathType {
        let p = self.params;
        let was_failed = self.st(dst, path).failed();
        let t = self.st(dst, path).characterize(&p, now);
        if !was_failed && t == PathType::Failed {
            // The random-drop rule fires lazily inside characterize, so
            // detection is noted here as well as in the timeout hook.
            self.note_failure(now);
        }
        if hermes_telemetry::enabled() {
            self.trace_path(dst, path, now);
        }
        t
    }

    /// Telemetry: emit a `PathTransition` record if `path`'s class
    /// toward `dst` changed since the last report. Paths start as
    /// `Gray` (never sampled), matching Algorithm 1's default.
    fn trace_path(&mut self, dst: LeafId, path: PathId, now: Time) {
        let p = self.params;
        let to = telem_class(self.path_state(dst, path), &p, now);
        let slot = &mut self.trace_last[dst.0 as usize][path.0 as usize];
        let from = slot.unwrap_or(hermes_telemetry::PathClass::Gray);
        *slot = Some(to);
        if from == to {
            return; // no change (or first observation of the default)
        }
        let leaf = u32::from(self.my_leaf.0);
        hermes_telemetry::emit_with(now, || hermes_telemetry::Record::PathTransition {
            leaf,
            dst_leaf: u32::from(dst.0),
            path: u32::from(path.0),
            from,
            to,
        });
    }

    /// Record that some path was just declared failed.
    fn note_failure(&mut self, now: Time) {
        self.first_failure_at.get_or_insert(now);
    }

    /// Record that some path was just re-admitted from probation.
    fn note_recovery(&mut self, now: Time) {
        self.stat_recoveries += 1;
        self.first_recovery_at.get_or_insert(now);
    }

    /// The freshest-best path toward `dst` by RTT (probe memory).
    fn best_path(&self, dst: LeafId) -> Option<PathId> {
        self.candidates[dst.0 as usize]
            .iter()
            .filter_map(|&p| {
                let s = &self.state[dst.0 as usize][p.0 as usize];
                if s.failed() {
                    return None;
                }
                s.t_rtt().map(|r| (r, p))
            })
            .min_by_key(|&(r, _)| r)
            .map(|(_, p)| p)
    }
}

/// One host's Hermes instance.
pub struct Hermes {
    shared: Rc<RefCell<RackSensing>>,
    /// Whether this host is its rack's probe agent.
    is_agent: bool,
    /// Host-local per-path aggregate sending rate `r_p`.
    r_p: BTreeMap<(LeafId, PathId), Dre>,
}

impl Hermes {
    pub fn new(shared: Rc<RefCell<RackSensing>>, is_agent: bool) -> Hermes {
        Hermes {
            shared,
            is_agent,
            r_p: BTreeMap::new(),
        }
    }

    pub fn sensing(&self) -> Rc<RefCell<RackSensing>> {
        Rc::clone(&self.shared)
    }

    fn rp_bps(&mut self, dst: LeafId, path: PathId, now: Time) -> f64 {
        self.r_p
            .get_mut(&(dst, path))
            .map_or(0.0, |d| d.rate_bps(now))
    }

    /// Among `set`, the path with the smallest local sending rate
    /// (Algorithm 2's `Argmin r_p`). Ties — which are the common case,
    /// since most paths carry none of this host's traffic — break
    /// *randomly*: a deterministic tie-break would herd every host onto
    /// the same lowest-indexed path (§3.1.3's synchronization concern).
    fn argmin_rp(
        &mut self,
        dst: LeafId,
        set: &[PathId],
        now: Time,
        rng: &mut SimRng,
    ) -> Option<PathId> {
        let rates: Vec<(f64, PathId)> =
            set.iter().map(|&p| (self.rp_bps(dst, p, now), p)).collect();
        let min = rates.iter().map(|&(r, _)| r).fold(f64::INFINITY, f64::min);
        let tied: Vec<PathId> = rates
            .iter()
            .filter(|&&(r, _)| r <= min * 1.001 + 1.0)
            .map(|&(_, p)| p)
            .collect();
        if tied.is_empty() {
            None
        } else {
            Some(tied[rng.below(tied.len())])
        }
    }
}

/// `cur − cand > Δ` on both RTT and ECN fraction (§3.2; RTT alone in
/// RTT-only mode).
fn notably_better(params: &HermesParams, cur: &PathState, cand: &PathState) -> bool {
    let (Some(cur_rtt), Some(cand_rtt)) = (cur.t_rtt(), cand.t_rtt()) else {
        return false;
    };
    if cur_rtt.saturating_sub(cand_rtt) <= params.delta_rtt {
        return false;
    }
    params.rtt_only || cur.f_ecn() - cand.f_ecn() > params.delta_ecn
}

impl EdgeLb for Hermes {
    fn select_path(
        &mut self,
        ctx: &FlowCtx,
        candidates: &[PathId],
        now: Time,
        rng: &mut SimRng,
    ) -> PathId {
        let params = self.shared.borrow().params;
        let d = ctx.dst_leaf;
        // Classify every candidate once.
        let classes: Vec<(PathId, PathType)> = {
            let mut sh = self.shared.borrow_mut();
            candidates
                .iter()
                .map(|&p| (p, sh.characterize(d, p, now)))
                .collect()
        };
        let class_of = |p: PathId| classes.iter().find(|(q, _)| *q == p).map(|(_, t)| *t);
        let cur = ctx.current_path;
        let cur_class = if cur.is_spine() { class_of(cur) } else { None };

        let of = |t: PathType| -> Vec<PathId> {
            classes
                .iter()
                .filter(|(_, c)| *c == t)
                .map(|(p, _)| *p)
                .collect()
        };

        // Lines 3–12: new flow, post-timeout, or failed path.
        let needs_placement = ctx.is_new
            || ctx.timed_out
            || cur_class.is_none()
            || cur_class == Some(PathType::Failed);
        if needs_placement {
            let good = of(PathType::Good);
            let chosen = if let Some(p) = self.argmin_rp(d, &good, now, rng) {
                p
            } else {
                let gray = of(PathType::Gray);
                if let Some(p) = self.argmin_rp(d, &gray, now, rng) {
                    p
                } else {
                    // Random path with no failure; if everything is
                    // failed, random among all (keep trying).
                    let mut non_failed = of(PathType::Congested);
                    if non_failed.is_empty() {
                        non_failed = candidates.to_vec();
                    }
                    non_failed[rng.below(non_failed.len())]
                }
            };
            // Algorithm 2 line 12: a failed path is eligible only when
            // every candidate has failed (keep trying *somewhere*).
            debug_assert!(
                classes.iter().all(|&(_, c)| c == PathType::Failed)
                    || class_of(chosen) != Some(PathType::Failed),
                "Algorithm 2 placed a flow on a failed path despite a live alternative"
            );
            let mut sh = self.shared.borrow_mut();
            let verdict = if cur_class == Some(PathType::Failed) {
                sh.stat_failovers += 1;
                hermes_telemetry::RerouteVerdict::Failover
            } else {
                sh.stat_initial += 1;
                if ctx.timed_out {
                    hermes_telemetry::RerouteVerdict::TimeoutReplace
                } else {
                    hermes_telemetry::RerouteVerdict::Initial
                }
            };
            hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Reroute {
                flow: ctx.flow.0,
                dst_leaf: u32::from(d.0),
                from_path: path_code(cur),
                to_path: path_code(chosen),
                verdict,
            });
            return chosen;
        }

        // Lines 13–23: reroute off a congested path, cautiously.
        if cur_class == Some(PathType::Congested) && params.enable_reroute {
            // The three cautious gates, split out so telemetry can name
            // the first one that held (plain comparisons: hoisting them
            // does not change Algorithm 2's behaviour).
            let big_enough = ctx.bytes_sent > params.size_threshold;
            let slow_enough = ctx.rate_bps < params.rate_threshold_bps;
            let cooled_down = ctx.since_change > params.reroute_cooldown;
            if big_enough && slow_enough && cooled_down {
                let cur_snapshot = *self.shared.borrow().path_state(d, cur);
                let notably = |sh: &RackSensing, p: PathId| {
                    notably_better(&params, &cur_snapshot, sh.path_state(d, p))
                };
                let pick = {
                    let sh = self.shared.borrow();
                    let good: Vec<PathId> = of(PathType::Good)
                        .into_iter()
                        .filter(|&p| notably(&sh, p))
                        .collect();
                    if good.is_empty() {
                        of(PathType::Gray)
                            .into_iter()
                            .filter(|&p| notably(&sh, p))
                            .collect()
                    } else {
                        good
                    }
                };
                if let Some(p) = self.argmin_rp(d, &pick, now, rng) {
                    // Reroute targets come from the good/gray classes
                    // only — never a failed path.
                    debug_assert_ne!(
                        class_of(p),
                        Some(PathType::Failed),
                        "cautious reroute chose a failed path"
                    );
                    self.shared.borrow_mut().stat_reroutes += 1;
                    hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Reroute {
                        flow: ctx.flow.0,
                        dst_leaf: u32::from(d.0),
                        from_path: path_code(cur),
                        to_path: path_code(p),
                        verdict: hermes_telemetry::RerouteVerdict::Rerouted,
                    });
                    return p;
                }
                hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Reroute {
                    flow: ctx.flow.0,
                    dst_leaf: u32::from(d.0),
                    from_path: path_code(cur),
                    to_path: path_code(cur),
                    verdict: hermes_telemetry::RerouteVerdict::HeldNoMargin,
                });
            } else if hermes_telemetry::enabled() {
                let verdict = if !big_enough {
                    hermes_telemetry::RerouteVerdict::HeldSize
                } else if !slow_enough {
                    hermes_telemetry::RerouteVerdict::HeldRate
                } else {
                    hermes_telemetry::RerouteVerdict::HeldCooldown
                };
                hermes_telemetry::emit_with(now, || hermes_telemetry::Record::Reroute {
                    flow: ctx.flow.0,
                    dst_leaf: u32::from(d.0),
                    from_path: path_code(cur),
                    to_path: path_code(cur),
                    verdict,
                });
            }
            return cur; // do not reroute
        }

        cur // good/gray current path: stay
    }

    fn on_ack(
        &mut self,
        ctx: &FlowCtx,
        path: PathId,
        rtt: Option<Time>,
        ecn: bool,
        _bytes_acked: u64,
        now: Time,
    ) {
        if !path.is_spine() {
            return; // intra-rack or synthetic (reorder-flush) ACKs
        }
        let mut sh = self.shared.borrow_mut();
        let p = sh.params;
        if sh.st(ctx.dst_leaf, path).sample(rtt, ecn, &p, now) {
            sh.note_recovery(now);
        }
        if hermes_telemetry::enabled() {
            sh.trace_path(ctx.dst_leaf, path, now);
        }
    }

    fn on_timeout(&mut self, ctx: &FlowCtx, path: PathId, now: Time) {
        if !path.is_spine() {
            return;
        }
        let mut sh = self.shared.borrow_mut();
        let p = sh.params;
        if sh.st(ctx.dst_leaf, path).on_timeout(&p, now) {
            sh.note_failure(now);
        }
        if hermes_telemetry::enabled() {
            sh.trace_path(ctx.dst_leaf, path, now);
        }
    }

    fn on_retransmit(&mut self, ctx: &FlowCtx, path: PathId, now: Time) {
        if !path.is_spine() {
            return;
        }
        let mut sh = self.shared.borrow_mut();
        let p = sh.params;
        sh.st(ctx.dst_leaf, path).on_retransmit(&p, now);
        if hermes_telemetry::enabled() {
            // A retransmission can demote Probation → Failed.
            sh.trace_path(ctx.dst_leaf, path, now);
        }
    }

    fn on_data_sent(&mut self, ctx: &FlowCtx, path: PathId, bytes: u64, now: Time) {
        if !path.is_spine() {
            return;
        }
        {
            let mut sh = self.shared.borrow_mut();
            let p = sh.params;
            sh.st(ctx.dst_leaf, path).on_sent(&p, now);
        }
        self.r_p
            .entry((ctx.dst_leaf, path))
            .or_insert_with(Dre::default_horizon)
            .add(bytes, now);
    }

    fn probe_plan(&mut self, now: Time, rng: &mut SimRng) -> Vec<ProbeTarget> {
        if !self.is_agent {
            return Vec::new();
        }
        let mut sh = self.shared.borrow_mut();
        if !sh.params.enable_probing {
            return Vec::new();
        }
        let my = sh.my_leaf;
        let params = sh.params;
        let choices = params.probe_choices;
        let mut plan = Vec::new();
        for d in 0..sh.candidates.len() {
            let dst = LeafId(d as u16);
            if dst == my {
                continue;
            }
            let cands = sh.candidates[d].clone();
            if cands.is_empty() {
                continue;
            }
            let mut targets: Vec<PathId> = rng
                .sample_distinct(cands.len(), choices)
                .into_iter()
                .map(|i| cands[i])
                .collect();
            // "an extra probe on the previously observed best path"
            if let Some(best) = sh.best_path(dst) {
                if !targets.contains(&best) {
                    targets.push(best);
                }
            }
            // Recovery sensing: every path in probation is probed each
            // tick — probes are the only traffic allowed to test it, so
            // re-admission latency is bounded by
            // recovery_probe_count × probe_interval.
            for &p in &cands {
                if sh.st(dst, p).in_probation(&params, now) {
                    if hermes_telemetry::enabled() {
                        // Probe planning is where Failed ages out into
                        // Probation — report the transition here.
                        sh.trace_path(dst, p, now);
                    }
                    if !targets.contains(&p) {
                        targets.push(p);
                    }
                }
            }
            plan.extend(targets.into_iter().map(|path| ProbeTarget {
                dst_leaf: dst,
                path,
            }));
        }
        sh.stat_probes += plan.len() as u64;
        plan
    }

    fn on_probe_result(&mut self, dst_leaf: LeafId, path: PathId, rtt: Time, ecn: bool, now: Time) {
        if !path.is_spine() {
            return;
        }
        let mut sh = self.shared.borrow_mut();
        let p = sh.params;
        if sh.st(dst_leaf, path).sample(Some(rtt), ecn, &p, now) {
            sh.note_recovery(now);
        }
        if hermes_telemetry::enabled() {
            sh.trace_path(dst_leaf, path, now);
        }
    }

    fn on_probe_timeout(&mut self, dst_leaf: LeafId, path: PathId, now: Time) {
        if !path.is_spine() {
            return;
        }
        let mut sh = self.shared.borrow_mut();
        sh.st(dst_leaf, path).on_probe_lost(now);
        if hermes_telemetry::enabled() {
            sh.trace_path(dst_leaf, path, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Rc<RefCell<RackSensing>>, Hermes, HermesParams) {
        let topo = Topology::sim_baseline();
        let params = HermesParams::from_topology(&topo);
        let shared = RackSensing::shared(&topo, LeafId(0), params);
        let h = Hermes::new(Rc::clone(&shared), true);
        (shared, h, params)
    }

    fn ctx_new() -> FlowCtx {
        FlowCtx {
            flow: hermes_net::FlowId(1),
            src: hermes_net::HostId(0),
            dst: hermes_net::HostId(20),
            src_leaf: LeafId(0),
            dst_leaf: LeafId(1),
            bytes_sent: 0,
            rate_bps: 0.0,
            current_path: PathId::UNSET,
            is_new: true,
            timed_out: false,
            since_change: Time::MAX,
        }
    }

    fn cands() -> Vec<PathId> {
        (0..8u16).map(PathId).collect()
    }

    /// Feed a path signals that classify it as `good`/`congested`.
    fn feed(
        sh: &Rc<RefCell<RackSensing>>,
        dst: LeafId,
        p: PathId,
        rtt: Time,
        ecn: bool,
        now: Time,
    ) {
        let mut s = sh.borrow_mut();
        let params = s.params;
        for _ in 0..100 {
            s.st(dst, p).sample(Some(rtt), ecn, &params, now);
        }
    }

    #[test]
    fn new_flow_prefers_good_path() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let good_rtt = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(5), good_rtt, false, now);
        // All other paths unsampled (gray). The good one must win.
        let p = h.select_path(&ctx_new(), &cands(), now, &mut rng);
        assert_eq!(p, PathId(5));
        assert_eq!(sh.borrow().stat_initial, 1);
    }

    #[test]
    fn new_flow_balances_by_local_rate_among_good() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let good_rtt = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(2), good_rtt, false, now);
        feed(&sh, LeafId(1), PathId(6), good_rtt, false, now);
        // Load path 2 locally.
        let c = ctx_new();
        h.on_data_sent(&c, PathId(2), 1_000_000, now);
        let p = h.select_path(&c, &cands(), now, &mut rng);
        assert_eq!(p, PathId(6), "least-loaded good path wins");
    }

    #[test]
    fn sticks_to_gray_current_path() {
        let (_sh, mut h, _params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(3); // unsampled → gray
        let p = h.select_path(&c, &cands(), now, &mut rng);
        assert_eq!(p, PathId(3), "no reason to move off a gray path");
    }

    #[test]
    fn congested_path_reroutes_only_when_cautious_checks_pass() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let hot = params.t_rtt_high + Time::from_us(100);
        let cold = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(0), hot, true, now); // congested
        feed(&sh, LeafId(1), PathId(4), cold, false, now); // good
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(0);
        // Small flow: stays despite congestion.
        c.bytes_sent = 10_000;
        c.rate_bps = 0.0;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(0));
        // Large slow flow: reroutes to the notably better good path.
        c.bytes_sent = params.size_threshold + 1;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(4));
        assert_eq!(sh.borrow().stat_reroutes, 1);
        // High-rate flow: stays (R check).
        c.rate_bps = params.rate_threshold_bps * 2.0;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(0));
    }

    #[test]
    fn reroute_cooldown_blocks_flipflop() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let hot = params.t_rtt_high + Time::from_us(100);
        let cold = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(0), hot, true, now);
        feed(&sh, LeafId(1), PathId(4), cold, false, now);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(0);
        c.bytes_sent = params.size_threshold + 1;
        // Just rerouted: must stay despite the notably better path.
        c.since_change = params.reroute_cooldown / 2;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(0));
        // Cooldown elapsed: free to move.
        c.since_change = params.reroute_cooldown + Time::from_us(1);
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(4));
    }

    #[test]
    fn no_reroute_without_notable_margin() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let hot = params.t_rtt_high + Time::from_us(100);
        // Alternative barely better than current: margin not met.
        let alt = hot.saturating_sub(params.delta_rtt) + Time::from_us(1);
        feed(&sh, LeafId(1), PathId(0), hot, true, now);
        feed(&sh, LeafId(1), PathId(4), alt, true, now);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(0);
        c.bytes_sent = params.size_threshold + 1;
        assert_eq!(
            h.select_path(&c, &cands(), now, &mut rng),
            PathId(0),
            "both Δ_RTT and Δ_ECN must be exceeded"
        );
        assert_eq!(sh.borrow().stat_reroutes, 0);
    }

    #[test]
    fn timeout_triggers_immediate_replacement() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let good_rtt = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(7), good_rtt, false, now);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(2);
        c.timed_out = true;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(7));
    }

    #[test]
    fn failed_path_is_evacuated_and_avoided() {
        let (sh, mut h, _params) = setup();
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let c0 = ctx_new();
        // Three timeouts on path 2 → failed.
        for _ in 0..3 {
            h.on_timeout(&c0, PathId(2), now);
        }
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(2);
        let p = h.select_path(&c, &cands(), now, &mut rng);
        assert_ne!(p, PathId(2));
        assert_eq!(sh.borrow().stat_failovers, 1);
        // New flows also avoid it.
        for seed in 0..20 {
            let mut r = SimRng::new(seed);
            assert_ne!(h.select_path(&ctx_new(), &cands(), now, &mut r), PathId(2));
        }
    }

    #[test]
    fn failed_path_recovers_through_probation_probing() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let t0 = Time::from_ms(1);
        let c0 = ctx_new();
        for _ in 0..3 {
            h.on_timeout(&c0, PathId(2), t0);
        }
        assert_eq!(sh.borrow().first_failure_at, Some(t0));
        // Quiet period passes with no evidence → the probe plan must
        // target the probation path toward dst leaf 1.
        let t1 = t0 + params.failure_quiet_period;
        let plan = h.probe_plan(t1, &mut rng);
        assert!(
            plan.iter()
                .any(|t| t.dst_leaf == LeafId(1) && t.path == PathId(2)),
            "probation path must be probed: {plan:?}"
        );
        // Enough successful probes re-admit it.
        for k in 0..params.recovery_probe_count {
            h.on_probe_result(
                LeafId(1),
                PathId(2),
                Time::from_us(60),
                false,
                t1 + params.probe_interval * u64::from(k),
            );
        }
        let s = sh.borrow();
        assert_eq!(s.stat_recoveries, 1);
        assert!(s.first_recovery_at.is_some());
        assert!(!s.path_state(LeafId(1), PathId(2)).failed());
    }

    #[test]
    fn still_dead_path_is_never_readmitted() {
        let (sh, mut h, params) = setup();
        let mut rng = SimRng::new(1);
        let t0 = Time::from_ms(1);
        let c0 = ctx_new();
        for _ in 0..3 {
            h.on_timeout(&c0, PathId(2), t0);
        }
        // Cycle: quiet period → probation → probe lost → failed again.
        let mut t = t0;
        for _ in 0..5 {
            t += params.failure_quiet_period;
            let _ = h.probe_plan(t, &mut rng);
            h.on_probe_timeout(LeafId(1), PathId(2), t);
            assert!(
                sh.borrow().path_state(LeafId(1), PathId(2)).failed(),
                "a path whose probes keep dying must stay failed"
            );
        }
        assert_eq!(sh.borrow().stat_recoveries, 0);
    }

    #[test]
    fn reroute_ablation_pins_congested_flows() {
        let topo = Topology::sim_baseline();
        let mut params = HermesParams::from_topology(&topo);
        params.enable_reroute = false;
        let sh = RackSensing::shared(&topo, LeafId(0), params);
        let mut h = Hermes::new(Rc::clone(&sh), true);
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let hot = params.t_rtt_high + Time::from_us(100);
        let cold = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(0), hot, true, now);
        feed(&sh, LeafId(1), PathId(4), cold, false, now);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(0);
        c.bytes_sent = params.size_threshold + 1;
        assert_eq!(h.select_path(&c, &cands(), now, &mut rng), PathId(0));
    }

    #[test]
    fn probe_plan_is_power_of_two_choices_plus_best() {
        let (sh, mut h, _params) = setup();
        let mut rng = SimRng::new(1);
        // Give dst leaf 3 a known-best path.
        feed(
            &sh,
            LeafId(3),
            PathId(6),
            Time::from_us(70),
            false,
            Time::from_ms(1),
        );
        let plan = h.probe_plan(Time::from_ms(1), &mut rng);
        // 7 destination racks; 2 or 3 probes each.
        let per_dst: Vec<usize> = (0..8u16)
            .filter(|&d| d != 0)
            .map(|d| plan.iter().filter(|t| t.dst_leaf == LeafId(d)).count())
            .collect();
        assert!(per_dst.iter().all(|&n| (2..=3).contains(&n)), "{per_dst:?}");
        // dst 3's plan includes the remembered best path.
        assert!(plan
            .iter()
            .any(|t| t.dst_leaf == LeafId(3) && t.path == PathId(6)));
        // Non-agents never probe.
        let mut follower = Hermes::new(Rc::clone(&sh), false);
        assert!(follower.probe_plan(Time::from_ms(1), &mut rng).is_empty());
    }

    #[test]
    fn probing_ablation_disables_plans() {
        let topo = Topology::sim_baseline();
        let mut params = HermesParams::from_topology(&topo);
        params.enable_probing = false;
        let sh = RackSensing::shared(&topo, LeafId(0), params);
        let mut h = Hermes::new(sh, true);
        let mut rng = SimRng::new(1);
        assert!(h.probe_plan(Time::from_ms(1), &mut rng).is_empty());
    }

    #[test]
    fn probe_results_update_shared_state() {
        let (sh, mut h, params) = setup();
        let now = Time::from_ms(2);
        h.on_probe_result(LeafId(4), PathId(1), Time::from_us(65), false, now);
        let mut s = sh.borrow_mut();
        assert_eq!(s.characterize(LeafId(4), PathId(1), now), PathType::Good);
        let _ = params;
    }

    #[test]
    fn probe_agents_share_state_with_followers() {
        let (sh, mut agent, params) = setup();
        let mut follower = Hermes::new(Rc::clone(&sh), false);
        let now = Time::from_ms(1);
        let good_rtt = params.t_rtt_low - Time::from_us(10);
        // The agent's probe result...
        agent.on_probe_result(LeafId(1), PathId(3), good_rtt, false, now);
        for _ in 0..50 {
            agent.on_probe_result(LeafId(1), PathId(3), good_rtt, false, now);
        }
        // ...guides the follower's placement.
        let mut rng = SimRng::new(2);
        let p = follower.select_path(&ctx_new(), &cands(), now, &mut rng);
        assert_eq!(p, PathId(3));
    }

    /// Drain the sink and keep only records matching `keep`.
    fn drained<F: Fn(&hermes_telemetry::Record) -> bool>(keep: F) -> Vec<hermes_telemetry::Record> {
        hermes_telemetry::drain()
            .into_iter()
            .map(|e| e.record)
            .filter(keep)
            .collect()
    }

    #[test]
    fn telemetry_path_transitions_fire_on_failure_and_recovery() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::{PathClass, Record};
        let (_sh, mut h, params) = setup();
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        let t0 = Time::from_ms(1);
        let c0 = ctx_new();
        for _ in 0..3 {
            h.on_timeout(&c0, PathId(2), t0);
        }
        let tr = drained(|r| matches!(r, Record::PathTransition { .. }));
        assert_eq!(
            tr,
            vec![Record::PathTransition {
                leaf: 0,
                dst_leaf: 1,
                path: 2,
                from: PathClass::Gray,
                to: PathClass::Failed,
            }],
            "exactly one Gray→Failed transition at the blackhole rule"
        );
        // Quiet period → probation (reported from probe planning).
        let t1 = t0 + params.failure_quiet_period;
        let mut rng = SimRng::new(1);
        let _ = h.probe_plan(t1, &mut rng);
        let tr = drained(|r| matches!(r, Record::PathTransition { .. }));
        assert!(
            tr.contains(&Record::PathTransition {
                leaf: 0,
                dst_leaf: 1,
                path: 2,
                from: PathClass::Failed,
                to: PathClass::Probation,
            }),
            "Failed→Probation must be traced: {tr:?}"
        );
        // Successful probes re-admit: Probation → a live class.
        for k in 0..params.recovery_probe_count {
            h.on_probe_result(
                LeafId(1),
                PathId(2),
                Time::from_us(60),
                false,
                t1 + params.probe_interval * u64::from(k),
            );
        }
        let tr = drained(|r| matches!(r, Record::PathTransition { .. }));
        assert!(
            tr.iter().any(|r| matches!(
                r,
                Record::PathTransition {
                    path: 2,
                    from: PathClass::Probation,
                    to: PathClass::Good | PathClass::Gray,
                    ..
                }
            )),
            "re-admission must be traced: {tr:?}"
        );
        hermes_telemetry::uninstall();
    }

    #[test]
    fn telemetry_reroute_verdicts_cover_algorithm2_branches() {
        if !hermes_telemetry::compiled() {
            return;
        }
        use hermes_telemetry::{Record, RerouteVerdict};
        let (sh, mut h, params) = setup();
        hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
        let mut rng = SimRng::new(1);
        let now = Time::from_ms(1);
        let verdict_of = |r: &Record| match r {
            Record::Reroute { verdict, .. } => Some(*verdict),
            _ => None,
        };
        // New flow → Initial.
        let _ = h.select_path(&ctx_new(), &cands(), now, &mut rng);
        let v: Vec<_> = drained(|r| matches!(r, Record::Reroute { .. }))
            .iter()
            .filter_map(verdict_of)
            .collect();
        assert_eq!(v, vec![RerouteVerdict::Initial]);
        // Congested current path, small flow → HeldSize.
        let hot = params.t_rtt_high + Time::from_us(100);
        let cold = params.t_rtt_low - Time::from_us(10);
        feed(&sh, LeafId(1), PathId(0), hot, true, now);
        feed(&sh, LeafId(1), PathId(4), cold, false, now);
        let mut c = ctx_new();
        c.is_new = false;
        c.current_path = PathId(0);
        c.bytes_sent = 10;
        let _ = h.select_path(&c, &cands(), now, &mut rng);
        let v: Vec<_> = drained(|r| matches!(r, Record::Reroute { .. }))
            .iter()
            .filter_map(verdict_of)
            .collect();
        assert_eq!(v, vec![RerouteVerdict::HeldSize]);
        // Gates pass with a notably better path → Rerouted.
        c.bytes_sent = params.size_threshold + 1;
        let to = h.select_path(&c, &cands(), now, &mut rng);
        assert_eq!(to, PathId(4));
        let rr = drained(|r| matches!(r, Record::Reroute { .. }));
        assert_eq!(
            rr,
            vec![Record::Reroute {
                flow: 1,
                dst_leaf: 1,
                from_path: 0,
                to_path: 4,
                verdict: RerouteVerdict::Rerouted,
            }]
        );
        // Failed current path → Failover.
        for _ in 0..3 {
            h.on_timeout(&c, PathId(0), now);
        }
        let _ = h.select_path(&c, &cands(), now, &mut rng);
        let v: Vec<_> = drained(|r| matches!(r, Record::Reroute { .. }))
            .iter()
            .filter_map(verdict_of)
            .collect();
        assert_eq!(v, vec![RerouteVerdict::Failover]);
        hermes_telemetry::uninstall();
    }

    #[test]
    fn telemetry_off_thread_emits_nothing() {
        // No sink installed on this thread: the same hooks must stay
        // silent (and the trace_last grid cold).
        let (_sh, mut h, _params) = setup();
        let c0 = ctx_new();
        for _ in 0..3 {
            h.on_timeout(&c0, PathId(2), Time::from_ms(1));
        }
        assert!(hermes_telemetry::drain().is_empty());
    }

    #[test]
    fn non_spine_signals_are_ignored() {
        let (sh, mut h, _params) = setup();
        let c = ctx_new();
        h.on_ack(
            &c,
            PathId::DIRECT,
            Some(Time::from_us(50)),
            true,
            1460,
            Time::from_ms(1),
        );
        h.on_timeout(&c, PathId::UNSET, Time::from_ms(1));
        h.on_retransmit(&c, PathId::DIRECT, Time::from_ms(1));
        h.on_data_sent(&c, PathId::UNSET, 1460, Time::from_ms(1));
        // Nothing recorded anywhere.
        let s = sh.borrow();
        for d in 0..8u16 {
            for p in 0..8u16 {
                assert!(s.path_state(LeafId(d), PathId(p)).t_rtt().is_none());
            }
        }
    }
}
