//! Hermes parameters (Table 4) and the §3.3 rules of thumb that derive
//! them from a topology.

use hermes_net::Topology;
use hermes_sim::Time;

/// All tunables of Hermes, with the paper's recommended defaults.
#[derive(Clone, Copy, Debug)]
pub struct HermesParams {
    // --- Congestion sensing (§3.1.1) ---
    /// `T_ECN`: ECN fraction above which a path may be congested (40%).
    pub t_ecn: f64,
    /// `T_RTT_low`: RTT below which a path may be good
    /// (base RTT + 20–40 µs; default +20 µs).
    pub t_rtt_low: Time,
    /// `T_RTT_high`: RTT above which a path may be congested
    /// (base RTT + 1.5 × one-hop delay).
    pub t_rtt_high: Time,
    // --- Failure sensing (§3.1.2) ---
    /// Timeouts with zero ACKs that flag a blackhole (3).
    pub timeout_fail_count: u32,
    /// Retransmission fraction that flags silent random drops (1%).
    pub retx_fail_fraction: f64,
    /// The τ window over which the retransmission fraction is measured
    /// (10 ms).
    pub retx_window: Time,
    /// Minimum packets sent in a window before the fraction is trusted.
    pub retx_min_samples: u32,
    // --- Probing (§3.1.3) ---
    /// Probe interval (100–500 µs; default 500 µs). `Time::MAX` disables.
    pub probe_interval: Time,
    /// Random probes per destination rack per interval (power of two
    /// choices), plus one on the previously best path.
    pub probe_choices: usize,
    // --- Cautious rerouting (§3.2) ---
    /// `Δ_RTT`: a path must beat the current one by this much RTT
    /// (one-hop delay).
    pub delta_rtt: Time,
    /// `Δ_ECN`: and by this much ECN fraction (3–10%; default 5%).
    pub delta_ecn: f64,
    /// `S`: minimum bytes sent before a flow may be rerouted
    /// (100–800 KB; default 600 KB).
    pub size_threshold: u64,
    /// `R`: flows sending faster than this are not rerouted
    /// (20–40% of link capacity; default 30%).
    pub rate_threshold_bps: f64,
    /// Minimum time between congestion-driven reroutes of one flow.
    /// Not in Table 4, but required in practice: each reroute costs a
    /// reordering dip (Fig. 6's R₁ → ½R₁), so a reroute only pays off
    /// once the flow has recovered and actually banked the gain —
    /// several tens of RTTs. Without this, a loaded fabric shows
    /// persistent "notably better" gaps between busy paths and flows
    /// chase them dozens of times per second (set to ~50 base RTTs).
    pub reroute_cooldown: Time,
    // --- Failure recovery (transient faults) ---
    /// Quiet period after the last failure evidence before a Failed path
    /// enters probation. Sized to several blackhole-detection times
    /// (3 × min RTO) so a still-dead path re-fails from its own probe
    /// losses before ever being trusted — "timely yet cautious" applied
    /// to recovery.
    pub failure_quiet_period: Time,
    /// Consecutive successful probes a path in probation must return
    /// before it is re-admitted for data.
    pub recovery_probe_count: u32,
    /// Disable recovery entirely: failed paths stay failed for the run
    /// (the pre-recovery behaviour, useful for ablations).
    pub enable_recovery: bool,
    // --- Sensing estimator details ---
    /// EWMA gain for the per-path ECN fraction.
    pub ecn_ewma: f64,
    /// EWMA gain for the per-path RTT.
    pub rtt_ewma: f64,
    /// A path with no sample newer than this is Gray (unknown).
    pub stale_horizon: Time,
    // --- Ablation switches (§5.4, Fig. 18) and §5.4's TCP mode ---
    /// Disable active probing ("Hermes without probing").
    pub enable_probing: bool,
    /// Disable congested-path rerouting ("Hermes without rerouting";
    /// new-flow placement and failure evasion stay active).
    pub enable_reroute: bool,
    /// Sense with RTT only (§5.4: Hermes over plain TCP, no ECN).
    pub rtt_only: bool,
}

impl HermesParams {
    /// Apply the §3.3 rules of thumb to a topology: thresholds derived
    /// from its base RTT, one-hop delay, and host link rate.
    pub fn from_topology(topo: &Topology) -> HermesParams {
        let base = topo.base_rtt();
        let hop = topo.one_hop_delay();
        HermesParams {
            t_ecn: 0.40,
            t_rtt_low: base + Time::from_us(20),
            t_rtt_high: base + hop.mul_f64(1.5),
            timeout_fail_count: 3,
            retx_fail_fraction: 0.01,
            retx_window: Time::from_ms(10),
            retx_min_samples: 30,
            probe_interval: Time::from_us(500),
            probe_choices: 2,
            delta_rtt: hop,
            delta_ecn: 0.05,
            size_threshold: 600_000,
            rate_threshold_bps: 0.30 * topo.host_link.rate_bps as f64,
            reroute_cooldown: base * 50,
            failure_quiet_period: Time::from_ms(25),
            recovery_probe_count: 3,
            enable_recovery: true,
            ecn_ewma: 1.0 / 16.0,
            rtt_ewma: 0.25,
            stale_horizon: Time::from_ms(5),
            enable_probing: true,
            enable_reroute: true,
            rtt_only: false,
        }
    }

    /// The paper's explicit testbed configuration (§3.3): on the 1 Gbps
    /// testbed the authors pick T_RTT_high = 300 µs and Δ_RTT = 120 µs
    /// rather than the raw one-hop-delay formula (which, with a 30 KB
    /// marking threshold at 1 Gbps, would put T_RTT_high at ~435 µs and
    /// make the "congested" class nearly unreachable).
    pub fn paper_testbed(topo: &Topology) -> HermesParams {
        let mut p = HermesParams::from_topology(topo);
        let base = topo.base_rtt();
        p.t_rtt_high = base.max(Time::from_us(100)) + Time::from_us(200);
        p.delta_rtt = Time::from_us(120);
        p
    }

    /// §5.4's TCP variant: RTT-only sensing with 1.5× larger RTT
    /// thresholds.
    pub fn for_tcp(topo: &Topology) -> HermesParams {
        let mut p = HermesParams::from_topology(topo);
        let base = topo.base_rtt();
        p.rtt_only = true;
        p.t_rtt_high = base + (p.t_rtt_high - base).mul_f64(1.5);
        p.delta_rtt = p.delta_rtt.mul_f64(1.5);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_baseline_matches_paper_regime() {
        let topo = Topology::sim_baseline();
        let p = HermesParams::from_topology(&topo);
        // §3.3: T_RTT_high ≈ 180 µs in simulations, Δ_RTT ≈ 80 µs.
        let high = p.t_rtt_high.as_us();
        assert!((150..=210).contains(&high), "T_RTT_high {high}us");
        assert_eq!(p.delta_rtt, Time::from_us(80));
        assert!((p.rate_threshold_bps - 3e9).abs() < 1.0);
        assert_eq!(p.size_threshold, 600_000);
        assert!(p.t_rtt_low < p.t_rtt_high);
    }

    #[test]
    fn tcp_mode_relaxes_rtt_thresholds() {
        let topo = Topology::sim_baseline();
        let d = HermesParams::from_topology(&topo);
        let t = HermesParams::for_tcp(&topo);
        assert!(t.rtt_only);
        assert!(t.t_rtt_high > d.t_rtt_high);
        assert!(t.delta_rtt > d.delta_rtt);
        assert_eq!(t.t_ecn, d.t_ecn);
    }

    #[test]
    fn testbed_thresholds_scale_with_one_gig() {
        let topo = Topology::testbed();
        let p = HermesParams::from_topology(&topo);
        // 1G: one-hop delay = 30 KB / 1 Gbps = 240 µs.
        assert_eq!(p.delta_rtt, Time::from_us(240));
        assert!((p.rate_threshold_bps - 0.3e9).abs() < 1.0);
    }
}
