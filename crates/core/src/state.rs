//! Per-path sensing state and Algorithm 1 (path characterization).
//!
//! One [`PathState`] exists per (destination rack, path) in each rack's
//! shared sensing table ([`RackSensing`]). Transport signals (ACK
//! ECN/RTT, retransmissions, timeouts) and probe results update it;
//! [`PathState::characterize`] implements Algorithm 1:
//!
//! | ECN | RTT | outcome |
//! |---|---|---|
//! | low | low | **good** |
//! | high | high | **congested** |
//! | otherwise | | **gray** |
//!
//! plus the failure rules of §3.1.2: ≥3 timeouts with nothing ACKed
//! (blackhole), or a high retransmission fraction on a path that is not
//! congested (silent random drops).
//!
//! Failure is sticky *within a quiet period*, then ages into recovery
//! ("timely yet cautious" applied to the un-failing direction):
//!
//! ```text
//! Ok ──(blackhole/random-drop rule)──▶ Failed
//! Failed ──(no failure evidence for failure_quiet_period)──▶ Probation
//! Probation ──(recovery_probe_count successful probes)──▶ Ok
//! Probation ──(timeout / retransmit / lost probe)──▶ Failed
//! ```
//!
//! `Failed` and `Probation` both read as [`PathType::Failed`] to data
//! placement: a path in probation carries probes only, and every piece
//! of failure evidence (timeouts, retransmissions, unanswered probes)
//! refreshes the quiet-period clock, so a path that is still broken
//! keeps re-failing off its own probe losses and is never re-admitted.
//! Setting `enable_recovery = false` restores the old terminally-sticky
//! behaviour for ablations.

use hermes_sim::Time;

use crate::params::HermesParams;

/// Algorithm 1's outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathType {
    Good,
    Gray,
    Congested,
    Failed,
}

/// The failure/recovery phase of a path (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FailPhase {
    /// No failure suspected; the path may carry data.
    Ok,
    /// Failure rule fired; no data, waiting out the quiet period.
    Failed,
    /// Quiet period elapsed; probes (not data) decide re-admission.
    Probation,
}

/// Sensing state of one path toward one destination rack (Table 3).
#[derive(Clone, Copy, Debug)]
pub struct PathState {
    /// EWMA fraction of ECN-marked packets (`f_ECN`).
    f_ecn: f64,
    /// EWMA RTT (`t_RTT`); `None` until first sample.
    t_rtt: Option<Time>,
    /// Time of the freshest RTT/ECN sample.
    last_sample: Time,
    /// Consecutive timeouts with nothing ACKed since (`n_timeout`).
    n_timeout: u32,
    /// Retransmission-fraction window (`f_retransmission`).
    win_start: Time,
    win_sent: u32,
    win_retx: u32,
    /// Same-window congestion evidence: ECN-marked / total samples and
    /// the worst RTT seen. The random-drop rule must judge a window's
    /// retransmissions against the window's *own* conditions — a burst
    /// of congestion drops whose queue has already drained would
    /// otherwise read as "loss on an uncongested path".
    win_samples: u32,
    win_ecn: u32,
    win_max_rtt: Time,
    /// Fraction from the last completed window.
    retx_fraction: f64,
    retx_fraction_valid: bool,
    /// Whether the last completed window showed congestion evidence.
    last_win_congested: bool,
    /// Consecutive completed windows satisfying the random-drop
    /// predicate (the rule fires on the second, filtering one-off
    /// incast bursts).
    bad_windows: u32,
    /// Failure/recovery phase.
    phase: FailPhase,
    /// Time of the most recent failure evidence (timeout, retransmit,
    /// or lost probe) while not Ok — the quiet-period clock.
    last_fail_evidence: Time,
    /// Consecutive successful probes while in probation.
    probation_ok: u32,
}

impl Default for PathState {
    fn default() -> PathState {
        PathState {
            f_ecn: 0.0,
            t_rtt: None,
            last_sample: Time::ZERO,
            n_timeout: 0,
            win_start: Time::ZERO,
            win_sent: 0,
            win_retx: 0,
            win_samples: 0,
            win_ecn: 0,
            win_max_rtt: Time::ZERO,
            retx_fraction: 0.0,
            retx_fraction_valid: false,
            last_win_congested: false,
            bad_windows: 0,
            phase: FailPhase::Ok,
            last_fail_evidence: Time::ZERO,
            probation_ok: 0,
        }
    }
}

impl PathState {
    /// Current ECN fraction estimate.
    pub fn f_ecn(&self) -> f64 {
        self.f_ecn
    }

    /// Current RTT estimate.
    pub fn t_rtt(&self) -> Option<Time> {
        self.t_rtt
    }

    /// Whether the path is barred from carrying data (Failed *or* in
    /// probation — probation paths carry probes only).
    pub fn failed(&self) -> bool {
        self.phase != FailPhase::Ok
    }

    /// Whether the path is currently in the probation phase. Read-only
    /// (no age-out side effect): telemetry's view of the failure state
    /// machine. Placement and probe planning use [`Self::in_probation`],
    /// which ages Failed paths out first.
    pub fn probation(&self) -> bool {
        self.phase == FailPhase::Probation
    }

    /// Whether the path is in probation, aging it out of Failed first if
    /// the quiet period has elapsed. Probe planning uses this to target
    /// candidate-recovery paths.
    pub fn in_probation(&mut self, p: &HermesParams, now: Time) -> bool {
        self.age_out(p, now);
        self.phase == FailPhase::Probation
    }

    /// Move Failed → Probation once the quiet period passes with no new
    /// failure evidence.
    fn age_out(&mut self, p: &HermesParams, now: Time) {
        if self.phase == FailPhase::Failed
            && p.enable_recovery
            && now.saturating_sub(self.last_fail_evidence) >= p.failure_quiet_period
        {
            self.phase = FailPhase::Probation;
            self.probation_ok = 0;
        }
    }

    /// Refresh the quiet-period clock and demote Probation → Failed.
    /// No effect on healthy paths.
    fn fail_evidence(&mut self, now: Time) {
        if self.phase == FailPhase::Ok {
            return;
        }
        self.last_fail_evidence = self.last_fail_evidence.max(now);
        self.phase = FailPhase::Failed;
        self.probation_ok = 0;
    }

    /// A probe sent on this path got no response — negative evidence.
    /// Healthy paths ignore it (a probe lost to congestion must not
    /// fail a path); suspected paths have their quiet period restarted.
    pub fn on_probe_lost(&mut self, now: Time) {
        self.fail_evidence(now);
    }

    /// Timeouts observed since the last ACK on this path.
    pub fn n_timeout(&self) -> u32 {
        self.n_timeout
    }

    /// The last completed τ-window's retransmission fraction, if valid.
    pub fn retx_fraction(&self) -> Option<f64> {
        self.retx_fraction_valid.then_some(self.retx_fraction)
    }

    /// Record an RTT+ECN sample (data ACK or probe response). Returns
    /// true iff this sample just re-admitted a path from probation: in
    /// probation every successful round-trip counts, and the
    /// `recovery_probe_count`-th one restores the path to service with
    /// its failure counters and τ-window cleared (stale pre-failure
    /// retransmission history must not instantly re-fail it).
    pub fn sample(&mut self, rtt: Option<Time>, ecn: bool, p: &HermesParams, now: Time) -> bool {
        self.roll_window(p, now);
        self.win_samples += 1;
        if ecn {
            self.win_ecn += 1;
        }
        if let Some(r) = rtt {
            self.win_max_rtt = self.win_max_rtt.max(r);
        }
        self.f_ecn = (1.0 - p.ecn_ewma) * self.f_ecn + p.ecn_ewma * if ecn { 1.0 } else { 0.0 };
        if let Some(r) = rtt {
            self.t_rtt = Some(match self.t_rtt {
                None => r,
                Some(prev) => Time::from_ns(
                    ((1.0 - p.rtt_ewma) * prev.as_ns() as f64 + p.rtt_ewma * r.as_ns() as f64)
                        as u64,
                ),
            });
        }
        self.last_sample = now;
        // Any ACK on the path clears the blackhole suspicion.
        self.n_timeout = 0;
        if self.phase == FailPhase::Probation {
            self.probation_ok += 1;
            if self.probation_ok >= p.recovery_probe_count {
                self.phase = FailPhase::Ok;
                self.probation_ok = 0;
                self.bad_windows = 0;
                self.win_start = now;
                self.win_sent = 0;
                self.win_retx = 0;
                self.win_samples = 0;
                self.win_ecn = 0;
                self.win_max_rtt = Time::ZERO;
                self.retx_fraction_valid = false;
                return true;
            }
        }
        false
    }

    /// A data segment was sent on this path.
    pub fn on_sent(&mut self, p: &HermesParams, now: Time) {
        self.roll_window(p, now);
        self.win_sent += 1;
    }

    /// A segment was retransmitted on this path.
    pub fn on_retransmit(&mut self, p: &HermesParams, now: Time) {
        self.roll_window(p, now);
        self.win_retx += 1;
        // A retransmission on a suspected path is failure evidence.
        self.fail_evidence(now);
    }

    /// A flow on this path hit its RTO. Returns true if this pushed the
    /// path into the failed state (blackhole rule).
    pub fn on_timeout(&mut self, p: &HermesParams, now: Time) -> bool {
        self.n_timeout += 1;
        // "Once it observes 3 timeouts on a path, it further checks if
        //  any of the packets on that path have been successfully ACKed"
        // — n_timeout is reset by every ACK, so reaching the threshold
        // means nothing was ACKed in between.
        let newly = self.phase == FailPhase::Ok && self.n_timeout >= p.timeout_fail_count;
        if newly {
            self.phase = FailPhase::Failed;
            self.last_fail_evidence = now;
            #[cfg(feature = "dbgfail")]
            eprintln!("FAIL-TIMEOUT");
        } else {
            self.fail_evidence(now);
        }
        newly
    }

    /// Close the τ window if due, publishing the retransmission fraction
    /// together with the window's congestion evidence.
    fn roll_window(&mut self, p: &HermesParams, now: Time) {
        if now.saturating_sub(self.win_start) >= p.retx_window {
            if self.win_sent >= p.retx_min_samples {
                self.retx_fraction = self.win_retx as f64 / self.win_sent as f64;
                self.retx_fraction_valid = true;
                // Congestion evidence *within* this window: meaningful
                // marking, or an RTT excursion past T_RTT_high.
                let ecn_frac = if self.win_samples > 0 {
                    self.win_ecn as f64 / self.win_samples as f64
                } else {
                    0.0
                };
                self.last_win_congested =
                    ecn_frac > p.t_ecn / 2.0 || self.win_max_rtt > p.t_rtt_high;
                if self.retx_fraction > p.retx_fail_fraction && !self.last_win_congested {
                    self.bad_windows += 1;
                } else {
                    self.bad_windows = 0;
                }
            } else {
                self.retx_fraction_valid = false;
            }
            self.win_sent = 0;
            self.win_retx = 0;
            self.win_samples = 0;
            self.win_ecn = 0;
            self.win_max_rtt = Time::ZERO;
            self.win_start = now;
        }
    }

    /// Check the silent-random-drop rule: two consecutive τ windows with
    /// a high retransmission fraction and no congestion evidence mark
    /// the path failed (Algorithm 1 lines 8–9; the per-window evidence
    /// is evaluated when the window rolls). Returns the flag.
    pub fn check_random_drop_failure(&mut self, now: Time) -> bool {
        if self.phase != FailPhase::Ok {
            return true;
        }
        if self.bad_windows >= 2 {
            self.phase = FailPhase::Failed;
            self.last_fail_evidence = now;
            #[cfg(feature = "dbgfail")]
            eprintln!("FAIL-RETX frac={}", self.retx_fraction);
        }
        self.failed()
    }

    /// Algorithm 1 lines 2–7: good / gray / congested from ECN and RTT.
    fn congestion_class(&self, p: &HermesParams, now: Time) -> PathType {
        let Some(rtt) = self.t_rtt else {
            return PathType::Gray; // never sampled
        };
        if now.saturating_sub(self.last_sample) > p.stale_horizon {
            return PathType::Gray; // information too old to act on
        }
        if p.rtt_only {
            // §5.4: TCP mode, no ECN signal.
            if rtt < p.t_rtt_low {
                return PathType::Good;
            }
            if rtt > p.t_rtt_high {
                return PathType::Congested;
            }
            return PathType::Gray;
        }
        if self.f_ecn < p.t_ecn && rtt < p.t_rtt_low {
            PathType::Good
        } else if self.f_ecn > p.t_ecn && rtt > p.t_rtt_high {
            PathType::Congested
        } else {
            PathType::Gray
        }
    }

    /// Read-only classification: the class [`Self::characterize`]
    /// would report *right now*, without advancing the failure state
    /// machine (no age-out, no random-drop check). Telemetry reads
    /// this so that tracing can never perturb sensing behaviour.
    pub fn peek_class(&self, p: &HermesParams, now: Time) -> PathType {
        if self.failed() {
            PathType::Failed
        } else {
            self.congestion_class(p, now)
        }
    }

    /// Full Algorithm 1: failure rules first, then congestion classes.
    pub fn characterize(&mut self, p: &HermesParams, now: Time) -> PathType {
        // Algorithm 1's classes are mutually exclusive only if the RTT
        // band is well-formed: good demands rtt < t_rtt_low, congested
        // demands rtt > t_rtt_high.
        debug_assert!(
            p.t_rtt_low <= p.t_rtt_high,
            "RTT thresholds inverted: the good and congested classes must be disjoint"
        );
        self.age_out(p, now);
        if self.check_random_drop_failure(now) {
            return PathType::Failed;
        }
        self.congestion_class(p, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::Topology;

    fn params() -> HermesParams {
        HermesParams::from_topology(&Topology::sim_baseline())
    }

    fn fresh(p: &HermesParams, rtt_us: u64, ecn_frac: f64, now: Time) -> PathState {
        let mut s = PathState::default();
        // Feed enough samples to move the EWMAs to the targets.
        for i in 0..200 {
            let ecn = (i as f64 % 1.0) < ecn_frac; // placeholder, replaced below
            let _ = ecn;
            s.sample(
                Some(Time::from_us(rtt_us)),
                (i as f64 / 200.0) % 1.0 < ecn_frac,
                p,
                now,
            );
        }
        // Force the exact fractions for determinism.
        s.f_ecn = ecn_frac;
        s
    }

    #[test]
    fn algorithm1_truth_table() {
        let p = params();
        let now = Time::from_ms(1);
        let low_rtt = p.t_rtt_low.as_us() - 10;
        let high_rtt = p.t_rtt_high.as_us() + 50;
        let mid_rtt = (p.t_rtt_low.as_us() + p.t_rtt_high.as_us()) / 2;
        // low ECN + low RTT = good.
        assert_eq!(
            fresh(&p, low_rtt, 0.05, now).characterize(&p, now),
            PathType::Good
        );
        // high ECN + high RTT = congested.
        assert_eq!(
            fresh(&p, high_rtt, 0.8, now).characterize(&p, now),
            PathType::Congested
        );
        // high ECN + low RTT = gray ("not enough ECN samples or all
        // delay at one hop").
        assert_eq!(
            fresh(&p, low_rtt, 0.8, now).characterize(&p, now),
            PathType::Gray
        );
        // low ECN + high RTT = gray ("network stack incurs high RTT").
        assert_eq!(
            fresh(&p, high_rtt, 0.05, now).characterize(&p, now),
            PathType::Gray
        );
        // low ECN + moderate RTT = gray ("moderately loaded").
        assert_eq!(
            fresh(&p, mid_rtt, 0.05, now).characterize(&p, now),
            PathType::Gray
        );
    }

    #[test]
    fn unsampled_and_stale_paths_are_gray() {
        let p = params();
        let now = Time::from_ms(1);
        let mut never = PathState::default();
        assert_eq!(never.characterize(&p, now), PathType::Gray);
        let mut stale = fresh(&p, 50, 0.0, now);
        let later = now + p.stale_horizon + Time::from_us(1);
        assert_eq!(stale.characterize(&p, later), PathType::Gray);
    }

    #[test]
    fn blackhole_three_timeouts_without_acks() {
        let p = params();
        let mut s = PathState::default();
        let t = Time::from_ms(10);
        assert!(!s.on_timeout(&p, t));
        assert!(!s.on_timeout(&p, t));
        assert!(s.on_timeout(&p, t), "third timeout must fail the path");
        assert_eq!(s.characterize(&p, Time::from_ms(11)), PathType::Failed);
    }

    #[test]
    fn ack_between_timeouts_resets_suspicion() {
        let p = params();
        let mut s = PathState::default();
        s.on_timeout(&p, Time::from_ms(10));
        s.on_timeout(&p, Time::from_ms(20));
        // An ACK proves the path forwards *some* packets: not a blackhole.
        s.sample(Some(Time::from_us(100)), false, &p, Time::from_ms(25));
        assert!(!s.on_timeout(&p, Time::from_ms(30)));
        assert!(!s.failed());
        assert_eq!(s.n_timeout(), 1);
    }

    #[test]
    fn random_drops_on_uncongested_path_fail_it() {
        let p = params();
        let mut now = Time::ZERO;
        let mut s = PathState::default();
        // Uncongested signals (low RTT, no ECN), but 3% retransmissions.
        for i in 0..2000u32 {
            now = Time::from_us(10 * i as u64);
            s.on_sent(&p, now);
            if i % 33 == 0 {
                s.on_retransmit(&p, now);
            }
            if i % 10 == 0 {
                s.sample(Some(Time::from_us(70)), false, &p, now);
            }
        }
        // Roll past a window boundary and check.
        now += p.retx_window;
        s.on_sent(&p, now);
        assert_eq!(s.characterize(&p, now), PathType::Failed);
    }

    #[test]
    fn retransmissions_on_congested_path_do_not_fail_it() {
        let p = params();
        let mut now = Time::ZERO;
        let mut s = PathState::default();
        let high = p.t_rtt_high + Time::from_us(50);
        for i in 0..2000u32 {
            now = Time::from_us(10 * i as u64);
            s.on_sent(&p, now);
            if i % 20 == 0 {
                s.on_retransmit(&p, now); // 5% retx
            }
            s.sample(Some(high), true, &p, now); // congested signals
        }
        now += p.retx_window;
        s.on_sent(&p, now); // rolls the τ window, publishing the fraction
        s.sample(Some(high), true, &p, now); // signals stay fresh while data flows
        assert_eq!(
            s.characterize(&p, now),
            PathType::Congested,
            "congestion explains the retransmissions (Algorithm 1 line 8)"
        );
    }

    #[test]
    fn too_few_samples_never_fail_a_path() {
        let p = params();
        let mut s = PathState::default();
        // 5 packets, 2 retx = 40% — but below retx_min_samples.
        for i in 0..5 {
            s.on_sent(&p, Time::from_us(i));
        }
        s.on_retransmit(&p, Time::from_us(6));
        s.on_retransmit(&p, Time::from_us(7));
        let later = Time::from_ms(11);
        s.on_sent(&p, later);
        s.sample(Some(Time::from_us(70)), false, &p, later);
        assert_ne!(s.characterize(&p, later), PathType::Failed);
    }

    #[test]
    fn rtt_only_mode_ignores_ecn() {
        let topo = Topology::sim_baseline();
        let p = HermesParams::for_tcp(&topo);
        let now = Time::from_ms(1);
        // Heavy marking but low RTT: still good under RTT-only sensing.
        let mut s = fresh(&p, p.t_rtt_low.as_us() - 10, 0.9, now);
        assert_eq!(s.characterize(&p, now), PathType::Good);
    }

    #[test]
    fn failure_is_sticky_within_the_quiet_period() {
        let p = params();
        let mut s = PathState::default();
        let t0 = Time::from_ms(10);
        for _ in 0..3 {
            s.on_timeout(&p, t0);
        }
        assert!(s.failed());
        // Even a perfect sample inside the quiet period does not clear
        // it — recovery goes through probation, never directly.
        let t1 = t0 + p.failure_quiet_period / 2;
        s.sample(Some(Time::from_us(60)), false, &p, t1);
        assert_eq!(s.characterize(&p, t1), PathType::Failed);
        assert!(!s.in_probation(&p, t1));
    }

    #[test]
    fn quiet_period_then_probes_readmit_the_path() {
        let p = params();
        let mut s = PathState::default();
        let t0 = Time::from_ms(10);
        for _ in 0..3 {
            s.on_timeout(&p, t0);
        }
        // Quiet period elapses with no further evidence → probation.
        let t1 = t0 + p.failure_quiet_period;
        assert!(s.in_probation(&p, t1));
        // Probation still reads Failed to data placement.
        assert!(s.failed());
        assert_eq!(s.characterize(&p, t1), PathType::Failed);
        // K − 1 probes: still barred.
        for k in 0..p.recovery_probe_count - 1 {
            let recovered = s.sample(
                Some(Time::from_us(60)),
                false,
                &p,
                t1 + Time::from_us(500) * u64::from(k),
            );
            assert!(!recovered);
            assert!(s.failed());
        }
        // K-th probe: re-admitted.
        let t2 = t1 + Time::from_ms(2);
        assert!(s.sample(Some(Time::from_us(60)), false, &p, t2));
        assert!(!s.failed());
        assert_ne!(s.characterize(&p, t2), PathType::Failed);
    }

    #[test]
    fn lost_probe_knocks_probation_back_to_failed() {
        let p = params();
        let mut s = PathState::default();
        let t0 = Time::from_ms(10);
        for _ in 0..3 {
            s.on_timeout(&p, t0);
        }
        let t1 = t0 + p.failure_quiet_period;
        assert!(s.in_probation(&p, t1));
        s.on_probe_lost(t1);
        assert!(!s.in_probation(&p, t1), "lost probe must demote");
        // The quiet period restarts from the lost probe, not t0.
        let t2 = t1 + p.failure_quiet_period - Time::from_us(1);
        assert!(!s.in_probation(&p, t2));
        assert!(s.in_probation(&p, t2 + Time::from_us(1)));
    }

    #[test]
    fn lost_probe_never_fails_a_healthy_path() {
        let p = params();
        let mut s = PathState::default();
        s.sample(Some(Time::from_us(60)), false, &p, Time::from_ms(1));
        s.on_probe_lost(Time::from_ms(2));
        assert!(!s.failed(), "probe loss alone is not a failure signal");
    }

    #[test]
    fn recovery_disabled_keeps_failure_terminally_sticky() {
        let mut p = params();
        p.enable_recovery = false;
        let mut s = PathState::default();
        let t0 = Time::from_ms(10);
        for _ in 0..3 {
            s.on_timeout(&p, t0);
        }
        let much_later = t0 + p.failure_quiet_period * 100;
        assert!(!s.in_probation(&p, much_later));
        assert_eq!(s.characterize(&p, much_later), PathType::Failed);
    }

    #[test]
    fn readmission_clears_stale_failure_history() {
        let p = params();
        let mut s = PathState::default();
        // Accumulate a bad τ-window history (random drops), then fail.
        let mut now = Time::ZERO;
        for i in 0..2000u32 {
            now = Time::from_us(10 * i as u64);
            s.on_sent(&p, now);
            if i % 33 == 0 {
                s.on_retransmit(&p, now);
            }
            if i % 10 == 0 {
                s.sample(Some(Time::from_us(70)), false, &p, now);
            }
        }
        now += p.retx_window;
        s.on_sent(&p, now);
        assert_eq!(s.characterize(&p, now), PathType::Failed);
        // Recover through probation.
        let t1 = now + p.failure_quiet_period;
        assert!(s.in_probation(&p, t1));
        for k in 0..p.recovery_probe_count {
            s.sample(
                Some(Time::from_us(60)),
                false,
                &p,
                t1 + Time::from_us(k as u64),
            );
        }
        assert!(!s.failed());
        // The pre-failure retransmission history must not re-fail it.
        let t2 = t1 + p.retx_window;
        s.on_sent(&p, t2);
        assert_ne!(s.characterize(&p, t2), PathType::Failed);
    }

    #[test]
    fn ewma_tracks_ecn_fraction() {
        let p = params();
        let mut s = PathState::default();
        let now = Time::from_ms(1);
        for i in 0..1000 {
            s.sample(Some(Time::from_us(100)), i % 2 == 0, &p, now);
        }
        assert!((s.f_ecn() - 0.5).abs() < 0.1, "f_ecn {}", s.f_ecn());
    }
}
