//! # hermes-core — the Hermes load balancer (SIGCOMM 2017)
//!
//! The paper's primary contribution, as a host-side (hypervisor) module:
//!
//! * **Comprehensive sensing** (§3.1) — [`PathState`] fuses RTT and ECN
//!   into the good/gray/congested characterization of Algorithm 1, and
//!   detects the two production switch-failure modes: packet blackholes
//!   (3 timeouts with nothing ACKed) and silent random drops (high
//!   retransmission fraction on an uncongested path).
//! * **Active probing** (§3.1.3) — per-rack probe agents probe two
//!   random paths plus the previously best path per destination rack
//!   (power of two choices with memory) and share results rack-wide via
//!   [`RackSensing`].
//! * **Timely yet cautious rerouting** (§3.2, Algorithm 2) — [`Hermes`]
//!   implements `hermes_net::EdgeLb`: per-packet granularity, immediate
//!   reaction to failures/timeouts, and a cost-benefit gate (`S`, `R`,
//!   `Δ_RTT`, `Δ_ECN`) before any congestion-driven reroute.
//! * [`HermesParams`] — every Table 4 parameter with the §3.3 rules of
//!   thumb, plus ablation switches for the Fig. 18 experiments.

mod hermes;
mod params;
mod state;

pub use hermes::{Hermes, RackSensing};
pub use params::HermesParams;
pub use state::{PathState, PathType};
