//! Minimal offline stand-in for the [`proptest`] crate.
//!
//! The workspace builds in an air-gapped environment with no registry
//! access, so this crate implements exactly the surface the test suite
//! uses: the [`proptest!`] macro, `prop_assert*`, integer and float
//! range strategies, tuples of strategies, [`collection::vec`], and
//! [`arbitrary::any`]. Sampling is purely random with a per-test
//! deterministic seed; there is no shrinking — a failing case reports
//! its inputs through the normal assertion message, and re-running the
//! test reproduces the identical case sequence.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// Smaller than upstream's 256: the suite runs whole fabric
        /// simulations per case, and 64 cases already exercises the
        /// input space while keeping `cargo test` interactive.
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    ///
    /// Seeded from the test's module path, name, and case index so every
    /// run of the suite sees the identical case sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `ident`.
        pub fn for_case(ident: &str, case: u32) -> TestRng {
            // FNV-1a over the identifier, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in ident.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type. No shrinking.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values (upstream's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Mapped strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of same-valued strategies (backs [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
            let total = branches.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { branches, total }
        }
    }

    /// Erase a strategy's concrete type for use in a [`Union`]. Keeping
    /// the `Value` associated type visible here (rather than `as _` in
    /// the macro) is what lets inference unify heterogeneous branches.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.branches {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("pick < total by construction")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, usize);

    // u64 separately: `0u64..u64::MAX` makes the span itself u64::MAX,
    // which the generic cast chain above also handles, but keep the
    // arithmetic explicit for the full-width case.
    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty strategy range");
            let span = self.end - self.start;
            self.start + rng.below(span)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (`any::<u64>()` style).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice among strategies producing the same value type:
/// `prop_oneof![3 => 0u64..8, 1 => Just(42u64)]`. Unweighted branches
/// (`prop_oneof![a, b]`) get weight 1 each, as upstream.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property body. Without shrinking this is a plain
/// `assert!` — the panic message carries whatever context the caller
/// formats in.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///
///     /// doc comment
///     #[test]
///     fn name(a in 0u64..10, b in proptest::collection::vec(0u32..4, 1..20)) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $($strat,)+ );
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..10_000 {
            let v = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let w = (0u64..u64::MAX).sample(&mut rng);
            assert!(w < u64::MAX);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = crate::collection::vec(0u8..3, 2..9);
        for _ in 0..1000 {
            let v = strat.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let mut c = TestRng::for_case("x", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The macro itself: multi-arg sampling with tuples and vecs.
        #[test]
        fn macro_samples_all_args(
            a in 1u64..100,
            pairs in crate::collection::vec((0u16..4, 0.0f64..1.0), 1..10),
            bits in any::<u64>(),
        ) {
            prop_assert!((1..100).contains(&a));
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (x, y) in &pairs {
                prop_assert!(*x < 4);
                prop_assert!((0.0..1.0).contains(y));
            }
            let _ = bits;
        }

        /// prop_oneof / prop_map / Just: every branch is reachable, maps
        /// apply, and weights of zero never fire.
        #[test]
        fn oneof_map_just(
            vals in crate::collection::vec(
                prop_oneof![
                    2 => (0u32..10).prop_map(|x| x * 2),
                    1 => Just(99u32),
                    0 => Just(7u32),
                ],
                50..60,
            ),
        ) {
            for v in &vals {
                prop_assert!((*v == 99) || (*v < 20 && v % 2 == 0));
                prop_assert_ne!(*v, 7, "zero-weight branch must never fire");
            }
        }
    }
}
