//! Directory-level orchestration: load a scenario directory, run the
//! full grid, apply every checker, and (for the bless flow) regenerate
//! the golden-digest store.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::check::{
    check_digests, check_envelopes, check_incast_floor, check_invariants, check_ring_steps,
    format_digests, parse_digests, Failure,
};
use crate::run::{run_grid, run_grid_sharded, RunOutcome};
use crate::spec::{load_dir, ScenarioSpec, SpecError};

/// The golden store lives next to the scenarios it pins.
pub const DIGESTS_FILE: &str = "digests.toml";

/// The outcome of one conformance pass over a scenario directory.
pub struct ConformanceReport {
    pub scenarios: Vec<ScenarioSpec>,
    pub outcomes: Vec<RunOutcome>,
    pub failures: Vec<Failure>,
}

impl ConformanceReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Grid cells executed.
    pub fn cells(&self) -> usize {
        self.outcomes.len()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance: {} scenario(s), {} cell(s), {} failure(s)",
            self.scenarios.len(),
            self.cells(),
            self.failures.len()
        )?;
        for spec in &self.scenarios {
            let n = self
                .outcomes
                .iter()
                .filter(|o| self.scenarios[o.scenario].name == spec.name)
                .count();
            writeln!(
                f,
                "  {:<14} {} lb(s) x {} seed(s) = {} cell(s){}",
                spec.name,
                spec.lbs.len(),
                spec.seeds.len(),
                n,
                if spec.pin_digests { " [pinned]" } else { "" }
            )?;
        }
        for fail in &self.failures {
            writeln!(f, "  FAIL {fail}")?;
        }
        Ok(())
    }
}

/// Load the goldens that sit next to a scenario directory's specs.
/// A missing file is an empty store (pinned scenarios will then fail
/// with a pointer to the bless flow).
pub fn load_goldens(dir: &Path) -> Result<BTreeMap<String, u64>, SpecError> {
    let path = dir.join(DIGESTS_FILE);
    if !path.exists() {
        return Ok(BTreeMap::new());
    }
    let src = std::fs::read_to_string(&path).map_err(|e| SpecError {
        file: path.display().to_string(),
        msg: format!("read failed: {e}"),
    })?;
    parse_digests(&src).map_err(|msg| SpecError {
        file: path.display().to_string(),
        msg,
    })
}

/// Run every scenario in `dir` across its grid and apply all five
/// checker classes (the workload-specific ones are no-ops on other
/// kinds). `threads = 0` uses every available core.
pub fn run_conformance(dir: &Path, threads: usize) -> Result<ConformanceReport, SpecError> {
    run_conformance_sharded(dir, threads, 1)
}

/// [`run_conformance`] with every grid cell driven through the sharded
/// engine at `sim_threads` workers. The goldens are blessed from
/// single-queue runs, so a passing digest check here *is* the
/// thread-count-invariance proof: the sharded merge replayed the exact
/// single-queue event order for all 63 pinned cells.
pub fn run_conformance_sharded(
    dir: &Path,
    threads: usize,
    sim_threads: usize,
) -> Result<ConformanceReport, SpecError> {
    let scenarios = load_dir(dir)?;
    if scenarios.is_empty() {
        return Err(SpecError {
            file: dir.display().to_string(),
            msg: "no scenario files found".to_string(),
        });
    }
    let goldens = load_goldens(dir)?;
    let outcomes = run_grid_sharded(&scenarios, threads, sim_threads)?;
    let mut failures = Vec::new();
    for (si, spec) in scenarios.iter().enumerate() {
        let mine: Vec<&RunOutcome> = outcomes.iter().filter(|o| o.scenario == si).collect();
        for out in &mine {
            failures.extend(check_invariants(spec, out));
            failures.extend(check_ring_steps(spec, out));
            failures.extend(check_incast_floor(spec, out));
        }
        failures.extend(check_digests(spec, &mine, &goldens));
        failures.extend(check_envelopes(spec, &mine));
    }
    Ok(ConformanceReport {
        scenarios,
        outcomes,
        failures,
    })
}

/// Re-run every pinned cell in `dir` and rewrite its golden store
/// wholesale. Returns the number of pinned cells and the store path.
pub fn bless(dir: &Path, threads: usize) -> Result<(usize, PathBuf), SpecError> {
    let scenarios = load_dir(dir)?;
    let outcomes = run_grid(&scenarios, threads)?;
    let mut goldens = BTreeMap::new();
    for out in &outcomes {
        let spec = &scenarios[out.scenario];
        if spec.pin_digests {
            goldens.insert(spec.digest_key(out.lb_idx, out.seed), out.result.digest);
        }
    }
    let path = dir.join(DIGESTS_FILE);
    std::fs::write(&path, format_digests(&goldens)).map_err(|e| SpecError {
        file: path.display().to_string(),
        msg: format!("write failed: {e}"),
    })?;
    Ok((goldens.len(), path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hermes-testkit-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    const SCENARIO: &str = r#"
        pin_digests = true
        [topology]
        kind = "testbed"
        [workload]
        dist = "web_search"
        load = 0.3
        flows = 25
        [run]
        seeds = [1, 2]
        lbs = ["ecmp"]
        drain_ms = 1000
    "#;

    #[test]
    fn bless_then_conformance_roundtrip() {
        let dir = scratch_dir("bless");
        fs::write(dir.join("smoke.toml"), SCENARIO).expect("write scenario");
        // Unpinned, unblessed: digest checker stays silent.
        fs::write(
            dir.join("smoke.toml"),
            SCENARIO.replace("pin_digests = true", "pin_digests = false"),
        )
        .expect("write scenario");
        let report = run_conformance(&dir, 2).expect("runs");
        assert!(report.passed(), "{report}");
        // Pinned but unblessed: digest checker demands a bless.
        fs::write(dir.join("smoke.toml"), SCENARIO).expect("write scenario");
        let report = run_conformance(&dir, 2).expect("runs");
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.detail.contains("bless")));
        // Bless, then the same grid passes.
        let (n, path) = bless(&dir, 2).expect("blesses");
        assert_eq!(n, 2);
        assert!(path.ends_with(DIGESTS_FILE));
        let report = run_conformance(&dir, 2).expect("runs");
        assert!(report.passed(), "{report}");
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
