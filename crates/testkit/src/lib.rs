//! hermes-testkit: declarative scenario conformance for the Hermes
//! reproduction.
//!
//! The paper's headline claims (§5–6) are behavior *envelopes* —
//! Hermes ≈ CONGA under symmetry, graceful degradation under asymmetry
//! and failure — so this crate encodes them as an executable grid:
//!
//! * **specs** — scenario TOML files (`tests/scenarios/`) declaring a
//!   topology, workload, fault plan, the LBs under test, and seeds;
//! * **run** — every `(scenario, lb, seed)` cell executed as its own
//!   deterministic simulation, fanned out across threads;
//! * **check** — five checker classes over the evidence: physical
//!   invariants (packet conservation, monotonic time, FCT sanity,
//!   unfinished-flow bounds), golden event-trace digests with a bless
//!   flow, statistical FCT-ratio envelopes between LBs, ring-step
//!   conservation for collective workloads, and the incast goodput
//!   floor for burst workloads;
//! * **selftest** — deliberately-broken fixtures proving each checker
//!   class actually fails when it should.
//!
//! Entry points: [`suite::run_conformance`] for a directory pass,
//! [`suite::bless`] to regenerate goldens, and
//! [`selftest::run_self_test`] for the checker self-test. The tier-1
//! grid lives in the repo-root `tests/conformance.rs`; the extended
//! grid runs via `cargo run -p xtask -- conformance`.

pub mod chaos;
pub mod check;
pub mod run;
pub mod selftest;
pub mod spec;
pub mod suite;
pub mod toml;

pub use check::{CheckClass, Failure};
pub use run::{run_grid, run_grid_sharded, RunOutcome};
pub use selftest::{run_self_test, self_test_passed};
pub use spec::{load_dir, load_file, parse_scenario, ScenarioSpec, SpecError};
pub use suite::{
    bless, load_goldens, run_conformance, run_conformance_sharded, ConformanceReport, DIGESTS_FILE,
};
