//! Counterexample shrinking: delta-debugging over fault events, then
//! severity narrowing.
//!
//! A sampled plan that trips an SLO usually carries events that have
//! nothing to do with the failure (the sampler composes up to three
//! primitives, and flaps/ramps expand into many events). Before a plan
//! is worth committing to the corpus it is shrunk to a minimal
//! counterexample:
//!
//! 1. **ddmin over events** — classic delta debugging: try dropping
//!    halves, then quarters, … of the event list, keeping any subset
//!    that still fails. Candidates that no longer pass
//!    [`FaultPlan::validate`] (e.g. an orphaned `LinkUp`) are skipped,
//!    not evaluated.
//! 2. **Narrowing** — with the event set minimal, shave severity:
//!    halve drop rates and victim fractions, and pull event times
//!    toward the earliest one (shortening windows), as long as the
//!    plan keeps failing.
//!
//! The failure predicate is caller-supplied — typically "re-run the
//! campaign cell and check the same [`super::slo::SloClass`] still
//! trips" — and every predicate call is an expensive simulation, so
//! the whole search is budgeted by `max_evals`.

use hermes_net::{FaultAction, FaultEvent, FaultPlan, SpineFailure};

/// What shrinking achieved, plus its cost.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal still-failing plan found within budget.
    pub plan: FaultPlan,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Event count of the original plan.
    pub from_events: usize,
}

fn rebuild(events: &[FaultEvent]) -> FaultPlan {
    events
        .iter()
        .fold(FaultPlan::new(), |p, e| p.at(e.at, e.action))
}

/// Shrink `plan` to a smaller plan for which `fails` still returns
/// true, spending at most `max_evals` predicate calls. The input plan
/// is assumed to fail (callers establish that before shrinking); if
/// nothing smaller fails, the original is returned unchanged.
pub fn shrink_plan<F>(plan: &FaultPlan, mut fails: F, max_evals: usize) -> ShrinkOutcome
where
    F: FnMut(&FaultPlan) -> bool,
{
    let from_events = plan.len();
    let mut events: Vec<FaultEvent> = plan.events().to_vec();
    let mut evals = 0usize;
    let mut check = |cand: &[FaultEvent], evals: &mut usize| -> Option<FaultPlan> {
        let p = rebuild(cand);
        if p.is_empty() || p.validate().is_err() || *evals >= max_evals {
            return None;
        }
        *evals += 1;
        if fails(&p) {
            Some(p)
        } else {
            None
        }
    };

    // Phase 1: ddmin over the event list.
    let mut granularity = 2usize;
    while events.len() >= 2 && granularity <= events.len() && evals < max_evals {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() && evals < max_evals {
            // Complement: everything except events[start..start+chunk].
            let cand: Vec<FaultEvent> = events
                .iter()
                .enumerate()
                .filter(|&(i, _)| i < start || i >= start + chunk)
                .map(|(_, e)| *e)
                .collect();
            if !cand.is_empty() && check(&cand, &mut evals).is_some() {
                events = cand;
                granularity = 2;
                reduced = true;
                // Restart the sweep on the smaller list.
                start = 0;
            } else {
                start += chunk;
            }
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        }
    }

    // Phase 2: narrow severity on the surviving events.
    let mut changed = true;
    while changed && evals < max_evals {
        changed = false;
        for i in 0..events.len() {
            if evals >= max_evals {
                break;
            }
            for cand_ev in narrow_event(&events[i]) {
                let mut cand = events.clone();
                cand[i] = cand_ev;
                if check(&cand, &mut evals).is_some() {
                    events = cand;
                    changed = true;
                    break;
                }
            }
        }
        // Pull the whole schedule toward its earliest instant,
        // shortening every window at once.
        if evals < max_evals {
            if let Some(t0) = events.iter().map(|e| e.at).min() {
                let cand: Vec<FaultEvent> = events
                    .iter()
                    .map(|e| FaultEvent {
                        at: t0 + (e.at.saturating_sub(t0)).mul_f64(0.5),
                        action: e.action,
                    })
                    .collect();
                if cand != events && check(&cand, &mut evals).is_some() {
                    events = cand;
                    changed = true;
                }
            }
        }
    }

    ShrinkOutcome {
        plan: rebuild(&events),
        evals,
        from_events,
    }
}

/// Candidate lower-severity versions of one event (empty if the
/// action has no tunable severity).
fn narrow_event(ev: &FaultEvent) -> Vec<FaultEvent> {
    let mut out = Vec::new();
    let mut push = |action: FaultAction| {
        out.push(FaultEvent { at: ev.at, action });
    };
    match ev.action {
        FaultAction::SetSpineFailure { spine, failure } if failure.random_drop > 0.005 => {
            push(FaultAction::SetSpineFailure {
                spine,
                failure: SpineFailure {
                    random_drop: failure.random_drop * 0.5,
                    ..failure
                },
            });
        }
        FaultAction::FlowBlackhole {
            spine,
            victim_fraction,
        } if victim_fraction > 0.01 => {
            push(FaultAction::FlowBlackhole {
                spine,
                victim_fraction: victim_fraction * 0.5,
            });
        }
        FaultAction::SetLinkRate {
            leaf,
            spine,
            rate_bps,
        } => {
            // Less degraded = closer to healthy; doubling the rate is
            // the "milder fault" direction.
            push(FaultAction::SetLinkRate {
                leaf,
                spine,
                rate_bps: rate_bps.saturating_mul(2),
            });
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::{LeafId, SpineId};
    use hermes_sim::Time;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::new()
            .link_flap(
                LeafId(0),
                SpineId(0),
                Time::from_ms(2),
                Time::from_ms(1),
                Time::from_ms(4),
                Time::from_ms(14),
            )
            .spine_outage(SpineId(1), Time::from_ms(3), Time::from_ms(9))
            .random_drop_window(SpineId(2), 0.08, Time::from_ms(1), Time::from_ms(6))
    }

    #[test]
    fn ddmin_reduces_to_the_relevant_events() {
        let plan = noisy_plan();
        assert_eq!(plan.len(), 10);
        let wants_down = |p: &FaultPlan| {
            p.events().iter().any(|e| {
                matches!(
                    e.action,
                    FaultAction::LinkDown {
                        leaf: LeafId(0),
                        spine: SpineId(0),
                    }
                )
            })
        };
        let out = shrink_plan(&plan, wants_down, 500);
        assert!(wants_down(&out.plan), "shrunk plan must still fail");
        assert_eq!(out.plan.validate(), Ok(()));
        assert!(
            out.plan.len() <= 2,
            "one LinkDown (± its LinkUp) suffices, got {} events",
            out.plan.len()
        );
        assert_eq!(out.from_events, 10);
    }

    #[test]
    fn shrinking_never_emits_invalid_plans() {
        // Predicate records every candidate it is shown; all of them
        // must validate (orphaned LinkUps filtered out, not evaluated).
        let plan = noisy_plan();
        let mut seen = 0u32;
        let out = shrink_plan(
            &plan,
            |p| {
                assert_eq!(p.validate(), Ok(()), "shrinker leaked an invalid candidate");
                seen += 1;
                p.len() >= 4
            },
            200,
        );
        assert!(seen > 0);
        assert_eq!(out.plan.validate(), Ok(()));
        assert!(out.plan.len() >= 4, "predicate held on the result");
    }

    #[test]
    fn narrowing_halves_rates_while_failing() {
        let plan = FaultPlan::new().random_drop_window(
            SpineId(0),
            0.64,
            Time::from_ms(2),
            Time::from_ms(10),
        );
        // "Fails" as long as some drop rate >= 0.04: narrowing should
        // walk the rate down to just above the threshold.
        let out = shrink_plan(
            &plan,
            |p| {
                p.events().iter().any(|e| {
                    matches!(
                        e.action,
                        FaultAction::SetSpineFailure { failure, .. } if failure.random_drop >= 0.04
                    )
                })
            },
            500,
        );
        let rate = out
            .plan
            .events()
            .iter()
            .find_map(|e| match e.action {
                FaultAction::SetSpineFailure { failure, .. } => Some(failure.random_drop),
                _ => None,
            })
            .unwrap_or(0.0);
        assert!(
            (0.04..0.08).contains(&rate),
            "expected the rate narrowed toward the threshold, got {rate}"
        );
    }

    #[test]
    fn budget_bounds_predicate_calls() {
        let plan = noisy_plan();
        let mut calls = 0usize;
        let _ = shrink_plan(
            &plan,
            |_| {
                calls += 1;
                true
            },
            7,
        );
        assert!(calls <= 7, "budget exceeded: {calls}");
    }
}
