//! Seeded fault-plan sampler over the full fault grammar.
//!
//! One campaign seed maps to one [`FaultPlan`]: a composition of 1–3
//! fault primitives drawn from every shape the grammar offers — pair
//! blackholes, silent random drops, drop-rate ramps, link flapping,
//! link degrades, whole-spine outages, per-victim-flow partial
//! blackholes, and ECN mutes. Primitives get *distinct* spines (so a
//! later `SetSpineFailure` cannot clobber an earlier primitive's
//! state) but freely *overlapping windows in time* — the concurrent
//! gray-failure compositions nothing else in the tree exercises.
//!
//! Sampling is pure: the same `(seed, GenCfg)` always yields the same
//! plan, byte for byte, and every sampled plan passes
//! [`FaultPlan::validate`] by construction (distinct spines mean link
//! and spine down/up windows can never contradict each other).

use hermes_net::{FaultPlan, LeafId, SpineId};
use hermes_sim::{SimRng, Time};

/// The sampling space: fabric dimensions plus timing bounds.
#[derive(Clone, Copy, Debug)]
pub struct GenCfg {
    pub n_leaves: u16,
    pub n_spines: u16,
    /// Healthy leaf↔spine link rate; degrades sample a fraction of it.
    pub link_rate_bps: u64,
}

impl GenCfg {
    /// Matches [`hermes_net::Topology::testbed`] (2 leaves, 4 spines,
    /// 1 Gbps links) — the fabric every campaign cell runs on.
    pub fn testbed() -> GenCfg {
        GenCfg {
            n_leaves: 2,
            n_spines: 4,
            link_rate_bps: 1_000_000_000,
        }
    }
}

/// RNG stream label for plan sampling (distinct from the workload's
/// `0x6E4` and the fabric's failure streams).
const GEN_STREAM: u64 = 0xC4A0_5000;

/// Sample one fault plan. Deterministic in `(seed, cfg)`; the result
/// always validates and always ends well before a 1-second drain.
pub fn sample_plan(seed: u64, cfg: &GenCfg) -> FaultPlan {
    let mut rng = SimRng::new(seed).split(GEN_STREAM);
    let n_primitives = 1 + rng.below(3);
    let spines = rng.sample_distinct(cfg.n_spines as usize, n_primitives);
    let mut plan = FaultPlan::new();
    for spine_idx in spines {
        let spine = SpineId(spine_idx as u16);
        let kind = rng.below(8);
        // Windows: onset in [2, 22) ms, length in [4, 30) ms, so every
        // fault clears by 52 ms — far inside the quick drain budget.
        let onset = Time::from_us(2_000 + rng.below(20_000) as u64);
        let clear = onset + Time::from_us(4_000 + rng.below(26_000) as u64);
        let leaf = LeafId(rng.below(cfg.n_leaves as usize) as u16);
        plan = match kind {
            0 => {
                let src = LeafId(rng.below(cfg.n_leaves as usize) as u16);
                let dst = LeafId((src.0 + 1) % cfg.n_leaves);
                let frac = 0.5 + 0.5 * rng.below(2) as f64;
                plan.blackhole_window(spine, src, dst, frac, onset, clear)
            }
            1 => plan.random_drop_window(spine, 0.02 + 0.10 * rng.f64(), onset, clear),
            2 => {
                let peak = 0.05 + 0.15 * rng.f64();
                let steps = 2 + rng.below(3) as u32;
                plan.drop_rate_ramp(spine, peak, onset, clear, steps)
            }
            3 => {
                let downtime = Time::from_us(500 + rng.below(1_500) as u64);
                let period = downtime + Time::from_us(1_000 + rng.below(4_000) as u64);
                plan.link_flap(leaf, spine, onset, downtime, period, clear)
            }
            4 => {
                let divisor = 4 + rng.below(7) as u64;
                plan.link_degrade_window(leaf, spine, cfg.link_rate_bps / divisor, onset, clear)
            }
            5 => plan.spine_outage(spine, onset, clear),
            6 => plan.flow_blackhole_window(spine, 0.2 + 0.6 * rng.f64(), onset, clear),
            _ => plan.ecn_mute_window(spine, onset, clear),
        };
    }
    debug_assert!(plan.validate().is_ok(), "sampled plan must validate");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_always_valid() {
        let cfg = GenCfg::testbed();
        for seed in 0..200 {
            let a = sample_plan(seed, &cfg);
            let b = sample_plan(seed, &cfg);
            assert_eq!(a, b, "seed {seed} must resample identically");
            assert_eq!(a.validate(), Ok(()), "seed {seed} sampled an invalid plan");
            assert!(!a.is_empty(), "seed {seed} sampled an empty plan");
            assert!(
                a.end_time() <= Time::from_ms(60),
                "seed {seed} plan runs past the window bound"
            );
        }
    }

    #[test]
    fn sampling_covers_the_grammar_and_overlaps_windows() {
        let cfg = GenCfg::testbed();
        let mut multi_primitive = 0;
        let mut max_events = 0;
        for seed in 0..200 {
            let plan = sample_plan(seed, &cfg);
            max_events = max_events.max(plan.len());
            // Distinct spines referenced => multiple primitives live in
            // one plan, and their windows share the [2, 52) ms band, so
            // concurrent faults are the common case, not the corner.
            let mut spines: Vec<u16> = plan
                .events()
                .iter()
                .filter_map(|e| spine_of(&e.action))
                .collect();
            spines.sort_unstable();
            spines.dedup();
            if spines.len() >= 2 {
                multi_primitive += 1;
            }
        }
        assert!(
            multi_primitive > 50,
            "expected many multi-primitive plans, got {multi_primitive}/200"
        );
        assert!(max_events >= 6, "flaps/ramps should expand to many events");
    }

    fn spine_of(a: &hermes_net::FaultAction) -> Option<u16> {
        use hermes_net::FaultAction as A;
        match *a {
            A::SetSpineFailure { spine, .. }
            | A::ClearSpineFailure { spine }
            | A::FlowBlackhole { spine, .. }
            | A::EcnMute { spine }
            | A::EcnUnmute { spine }
            | A::LinkDown { spine, .. }
            | A::LinkUp { spine, .. }
            | A::SetLinkRate { spine, .. }
            | A::RestoreLinkRate { spine, .. }
            | A::SpineDown { spine }
            | A::SpineUp { spine } => Some(spine.0),
        }
    }
}
