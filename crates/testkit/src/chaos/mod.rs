//! Chaos campaign engine: seeded fault-space fuzzing with plan
//! shrinking, degradation SLOs, and a committed counterexample corpus.
//!
//! The conformance grid (`crate::suite`) replays *hand-written* fault
//! scenarios; this module samples the fault space instead. One
//! campaign = N seeds; each seed deterministically expands to a
//! [`hermes_net::FaultPlan`] drawn from the full grammar ([`gen`]),
//! runs across the hermes/conga/ecmp schemes with a matching
//! fault-free baseline per scheme, and is judged against four
//! graceful-degradation SLOs ([`slo`]). A failing plan can be shrunk
//! to a minimal counterexample ([`shrink`]) and committed to
//! `tests/chaos/corpus/` ([`corpus`]), which CI replays forever after.
//!
//! Everything is deterministic: same seed range + same config ⇒ the
//! same campaign report, byte for byte (campaigns run cells
//! sequentially precisely so report bytes cannot depend on thread
//! interleaving). A planted-defect self-test ([`selftest`]) proves
//! each SLO checker and the shrinker actually trip.
//!
//! Entry point: `cargo run -p xtask -- chaos` (see `xtask --help`).

pub mod corpus;
pub mod gen;
pub mod selftest;
pub mod shrink;
pub mod slo;

pub use corpus::{
    entry_from_toml, load_corpus, plan_to_toml, replay_corpus, CorpusEntry, CorpusReplay,
};
pub use gen::{sample_plan, GenCfg};
pub use selftest::{chaos_self_test_passed, run_chaos_self_test, ChaosSelfTestCase};
pub use shrink::{shrink_plan, ShrinkOutcome};
pub use slo::{SloCfg, SloClass, SloViolation};

use hermes_bench::{run_point_detailed, DetailedResult, PointCfg};
use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{FaultPlan, FnvDigest, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::FlowSizeDist;

/// The schemes every campaign cell runs, in report order.
pub const LBS: [&str; 3] = ["hermes", "conga", "ecmp"];

/// Goodput sampling cadence for recovery checks.
const GOODPUT_INTERVAL: Time = Time::from_ms(1);

fn scheme_for(lb: &str, topo: &Topology) -> Scheme {
    match lb {
        "hermes" => Scheme::Hermes(HermesParams::from_topology(topo)),
        "conga" => Scheme::Conga(CongaCfg::default()),
        _ => Scheme::Ecmp,
    }
}

/// One scheme's pair of runs for one plan: faulted and fault-free,
/// same workload seed.
pub struct CellRuns {
    pub lb: &'static str,
    pub fault: DetailedResult,
    pub base: DetailedResult,
}

fn point(topo: &Topology, lb: &str, seed: u64, quick: bool) -> PointCfg {
    // Quick keeps CI smoke affordable; full is the overnight setting.
    // Both drain far past the generator's 52 ms last-fault bound so the
    // drain SLO judges "stuck forever", not "slow".
    let (flows, load, drain) = if quick {
        (40, 0.25, Time::from_secs(1))
    } else {
        (120, 0.35, Time::from_secs(2))
    };
    PointCfg::new(
        topo.clone(),
        scheme_for(lb, topo),
        FlowSizeDist::web_search(),
        load,
    )
    .flows(flows)
    .seed(seed)
    .drain(drain)
}

/// Run one plan across every scheme, with per-scheme fault-free
/// baselines. Sequential on purpose: byte-deterministic reports.
pub fn run_cells(plan: &FaultPlan, seed: u64, quick: bool) -> Vec<CellRuns> {
    let topo = Topology::testbed();
    LBS.iter()
        .map(|&lb| {
            let base = run_point_detailed(&point(&topo, lb, seed, quick), GOODPUT_INTERVAL);
            let fault = run_point_detailed(
                &point(&topo, lb, seed, quick).fault(plan.clone()),
                GOODPUT_INTERVAL,
            );
            CellRuns { lb, fault, base }
        })
        .collect()
}

/// Campaign shape: how many seeds, how heavy each cell, whether to
/// shrink failures, and the SLO thresholds to judge against.
#[derive(Clone, Debug)]
pub struct CampaignCfg {
    pub seeds: u64,
    pub seed_base: u64,
    pub quick: bool,
    /// Shrink the first violation of each failing seed to a minimal
    /// counterexample (costs up to `max_shrink_evals` extra cell runs
    /// per failing seed).
    pub shrink: bool,
    pub max_shrink_evals: usize,
    pub slo: SloCfg,
}

impl Default for CampaignCfg {
    fn default() -> CampaignCfg {
        CampaignCfg {
            seeds: 32,
            seed_base: 0,
            quick: false,
            shrink: false,
            max_shrink_evals: 48,
            slo: SloCfg::default(),
        }
    }
}

/// Digest-relevant summary of one scheme's faulted run.
#[derive(Clone, Copy, Debug)]
pub struct CellSummary {
    pub lb: &'static str,
    pub digest: u64,
    pub events: u64,
    pub unfinished: usize,
}

/// A shrunk counterexample, ready for the corpus.
#[derive(Clone, Debug)]
pub struct ShrunkCase {
    pub class: SloClass,
    pub cell: String,
    pub plan: FaultPlan,
    pub evals: usize,
    pub from_events: usize,
}

/// Everything one seed produced.
#[derive(Clone, Debug)]
pub struct SeedOutcome {
    pub seed: u64,
    pub plan: FaultPlan,
    pub cells: Vec<CellSummary>,
    pub violations: Vec<SloViolation>,
    pub shrunk: Vec<ShrunkCase>,
}

/// A full campaign's results.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    pub cfg: CampaignCfg,
    pub outcomes: Vec<SeedOutcome>,
}

impl CampaignReport {
    pub fn total_violations(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// FNV digest over every cell's trace digest and outcome counts —
    /// one number that pins the whole campaign's behavior.
    pub fn digest(&self) -> u64 {
        let mut d = FnvDigest::new();
        for o in &self.outcomes {
            d.push(o.seed);
            d.push(o.plan.len() as u64);
            d.push(o.plan.end_time().as_ns());
            for c in &o.cells {
                d.push(c.digest);
                d.push(c.events);
                d.push(c.unfinished as u64);
            }
            d.push(o.violations.len() as u64);
        }
        d.value()
    }

    /// Deterministic JSON rendering (stable field order, no
    /// wall-clock anywhere): same campaign ⇒ same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"seeds\": {}, \"seed_base\": {}, \"quick\": {}, \"shrink\": {}, \
             \"recovery_frac\": {:?}, \"recovery_slack_ns\": {}, \"stranded_factor\": {:?}, \
             \"stranded_slack_ns\": {}}},\n",
            self.cfg.seeds,
            self.cfg.seed_base,
            self.cfg.quick,
            self.cfg.shrink,
            self.cfg.slo.recovery_frac,
            self.cfg.slo.recovery_slack.as_ns(),
            self.cfg.slo.stranded_factor,
            self.cfg.slo.stranded_slack.as_ns(),
        ));
        s.push_str(&format!(
            "  \"campaign_digest\": \"{:#018x}\",\n  \"violations\": {},\n  \"seeds\": [\n",
            self.digest(),
            self.total_violations()
        ));
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"seed\": {}, \"plan_events\": {}, \"plan_end_ns\": {}, \"cells\": [",
                o.seed,
                o.plan.len(),
                o.plan.end_time().as_ns()
            ));
            for (j, c) in o.cells.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"lb\": \"{}\", \"digest\": \"{:#018x}\", \"events\": {}, \"unfinished\": {}}}",
                    c.lb, c.digest, c.events, c.unfinished
                ));
            }
            s.push_str("], \"violations\": [");
            for (j, v) in o.violations.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"class\": \"{}\", \"cell\": \"{}\", \"detail\": \"{}\"}}",
                    v.class.as_str(),
                    json_esc(&v.cell),
                    json_esc(&v.detail)
                ));
            }
            s.push_str("], \"shrunk\": [");
            for (j, sh) in o.shrunk.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"class\": \"{}\", \"cell\": \"{}\", \"from_events\": {}, \
                     \"to_events\": {}, \"evals\": {}}}",
                    sh.class.as_str(),
                    json_esc(&sh.cell),
                    sh.from_events,
                    sh.plan.len(),
                    sh.evals
                ));
            }
            s.push_str("]}");
            if i + 1 < self.outcomes.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Run a full campaign: sample → run → judge → (optionally) shrink.
pub fn run_campaign(cfg: &CampaignCfg) -> CampaignReport {
    let gen_cfg = GenCfg::testbed();
    let mut outcomes = Vec::new();
    for i in 0..cfg.seeds {
        let seed = cfg.seed_base + i;
        let plan = sample_plan(seed, &gen_cfg);
        let label = format!("seed={seed}");
        let runs = run_cells(&plan, seed, cfg.quick);
        let violations = slo::check_cell(&label, &runs, plan.end_time(), &cfg.slo);
        let cells = runs
            .iter()
            .map(|c| CellSummary {
                lb: c.lb,
                digest: c.fault.digest,
                events: c.fault.events,
                unfinished: c.fault.fct.unfinished,
            })
            .collect();
        let mut shrunk = Vec::new();
        if cfg.shrink {
            if let Some(v) = violations.first() {
                let class = v.class;
                let fails = |cand: &FaultPlan| {
                    let runs = run_cells(cand, seed, cfg.quick);
                    slo::check_cell(&label, &runs, cand.end_time(), &cfg.slo)
                        .iter()
                        .any(|w| w.class == class)
                };
                let out = shrink_plan(&plan, fails, cfg.max_shrink_evals);
                shrunk.push(ShrunkCase {
                    class,
                    cell: v.cell.clone(),
                    plan: out.plan,
                    evals: out.evals,
                    from_events: out.from_events,
                });
            }
        }
        outcomes.push(SeedOutcome {
            seed,
            plan,
            cells,
            violations,
            shrunk,
        });
    }
    CampaignReport {
        cfg: cfg.clone(),
        outcomes,
    }
}
