//! Planted-defect self-test for the chaos SLO checkers and shrinker.
//!
//! Mirrors [`crate::selftest`]: a checker that never fires is worse
//! than no checker, so each SLO class gets a doctored fixture that
//! *must* trip it, plus one honest run that must stay clean and a
//! synthetic shrinking problem with a known minimal answer. `xtask
//! chaos --self-test` runs this and CI gates on it.

use hermes_net::{FaultAction, FaultPlan, LeafId, SpineId};
use hermes_sim::Time;

use super::run_cells;
use super::shrink::shrink_plan;
use super::slo::{
    check_cell, check_conservation, check_cross_lb, check_drain, check_recovery, SloCfg,
};

/// One self-test verdict. `ok` means the case behaved as planted
/// (checker tripped on the doctored fixture, stayed quiet on the
/// honest one, shrinker found the minimal plan).
#[derive(Clone, Debug)]
pub struct ChaosSelfTestCase {
    pub name: &'static str,
    pub ok: bool,
    pub detail: String,
}

pub fn chaos_self_test_passed(cases: &[ChaosSelfTestCase]) -> bool {
    !cases.is_empty() && cases.iter().all(|c| c.ok)
}

fn case(name: &'static str, ok: bool, detail: String) -> ChaosSelfTestCase {
    ChaosSelfTestCase { name, ok, detail }
}

/// Run every planted fixture. One real (quick) cell run is shared by
/// all checker cases; each case then doctors a clone of its evidence.
pub fn run_chaos_self_test() -> Vec<ChaosSelfTestCase> {
    let mut cases = Vec::new();
    let cfg = SloCfg::default();
    let plan =
        FaultPlan::new().random_drop_window(SpineId(0), 0.05, Time::from_ms(5), Time::from_ms(20));
    let runs = run_cells(&plan, 7, true);

    // 1. Honest evidence must be clean — otherwise every "tripped"
    // below would be meaningless.
    let clean = check_cell("selftest", &runs, plan.end_time(), &cfg);
    cases.push(case(
        "honest-run-is-clean",
        clean.is_empty(),
        match clean.first() {
            None => "no violations on an honest mild-fault run".to_string(),
            Some(v) => format!(
                "unexpected violation: {} in {}: {}",
                v.class.as_str(),
                v.cell,
                v.detail
            ),
        },
    ));

    let Some(ecmp) = runs.iter().find(|c| c.lb == "ecmp") else {
        cases.push(case("fixtures", false, "no ecmp cell produced".to_string()));
        return cases;
    };

    // 2. Conservation: misaccount one injected packet.
    let mut tampered = ecmp.fault.clone();
    tampered.conservation.injected += 1;
    let tripped = check_conservation("selftest/ecmp", &tampered).is_some();
    cases.push(case(
        "conservation-checker-trips",
        tripped,
        "one phantom injected packet must unbalance conservation".to_string(),
    ));

    // 3. Drain: doctor one flow to never finish.
    let mut tampered = ecmp.fault.clone();
    let tripped = if let Some(rec) = tampered.records.first_mut() {
        rec.finish = None;
        check_drain("selftest/ecmp", &tampered).is_some()
    } else {
        false
    };
    cases.push(case(
        "drain-checker-trips",
        tripped,
        "a flow with no finish time must count as stuck".to_string(),
    ));

    // 4. Recovery: freeze the faulted goodput series at half the
    // fault-free total so it never reaches the recovery target.
    let total = ecmp.base.goodput.last().map_or(0, |&(_, b)| b);
    let mut tampered = ecmp.fault.clone();
    tampered.goodput = ecmp
        .base
        .goodput
        .iter()
        .map(|&(t, b)| (t, b.min(total / 2)))
        .collect();
    let tripped = total > 0
        && check_recovery(
            "selftest/ecmp",
            &tampered,
            &ecmp.base,
            plan.end_time(),
            &cfg,
        )
        .is_some();
    cases.push(case(
        "recovery-checker-trips",
        tripped,
        "goodput frozen at half the baseline total must miss the recovery target".to_string(),
    ));

    // 5. Cross-LB: a fake "hermes" that strands flows ECMP finished.
    let mut fake_hermes = ecmp.fault.clone();
    fake_hermes.fct.unfinished = ecmp.fault.fct.unfinished + 3;
    let n = fake_hermes.records.len();
    for rec in fake_hermes.records.iter_mut().skip(n.saturating_sub(3)) {
        rec.finish = None;
    }
    let tripped =
        !check_cross_lb("selftest", &fake_hermes, &ecmp.fault, plan.end_time(), &cfg).is_empty();
    cases.push(case(
        "cross-lb-checker-trips",
        tripped,
        "hermes stranding 3 flows ecmp finished must violate the cross-LB band".to_string(),
    ));

    // 6. Shrinker: a 10-event plan where only one LinkDown matters
    // must collapse to (at most) that event and its LinkUp.
    let noisy = FaultPlan::new()
        .link_flap(
            LeafId(0),
            SpineId(0),
            Time::from_ms(2),
            Time::from_ms(1),
            Time::from_ms(4),
            Time::from_ms(14),
        )
        .spine_outage(SpineId(1), Time::from_ms(3), Time::from_ms(9))
        .random_drop_window(SpineId(2), 0.05, Time::from_ms(1), Time::from_ms(6));
    let wants_down = |p: &FaultPlan| {
        p.events().iter().any(|e| {
            matches!(
                e.action,
                FaultAction::LinkDown {
                    leaf: LeafId(0),
                    spine: SpineId(0),
                }
            )
        })
    };
    let out = shrink_plan(&noisy, wants_down, 500);
    let ok = out.plan.len() <= 2 && wants_down(&out.plan) && out.plan.validate().is_ok();
    cases.push(case(
        "shrinker-finds-minimal-plan",
        ok,
        format!(
            "{} events shrunk to {} in {} evals (expected <= 2, predicate held, valid)",
            out.from_events,
            out.plan.len(),
            out.evals
        ),
    ));

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_planted_defect_trips_its_checker() {
        let cases = run_chaos_self_test();
        assert!(
            chaos_self_test_passed(&cases),
            "failed cases: {:?}",
            cases.iter().filter(|c| !c.ok).collect::<Vec<_>>()
        );
        assert_eq!(cases.len(), 6, "every fixture must report");
    }
}
