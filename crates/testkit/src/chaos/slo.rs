//! Graceful-degradation SLOs for chaos campaigns.
//!
//! A sampled fault plan is not judged on exact FCTs — those vary with
//! the plan — but on four *degradation contracts* that must hold for
//! every plan whose faults all clear before the drain horizon:
//!
//! 1. **Conservation** — packet conservation balances with faults
//!    active (every injected packet is delivered, accounted as a
//!    classified drop, or still in flight).
//! 2. **Drain** — no stuck flows: once every fault has cleared, all
//!    flows eventually finish within the drain window.
//! 3. **Recovery** — cumulative goodput under faults reaches a fixed
//!    fraction of the fault-free run's total within the fault-free
//!    time-to-target plus the plan span plus a slack budget.
//! 4. **Cross-LB** — Hermes is never meaningfully worse than ECMP on
//!    the same plan: not more unfinished flows, and not more stranded
//!    flow-time past the last fault event (beyond a tolerance band).
//!
//! Checkers never panic; they return [`SloViolation`]s so a campaign
//! can keep running and report everything it found — mirroring the
//! conformance checkers in [`crate::check`].

use hermes_bench::DetailedResult;
use hermes_sim::Time;

use super::CellRuns;

/// Which degradation contract a violation falls under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloClass {
    Conservation,
    Drain,
    Recovery,
    CrossLb,
}

impl SloClass {
    /// Stable lowercase name used in reports and corpus files.
    pub fn as_str(self) -> &'static str {
        match self {
            SloClass::Conservation => "conservation",
            SloClass::Drain => "drain",
            SloClass::Recovery => "recovery",
            SloClass::CrossLb => "cross_lb",
        }
    }

    /// Parse the stable name back (corpus files carry it).
    pub fn parse(s: &str) -> Option<SloClass> {
        match s {
            "conservation" => Some(SloClass::Conservation),
            "drain" => Some(SloClass::Drain),
            "recovery" => Some(SloClass::Recovery),
            "cross_lb" => Some(SloClass::CrossLb),
            _ => None,
        }
    }
}

/// One SLO breach in one campaign cell.
#[derive(Clone, Debug)]
pub struct SloViolation {
    pub class: SloClass,
    /// `seed=<n>/<lb>` for per-LB checks, `seed=<n>` for cross-LB.
    pub cell: String,
    pub detail: String,
}

/// Thresholds for the recovery and cross-LB contracts.
///
/// The defaults are tuned so a healthy tree (`main`) passes a
/// 32-seed quick campaign with zero violations; a *stricter* config
/// (higher `recovery_frac`, smaller slacks) is how new corpus
/// counterexamples are mined — see `tests/chaos/corpus/README` and
/// DESIGN.md §14.
#[derive(Clone, Copy, Debug)]
pub struct SloCfg {
    /// Fault-run cumulative goodput must reach this fraction of the
    /// fault-free run's final total...
    pub recovery_frac: f64,
    /// ...no later than the fault-free time-to-target, plus the plan
    /// span (faults legitimately stall progress while active), plus
    /// this slack (timeout/backoff tails after the last fault clears).
    pub recovery_slack: Time,
    /// Hermes' stranded flow-time may exceed ECMP's by at most this
    /// factor...
    pub stranded_factor: f64,
    /// ...plus this additive slack (absorbs per-seed noise when both
    /// stranded durations are near zero).
    pub stranded_slack: Time,
}

impl Default for SloCfg {
    fn default() -> SloCfg {
        SloCfg {
            recovery_frac: 0.85,
            recovery_slack: Time::from_ms(500),
            stranded_factor: 1.5,
            stranded_slack: Time::from_ms(250),
        }
    }
}

/// SLO 1: packet conservation balanced at end of run.
pub fn check_conservation(cell: &str, r: &DetailedResult) -> Option<SloViolation> {
    if r.conservation.balanced() {
        None
    } else {
        Some(SloViolation {
            class: SloClass::Conservation,
            cell: cell.to_string(),
            detail: format!("conservation broken under faults: {}", r.conservation),
        })
    }
}

/// SLO 2: every flow finished — nothing stays stuck once the plan's
/// faults have all cleared. Callers guarantee the plan end precedes
/// the drain horizon by a comfortable margin (the generator does).
pub fn check_drain(cell: &str, r: &DetailedResult) -> Option<SloViolation> {
    let stuck: Vec<u64> = r
        .records
        .iter()
        .filter(|rec| rec.finish.is_none())
        .map(|rec| rec.id.0)
        .collect();
    if stuck.is_empty() {
        None
    } else {
        Some(SloViolation {
            class: SloClass::Drain,
            cell: cell.to_string(),
            detail: format!(
                "{} flow(s) never finished after all faults cleared (first: flow {})",
                stuck.len(),
                stuck[0]
            ),
        })
    }
}

/// SLO 3: goodput recovers — the faulted run reaches
/// `recovery_frac × (fault-free final goodput)` within the fault-free
/// time-to-target + plan span + slack.
///
/// Skipped (returns `None`) when the fault-free run moved no goodput
/// or never reached the target itself — there is no baseline to
/// recover *to*, which a degenerate sampled workload can produce.
pub fn check_recovery(
    cell: &str,
    fault: &DetailedResult,
    base: &DetailedResult,
    plan_end: Time,
    cfg: &SloCfg,
) -> Option<SloViolation> {
    let total = base.goodput.last().map_or(0, |&(_, b)| b);
    if total == 0 {
        return None;
    }
    let target = ((total as f64 * cfg.recovery_frac).ceil() as u64).max(1);
    let reach = |series: &[(Time, u64)]| {
        series
            .iter()
            .find(|&&(_, bytes)| bytes >= target)
            .map(|&(t, _)| t)
    };
    let t_base = reach(&base.goodput)?;
    let budget = t_base + plan_end + cfg.recovery_slack;
    match reach(&fault.goodput) {
        Some(t) if t <= budget => None,
        Some(t) => Some(SloViolation {
            class: SloClass::Recovery,
            cell: cell.to_string(),
            detail: format!(
                "goodput reached {target} B at {t}, past the budget {budget} \
                 (fault-free target time {t_base} + plan span {plan_end} + slack)"
            ),
        }),
        None => Some(SloViolation {
            class: SloClass::Recovery,
            cell: cell.to_string(),
            detail: format!(
                "goodput never reached {target} B ({:?} of the fault-free total {total} B)",
                cfg.recovery_frac
            ),
        }),
    }
}

/// Flow-time stranded past `clear`: for every flow that started before
/// the last fault event, the time it remained unfinished after it
/// (unfinished flows charged to the horizon). This is the paper's
/// "how long did traffic stay hurt" lens — a scheme that evacuates
/// faulty paths strands less flow-time than one that cannot.
pub fn stranded_duration(r: &DetailedResult, clear: Time) -> Time {
    r.records
        .iter()
        .filter(|rec| rec.start < clear)
        .map(|rec| rec.finish.unwrap_or(r.horizon).saturating_sub(clear))
        .fold(Time::ZERO, |acc, d| acc + d)
}

/// SLO 4: Hermes never meaningfully worse than ECMP on the same plan —
/// not more unfinished flows, and stranded flow-time within
/// `stranded_factor × ECMP + stranded_slack`.
pub fn check_cross_lb(
    seed_label: &str,
    hermes: &DetailedResult,
    ecmp: &DetailedResult,
    plan_end: Time,
    cfg: &SloCfg,
) -> Vec<SloViolation> {
    let mut out = Vec::new();
    if hermes.fct.unfinished > ecmp.fct.unfinished {
        out.push(SloViolation {
            class: SloClass::CrossLb,
            cell: seed_label.to_string(),
            detail: format!(
                "hermes stranded {} flow(s) vs ecmp {} on the same plan",
                hermes.fct.unfinished, ecmp.fct.unfinished
            ),
        });
    }
    let sh = stranded_duration(hermes, plan_end);
    let se = stranded_duration(ecmp, plan_end);
    let bound = se.mul_f64(cfg.stranded_factor) + cfg.stranded_slack;
    if sh > bound {
        out.push(SloViolation {
            class: SloClass::CrossLb,
            cell: seed_label.to_string(),
            detail: format!(
                "hermes stranded flow-time {sh} exceeds bound {bound} \
                 ({:?} x ecmp's {se} + slack)",
                cfg.stranded_factor
            ),
        });
    }
    out
}

/// Run every SLO over one seed's cells (all LBs, fault + baseline).
pub fn check_cell(
    seed_label: &str,
    runs: &[CellRuns],
    plan_end: Time,
    cfg: &SloCfg,
) -> Vec<SloViolation> {
    let mut out = Vec::new();
    for cr in runs {
        let cell = format!("{seed_label}/{}", cr.lb);
        out.extend(check_conservation(&cell, &cr.fault));
        out.extend(check_drain(&cell, &cr.fault));
        out.extend(check_recovery(&cell, &cr.fault, &cr.base, plan_end, cfg));
    }
    let hermes = runs.iter().find(|c| c.lb == "hermes");
    let ecmp = runs.iter().find(|c| c.lb == "ecmp");
    if let (Some(h), Some(e)) = (hermes, ecmp) {
        out.extend(check_cross_lb(
            seed_label, &h.fault, &e.fault, plan_end, cfg,
        ));
    }
    out
}
