//! The committed counterexample corpus.
//!
//! Every plan the chaos campaign ever shrank to a minimal
//! counterexample is committed under `tests/chaos/corpus/` as a small
//! TOML file — the plan itself plus the seed, the SLO class it
//! originally tripped, and a human description of what it caught.
//! CI replays the whole corpus on every push: each entry must run
//! *green* under the current SLO defaults, turning yesterday's
//! failures into tomorrow's regression tests (entries are mined with
//! deliberately strict thresholds or against since-fixed bugs; see
//! DESIGN.md §14).
//!
//! The format round-trips exactly — `entry_from_toml(plan_to_toml(e))`
//! reproduces the same [`FaultPlan`] value — which the property tests
//! in `tests/properties.rs` pin down across the whole sampled grammar.

use std::fs;
use std::path::Path;

use hermes_net::{Blackhole, FaultAction, FaultPlan, LeafId, SpineFailure, SpineId};
use hermes_sim::Time;

use super::slo::{check_cell, SloCfg, SloViolation};
use crate::toml::{self, Table, Value};

/// One corpus file: a shrunk plan plus its provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// What this counterexample caught, in one sentence.
    pub description: String,
    /// Workload seed the violation reproduced under.
    pub seed: u64,
    /// SLO class originally tripped (stable name, see
    /// [`super::slo::SloClass::as_str`]).
    pub slo: String,
    /// Cell the violation was observed in (`hermes`, `conga`, `ecmp`,
    /// or `cross` for cross-LB checks).
    pub lb: String,
    pub plan: FaultPlan,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize one entry to the corpus TOML format.
pub fn plan_to_toml(entry: &CorpusEntry) -> String {
    let mut out = String::new();
    out.push_str("# Shrunk chaos counterexample; replayed by `xtask chaos` and CI.\n");
    out.push_str(&format!("description = \"{}\"\n", esc(&entry.description)));
    out.push_str(&format!("seed = {}\n", entry.seed));
    out.push_str(&format!("slo = \"{}\"\n", esc(&entry.slo)));
    out.push_str(&format!("lb = \"{}\"\n", esc(&entry.lb)));
    for ev in entry.plan.events() {
        out.push_str("\n[[event]]\n");
        out.push_str(&format!("at_ns = {}\n", ev.at.as_ns()));
        out.push_str(&action_to_toml(&ev.action));
    }
    out
}

fn action_to_toml(a: &FaultAction) -> String {
    match *a {
        FaultAction::SetSpineFailure { spine, failure } => {
            let mut s = format!(
                "kind = \"set_spine_failure\"\nspine = {}\nrandom_drop = {:?}\n",
                spine.0, failure.random_drop
            );
            if let Some(bh) = failure.blackhole {
                s.push_str(&format!(
                    "bh_src_leaf = {}\nbh_dst_leaf = {}\nbh_pair_fraction = {:?}\n",
                    bh.src_leaf.0, bh.dst_leaf.0, bh.pair_fraction
                ));
            }
            if let Some(fb) = failure.flow_blackhole {
                s.push_str(&format!("victim_fraction = {:?}\n", fb.victim_fraction));
            }
            if failure.ecn_mute {
                s.push_str("ecn_mute = true\n");
            }
            s
        }
        FaultAction::ClearSpineFailure { spine } => {
            format!("kind = \"clear_spine_failure\"\nspine = {}\n", spine.0)
        }
        FaultAction::FlowBlackhole {
            spine,
            victim_fraction,
        } => format!(
            "kind = \"flow_blackhole\"\nspine = {}\nvictim_fraction = {:?}\n",
            spine.0, victim_fraction
        ),
        FaultAction::EcnMute { spine } => format!("kind = \"ecn_mute\"\nspine = {}\n", spine.0),
        FaultAction::EcnUnmute { spine } => {
            format!("kind = \"ecn_unmute\"\nspine = {}\n", spine.0)
        }
        FaultAction::LinkDown { leaf, spine } => format!(
            "kind = \"link_down\"\nleaf = {}\nspine = {}\n",
            leaf.0, spine.0
        ),
        FaultAction::LinkUp { leaf, spine } => {
            format!(
                "kind = \"link_up\"\nleaf = {}\nspine = {}\n",
                leaf.0, spine.0
            )
        }
        FaultAction::SetLinkRate {
            leaf,
            spine,
            rate_bps,
        } => format!(
            "kind = \"set_link_rate\"\nleaf = {}\nspine = {}\nrate_bps = {}\n",
            leaf.0, spine.0, rate_bps
        ),
        FaultAction::RestoreLinkRate { leaf, spine } => format!(
            "kind = \"restore_link_rate\"\nleaf = {}\nspine = {}\n",
            leaf.0, spine.0
        ),
        FaultAction::SpineDown { spine } => format!("kind = \"spine_down\"\nspine = {}\n", spine.0),
        FaultAction::SpineUp { spine } => format!("kind = \"spine_up\"\nspine = {}\n", spine.0),
    }
}

fn str_field(t: &Table, key: &str) -> Result<String, String> {
    t.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn int_field(t: &Table, key: &str) -> Result<i64, String> {
    t.get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn float_field(t: &Table, key: &str) -> Result<f64, String> {
    t.get(key)
        .and_then(Value::as_float)
        .ok_or_else(|| format!("missing or non-float `{key}`"))
}

fn spine_field(t: &Table) -> Result<SpineId, String> {
    Ok(SpineId(int_field(t, "spine")? as u16))
}

fn leaf_field(t: &Table) -> Result<LeafId, String> {
    Ok(LeafId(int_field(t, "leaf")? as u16))
}

fn action_from_table(t: &Table) -> Result<FaultAction, String> {
    let kind = str_field(t, "kind")?;
    match kind.as_str() {
        "set_spine_failure" => {
            let mut failure = SpineFailure {
                random_drop: float_field(t, "random_drop")?,
                ..SpineFailure::default()
            };
            if t.contains_key("bh_src_leaf") {
                failure.blackhole = Some(Blackhole {
                    src_leaf: LeafId(int_field(t, "bh_src_leaf")? as u16),
                    dst_leaf: LeafId(int_field(t, "bh_dst_leaf")? as u16),
                    pair_fraction: float_field(t, "bh_pair_fraction")?,
                });
            }
            if t.contains_key("victim_fraction") {
                failure = failure.with_flow_blackhole(float_field(t, "victim_fraction")?);
            }
            if let Some(m) = t.get("ecn_mute").and_then(Value::as_bool) {
                failure = failure.with_ecn_mute(m);
            }
            Ok(FaultAction::SetSpineFailure {
                spine: spine_field(t)?,
                failure,
            })
        }
        "clear_spine_failure" => Ok(FaultAction::ClearSpineFailure {
            spine: spine_field(t)?,
        }),
        "flow_blackhole" => Ok(FaultAction::FlowBlackhole {
            spine: spine_field(t)?,
            victim_fraction: float_field(t, "victim_fraction")?,
        }),
        "ecn_mute" => Ok(FaultAction::EcnMute {
            spine: spine_field(t)?,
        }),
        "ecn_unmute" => Ok(FaultAction::EcnUnmute {
            spine: spine_field(t)?,
        }),
        "link_down" => Ok(FaultAction::LinkDown {
            leaf: leaf_field(t)?,
            spine: spine_field(t)?,
        }),
        "link_up" => Ok(FaultAction::LinkUp {
            leaf: leaf_field(t)?,
            spine: spine_field(t)?,
        }),
        "set_link_rate" => Ok(FaultAction::SetLinkRate {
            leaf: leaf_field(t)?,
            spine: spine_field(t)?,
            rate_bps: int_field(t, "rate_bps")? as u64,
        }),
        "restore_link_rate" => Ok(FaultAction::RestoreLinkRate {
            leaf: leaf_field(t)?,
            spine: spine_field(t)?,
        }),
        "spine_down" => Ok(FaultAction::SpineDown {
            spine: spine_field(t)?,
        }),
        "spine_up" => Ok(FaultAction::SpineUp {
            spine: spine_field(t)?,
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

/// Parse one corpus file. The embedded plan must validate.
pub fn entry_from_toml(src: &str) -> Result<CorpusEntry, String> {
    let table = toml::parse(src).map_err(|e| format!("corpus TOML: {e}"))?;
    let mut plan = FaultPlan::new();
    if let Some(events) = table.get("event") {
        let list = events
            .as_array()
            .ok_or_else(|| "`event` must be an array of tables".to_string())?;
        for (i, ev) in list.iter().enumerate() {
            let t = ev
                .as_table()
                .ok_or_else(|| format!("event #{i} is not a table"))?;
            let at = Time::from_ns(int_field(t, "at_ns")? as u64);
            let action = action_from_table(t).map_err(|e| format!("event #{i}: {e}"))?;
            plan = plan.at(at, action);
        }
    }
    plan.validate()
        .map_err(|e| format!("corpus plan invalid: {e}"))?;
    Ok(CorpusEntry {
        description: str_field(&table, "description")?,
        seed: int_field(&table, "seed")? as u64,
        slo: str_field(&table, "slo")?,
        lb: str_field(&table, "lb")?,
        plan,
    })
}

/// Load every `*.toml` under `dir`, sorted by file name (the replay
/// order, and hence the report, is independent of directory order).
pub fn load_corpus(dir: &Path) -> Result<Vec<(String, CorpusEntry)>, String> {
    let mut names: Vec<String> = Vec::new();
    let iter = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for de in iter {
        let de = de.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let name = de.file_name().to_string_lossy().into_owned();
        if name.ends_with(".toml") {
            names.push(name);
        }
    }
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let entry = entry_from_toml(&src).map_err(|e| format!("{name}: {e}"))?;
        out.push((name, entry));
    }
    Ok(out)
}

/// Outcome of replaying the committed corpus.
#[derive(Clone, Debug)]
pub struct CorpusReplay {
    /// Files replayed, in order.
    pub files: Vec<String>,
    /// Violations under the *current* SLO defaults — must be empty;
    /// corpus entries are regressions that stay fixed.
    pub violations: Vec<SloViolation>,
}

/// Replay every corpus entry under the current SLO config. Green means
/// the behaviors those counterexamples once caught are still fixed.
pub fn replay_corpus(dir: &Path, slo: &SloCfg, quick: bool) -> Result<CorpusReplay, String> {
    let entries = load_corpus(dir)?;
    let mut files = Vec::new();
    let mut violations = Vec::new();
    for (name, entry) in entries {
        let stem = name.trim_end_matches(".toml");
        let label = format!("corpus/{stem}");
        let runs = super::run_cells(&entry.plan, entry.seed, quick);
        violations.extend(check_cell(&label, &runs, entry.plan.end_time(), slo));
        files.push(name);
    }
    Ok(CorpusReplay { files, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CorpusEntry {
        CorpusEntry {
            description: "two overlapping gray failures".to_string(),
            seed: 11,
            slo: "recovery".to_string(),
            lb: "hermes".to_string(),
            plan: FaultPlan::new()
                .flow_blackhole_window(SpineId(1), 0.37, Time::from_ms(3), Time::from_ms(18))
                .ecn_mute_window(SpineId(2), Time::from_ms(5), Time::from_ms(25))
                .at(
                    Time::from_ms(4),
                    FaultAction::SetSpineFailure {
                        spine: SpineId(0),
                        failure: SpineFailure::blackhole(LeafId(0), LeafId(1), 0.75)
                            .with_ecn_mute(true),
                    },
                )
                .at(
                    Time::from_ms(9),
                    FaultAction::ClearSpineFailure { spine: SpineId(0) },
                ),
        }
    }

    #[test]
    fn corpus_format_round_trips_exactly() {
        let entry = sample_entry();
        let text = plan_to_toml(&entry);
        let back = entry_from_toml(&text).expect("round-trip parse");
        assert_eq!(back, entry);
        // And a second serialization is byte-identical.
        assert_eq!(plan_to_toml(&back), text);
    }

    #[test]
    fn every_action_kind_round_trips() {
        let plan = FaultPlan::new()
            .blackhole_window(
                SpineId(0),
                LeafId(0),
                LeafId(1),
                0.5,
                Time::from_ms(1),
                Time::from_ms(2),
            )
            .random_drop_window(SpineId(1), 0.0625, Time::from_ms(1), Time::from_ms(2))
            .link_flap(
                LeafId(0),
                SpineId(2),
                Time::from_ms(1),
                Time::from_us(200),
                Time::from_ms(1),
                Time::from_ms(3),
            )
            .link_degrade_window(
                LeafId(1),
                SpineId(3),
                250_000_000,
                Time::from_ms(1),
                Time::from_ms(2),
            )
            .spine_outage(SpineId(1), Time::from_ms(5), Time::from_ms(6))
            .flow_blackhole_window(SpineId(2), 0.33, Time::from_ms(7), Time::from_ms(8))
            .ecn_mute_window(SpineId(3), Time::from_ms(7), Time::from_ms(8));
        let entry = CorpusEntry {
            description: "grammar coverage".to_string(),
            seed: 1,
            slo: "drain".to_string(),
            lb: "ecmp".to_string(),
            plan,
        };
        let back = entry_from_toml(&plan_to_toml(&entry)).expect("parse");
        assert_eq!(back, entry);
    }

    #[test]
    fn invalid_plans_and_unknown_kinds_are_rejected() {
        let orphan = "description = \"x\"\nseed = 1\nslo = \"drain\"\nlb = \"ecmp\"\n\n\
                      [[event]]\nat_ns = 5\nkind = \"link_up\"\nleaf = 0\nspine = 0\n";
        let err = entry_from_toml(orphan).expect_err("orphan LinkUp must be rejected");
        assert!(err.contains("invalid"), "got: {err}");
        let unknown = "description = \"x\"\nseed = 1\nslo = \"drain\"\nlb = \"ecmp\"\n\n\
                       [[event]]\nat_ns = 5\nkind = \"meteor_strike\"\nspine = 0\n";
        let err = entry_from_toml(unknown).expect_err("unknown kind must be rejected");
        assert!(err.contains("meteor_strike"), "got: {err}");
    }

    #[test]
    fn descriptions_with_quotes_survive() {
        let mut entry = sample_entry();
        entry.description = "the \"gray\" case with a back\\slash".to_string();
        let back = entry_from_toml(&plan_to_toml(&entry)).expect("parse");
        assert_eq!(back.description, entry.description);
    }
}
